//! Random genomes and mutation models.

use crate::error::SimError;
use fc_seq::{Base, DnaString};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters for generating a random genome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenomeConfig {
    /// Genome length in bases (before repeat insertion).
    pub length: usize,
    /// Number of dispersed repeat copies to insert (0 = none). Repeats are
    /// what create branching in overlap graphs, so the simulator supports
    /// them explicitly.
    pub repeat_copies: usize,
    /// Length of each repeat unit.
    pub repeat_len: usize,
}

impl Default for GenomeConfig {
    fn default() -> GenomeConfig {
        GenomeConfig {
            length: 10_000,
            repeat_copies: 0,
            repeat_len: 300,
        }
    }
}

/// Segment-wise mutation model used to derive one genome from another.
///
/// Real genomes are mosaics of conserved and variable regions; the divergence
/// within conserved regions is what lets reads from related genera overlap at
/// ≥ 90 % identity (and hence co-cluster in graph partitions, paper Fig. 7),
/// while variable regions keep the genera distinguishable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutationModel {
    /// Fraction of the genome belonging to conserved segments, in `[0, 1]`.
    pub conserved_fraction: f64,
    /// Per-base substitution probability within conserved segments.
    pub conserved_divergence: f64,
    /// Per-base substitution probability within variable segments.
    pub variable_divergence: f64,
    /// Per-base probability of a 1-base insertion or deletion (split evenly).
    pub indel_rate: f64,
    /// Approximate segment length used to alternate conserved/variable.
    pub segment_len: usize,
}

impl MutationModel {
    /// A model for divergence *within* a phylum: genomes are mostly too
    /// diverged to overlap at ≥ 90 % read identity, but share short highly
    /// conserved islands (the rRNA-operon / mobile-element pattern of real
    /// bacteria). Cross-genus overlap edges exist only inside the islands —
    /// enough to couple related genera in partition space (paper Fig. 7)
    /// without fusing their assemblies.
    pub fn within_phylum() -> MutationModel {
        MutationModel {
            conserved_fraction: 0.16,
            conserved_divergence: 0.01,
            variable_divergence: 0.25,
            indel_rate: 0.001,
            segment_len: 350,
        }
    }

    /// A model for divergence *between* phyla: heavy divergence everywhere,
    /// so cross-phylum reads essentially never overlap at 90 % identity.
    pub fn between_phyla() -> MutationModel {
        MutationModel {
            conserved_fraction: 0.1,
            conserved_divergence: 0.08,
            variable_divergence: 0.35,
            indel_rate: 0.004,
            segment_len: 800,
        }
    }

    /// Validates probability ranges.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, v) in [
            ("conserved_fraction", self.conserved_fraction),
            ("conserved_divergence", self.conserved_divergence),
            ("variable_divergence", self.variable_divergence),
            ("indel_rate", self.indel_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(SimError::Config {
                    parameter: name,
                    message: format!("must be in [0,1], got {v}"),
                });
            }
        }
        if self.segment_len == 0 {
            return Err(SimError::Config {
                parameter: "segment_len",
                message: "must be > 0".to_string(),
            });
        }
        Ok(())
    }
}

/// Generates a uniformly random genome, then inserts dispersed repeat copies
/// if configured. Deterministic in `seed`.
pub fn random_genome(config: &GenomeConfig, seed: u64) -> DnaString {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut genome: DnaString = (0..config.length)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    if config.repeat_copies > 1 && config.repeat_len > 0 && config.repeat_len < config.length {
        let unit_start = rng.gen_range(0..config.length - config.repeat_len);
        let unit = genome.slice(unit_start, unit_start + config.repeat_len);
        for _ in 1..config.repeat_copies {
            let at = rng.gen_range(0..genome.len() - config.repeat_len);
            for (i, b) in unit.iter().enumerate() {
                genome.set(at + i, b);
            }
        }
    }
    genome
}

/// Derives a mutated copy of `parent` under `model`. Deterministic in `seed`.
///
/// Segments alternate conserved/variable with lengths drawn around
/// `model.segment_len`; the conserved share is controlled by
/// `model.conserved_fraction`.
pub fn mutate_genome(parent: &DnaString, model: &MutationModel, seed: u64) -> DnaString {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = DnaString::with_capacity(parent.len());
    let mut pos = 0usize;
    while pos < parent.len() {
        let conserved = rng.gen_bool(model.conserved_fraction);
        let seg_len = (model.segment_len / 2) + rng.gen_range(0..model.segment_len.max(1));
        let end = (pos + seg_len).min(parent.len());
        let sub_rate = if conserved {
            model.conserved_divergence
        } else {
            model.variable_divergence
        };
        for i in pos..end {
            // Indels first: a deletion skips the base, an insertion emits a
            // random base before it.
            if model.indel_rate > 0.0 && rng.gen_bool(model.indel_rate) {
                if rng.gen_bool(0.5) {
                    continue; // deletion
                }
                out.push(Base::from_code(rng.gen_range(0..4))); // insertion
            }
            let base = parent.get(i);
            if sub_rate > 0.0 && rng.gen_bool(sub_rate) {
                let others = base.others();
                out.push(others[rng.gen_range(0..3)]);
            } else {
                out.push(base);
            }
        }
        pos = end;
    }
    out
}

/// Sequence distance between two genomes as 1 − Jaccard similarity of their
/// 16-mer sets. Unlike positional Hamming distance this is robust to the
/// frame shifts indels introduce, making it the right diagnostic for the
/// taxonomy's "same-phylum genera are more similar" property.
pub fn approximate_divergence(a: &DnaString, b: &DnaString) -> f64 {
    const K: usize = 16;
    let set = |s: &DnaString| -> Vec<u64> {
        let mut v: Vec<u64> = s.kmers(K).map(|(_, k)| k).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let (sa, sb) = (set(a), set(b));
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let mut shared = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = sa.len() + sb.len() - shared;
    1.0 - shared as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_genome_is_deterministic_in_seed() {
        let config = GenomeConfig {
            length: 500,
            ..Default::default()
        };
        assert_eq!(random_genome(&config, 42), random_genome(&config, 42));
        assert_ne!(random_genome(&config, 42), random_genome(&config, 43));
    }

    #[test]
    fn random_genome_has_requested_length() {
        let config = GenomeConfig {
            length: 1234,
            ..Default::default()
        };
        assert_eq!(random_genome(&config, 1).len(), 1234);
    }

    #[test]
    fn repeats_create_duplicated_segments() {
        let config = GenomeConfig {
            length: 4000,
            repeat_copies: 3,
            repeat_len: 200,
        };
        let genome = random_genome(&config, 7);
        // Count distinct 32-mers: with 2 extra repeat copies of length 200,
        // at least ~300 32-mers are duplicated.
        let mut kmers: Vec<u64> = genome.kmers(32).map(|(_, k)| k).collect();
        let total = kmers.len();
        kmers.sort_unstable();
        kmers.dedup();
        assert!(
            total - kmers.len() > 250,
            "only {} duplicated 32-mers",
            total - kmers.len()
        );
    }

    #[test]
    fn zero_mutation_model_copies_parent() {
        let parent = random_genome(
            &GenomeConfig {
                length: 800,
                ..Default::default()
            },
            3,
        );
        let model = MutationModel {
            conserved_fraction: 1.0,
            conserved_divergence: 0.0,
            variable_divergence: 0.0,
            indel_rate: 0.0,
            segment_len: 100,
        };
        assert_eq!(mutate_genome(&parent, &model, 9), parent);
    }

    #[test]
    fn mutation_rates_show_up_in_divergence() {
        let parent = random_genome(
            &GenomeConfig {
                length: 20_000,
                ..Default::default()
            },
            5,
        );
        let within = mutate_genome(&parent, &MutationModel::within_phylum(), 11);
        let between = mutate_genome(&parent, &MutationModel::between_phyla(), 11);
        let d_within = approximate_divergence(&parent, &within);
        let d_between = approximate_divergence(&parent, &between);
        assert!(
            d_within < d_between,
            "within {d_within} !< between {d_between}"
        );
        assert!(
            d_within > 0.01,
            "within-phylum divergence too small: {d_within}"
        );
        assert!(
            d_within < 0.999,
            "within-phylum divergence saturated: {d_within}"
        );
    }

    #[test]
    fn mutate_is_deterministic_in_seed() {
        let parent = random_genome(
            &GenomeConfig {
                length: 1000,
                ..Default::default()
            },
            5,
        );
        let model = MutationModel::within_phylum();
        assert_eq!(
            mutate_genome(&parent, &model, 1),
            mutate_genome(&parent, &model, 1)
        );
    }

    #[test]
    fn model_validation() {
        assert!(MutationModel::within_phylum().validate().is_ok());
        assert!(MutationModel {
            indel_rate: 1.5,
            ..MutationModel::within_phylum()
        }
        .validate()
        .is_err());
        assert!(MutationModel {
            segment_len: 0,
            ..MutationModel::within_phylum()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn divergence_of_identical_is_zero() {
        let g = random_genome(
            &GenomeConfig {
                length: 100,
                ..Default::default()
            },
            2,
        );
        assert_eq!(approximate_divergence(&g, &g), 0.0);
    }
}
