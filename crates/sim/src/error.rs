//! Error type for the metagenome simulator.

use std::fmt;

/// Errors produced while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An invalid simulation parameter.
    Config {
        /// Offending parameter name (e.g. `read_len`).
        parameter: &'static str,
        /// What went wrong, including the offending value.
        message: String,
    },
    /// A genome is too short to sample reads of the configured length from.
    GenomeTooShort {
        /// Genome length in bases.
        genome_len: usize,
        /// Configured read length.
        read_len: usize,
    },
    /// Writing streamed output failed (see [`crate::dataset::generate_to`]).
    /// Carries the rendered cause so the error stays `Clone`/`PartialEq`.
    Io {
        /// Rendered underlying error.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config { parameter, message } => {
                write!(f, "invalid {parameter}: {message}")
            }
            SimError::GenomeTooShort {
                genome_len,
                read_len,
            } => {
                write!(
                    f,
                    "genome length {genome_len} shorter than read length {read_len}"
                )
            }
            SimError::Io { message } => write!(f, "output error: {message}"),
        }
    }
}

impl std::error::Error for SimError {}
