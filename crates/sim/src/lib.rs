//! # fc-sim — synthetic NGS data for the Focus reproduction
//!
//! The paper evaluates on three Illumina gut-microbiome runs from the NCBI
//! SRA. Those data sets (and the reference database used to label them) are
//! not available here, so this crate builds the closest synthetic equivalent
//! (see DESIGN.md §2):
//!
//! * [`genome`] — random genomes, segment-wise mutation (conserved vs
//!   variable regions), tandem/dispersed repeat insertion,
//! * [`phylo`] — a small gut-like taxonomy: phyla with a common ancestral
//!   genome per phylum, genera derived by divergence, so genera within a
//!   phylum remain more similar to each other than across phyla (what Fig. 7
//!   of the paper observes in partition space),
//! * [`community`] — abundance profiles over the genera,
//! * [`reads`] — a shotgun read simulator with positional error/quality
//!   model, producing 100 bp reads with ground-truth origins,
//! * [`dataset`] — assembled data sets, including
//!   [`dataset::paper_datasets`], the three deterministic analogues of the
//!   paper's D1–D3.

pub mod community;
pub mod dataset;
pub mod error;
pub mod genome;
pub mod phylo;
pub mod reads;

pub use community::CommunityProfile;
pub use dataset::{
    generate as generate_dataset, generate_to, paper_datasets, single_genome_dataset, Dataset,
    DatasetConfig, StreamSummary,
};
pub use error::SimError;
pub use genome::{GenomeConfig, MutationModel};
pub use phylo::{Genus, Taxonomy, TaxonomyConfig};
pub use reads::{ReadOrigin, ReadSimConfig};
