//! Shotgun read simulation with an Illumina-like error/quality model.

use crate::error::SimError;
use fc_seq::{Base, DnaString, QualityScores, Read};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Ground truth for one simulated read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOrigin {
    /// Index of the source genus/genome.
    pub genus: u32,
    /// 0-based start position on the forward strand of the source genome.
    pub position: u32,
    /// True if the read was sampled from the reverse strand.
    pub reverse: bool,
}

/// Read simulator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimConfig {
    /// Read length in bases (the paper's data sets use 100 bp).
    pub read_len: usize,
    /// Substitution error probability at the 5' end.
    pub error_rate_5p: f64,
    /// Substitution error probability at the 3' end; the rate ramps linearly
    /// from `error_rate_5p`, matching Illumina's 3'-degradation pattern and
    /// giving the quality trimmer something real to do.
    pub error_rate_3p: f64,
    /// Probability that a read gets a corrupted low-quality 3' tail
    /// (`tail_len` bases at very high error), exercising §II-A trimming.
    pub bad_tail_probability: f64,
    /// Length of a corrupted tail.
    pub bad_tail_len: usize,
    /// Probability of sampling the reverse strand.
    pub reverse_strand_probability: f64,
}

impl Default for ReadSimConfig {
    fn default() -> ReadSimConfig {
        ReadSimConfig {
            read_len: 100,
            error_rate_5p: 0.002,
            error_rate_3p: 0.01,
            bad_tail_probability: 0.05,
            bad_tail_len: 15,
            reverse_strand_probability: 0.5,
        }
    }
}

impl ReadSimConfig {
    /// Validates probability ranges and lengths.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.read_len == 0 {
            return Err(SimError::Config {
                parameter: "read_len",
                message: "must be > 0".to_string(),
            });
        }
        for (name, v) in [
            ("error_rate_5p", self.error_rate_5p),
            ("error_rate_3p", self.error_rate_3p),
            ("bad_tail_probability", self.bad_tail_probability),
            (
                "reverse_strand_probability",
                self.reverse_strand_probability,
            ),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(SimError::Config {
                    parameter: name,
                    message: format!("must be in [0,1], got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Substitution probability at read position `i`.
    fn error_rate_at(&self, i: usize) -> f64 {
        if self.read_len <= 1 {
            return self.error_rate_5p;
        }
        let t = i as f64 / (self.read_len - 1) as f64;
        self.error_rate_5p + t * (self.error_rate_3p - self.error_rate_5p)
    }
}

/// Simulates `count` reads from `genome` (genus index `genus`), appending to
/// `reads` and `origins`. Deterministic in `seed`.
///
/// Positions are uniform over valid start sites; strand is chosen per
/// `reverse_strand_probability`. Each emitted base may be substituted with a
/// position-dependent probability, and quality scores reflect the actual
/// error model (Phred of the local error rate, with noise).
#[allow(clippy::too_many_arguments)] // a flat sampler API beats a one-use builder here
pub fn simulate_reads(
    genome: &DnaString,
    genus: u32,
    count: usize,
    config: &ReadSimConfig,
    seed: u64,
    name_prefix: &str,
    reads: &mut Vec<Read>,
    origins: &mut Vec<ReadOrigin>,
) -> Result<(), SimError> {
    simulate_reads_to(genome, genus, count, config, seed, name_prefix, &mut |r, o| {
        reads.push(r);
        origins.push(o);
        Ok(())
    })
}

/// Sink-based core of [`simulate_reads`]: every simulated read is handed to
/// `sink` and then dropped, so a caller that writes reads straight to disk
/// holds at most one read in memory. The RNG stream is identical to
/// [`simulate_reads`] — collecting the sink's arguments reproduces its
/// output byte for byte.
#[allow(clippy::too_many_arguments)]
pub fn simulate_reads_to(
    genome: &DnaString,
    genus: u32,
    count: usize,
    config: &ReadSimConfig,
    seed: u64,
    name_prefix: &str,
    sink: &mut dyn FnMut(Read, ReadOrigin) -> Result<(), SimError>,
) -> Result<(), SimError> {
    config.validate()?;
    if genome.len() < config.read_len {
        return Err(SimError::GenomeTooShort {
            genome_len: genome.len(),
            read_len: config.read_len,
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let max_start = genome.len() - config.read_len;
    for r in 0..count {
        let position = rng.gen_range(0..=max_start);
        let reverse = rng.gen_bool(config.reverse_strand_probability);
        let template = {
            let fwd = genome.slice(position, position + config.read_len);
            if reverse {
                fwd.reverse_complement()
            } else {
                fwd
            }
        };
        let bad_tail = rng.gen_bool(config.bad_tail_probability);
        let mut seq = DnaString::with_capacity(config.read_len);
        let mut quals = Vec::with_capacity(config.read_len);
        for i in 0..config.read_len {
            let in_tail =
                bad_tail && i + config.bad_tail_len.min(config.read_len) >= config.read_len;
            let err = if in_tail {
                0.5
            } else {
                config.error_rate_at(i)
            };
            let base = template.get(i);
            if err > 0.0 && rng.gen_bool(err) {
                let others = base.others();
                seq.push(others[rng.gen_range(0..3)]);
            } else {
                seq.push(base);
            }
            // Phred of the modelled error rate, with +-2 jitter.
            let q = fc_seq::quality::error_probability_to_phred(err.max(1e-4)) as i32
                + rng.gen_range(-2..=2);
            quals.push(q.clamp(2, 41) as u8);
        }
        sink(
            Read::with_quality(
                format!("{name_prefix}_{r}"),
                seq,
                QualityScores::from_phred(quals),
            ),
            ReadOrigin {
                genus,
                position: position as u32,
                reverse,
            },
        )?;
    }
    Ok(())
}

/// Counts mismatches between a simulated read and its genome template —
/// a test helper validating the error model.
pub fn mismatches_vs_template(genome: &DnaString, read: &Read, origin: &ReadOrigin) -> usize {
    let len = read.len();
    let fwd = genome.slice(origin.position as usize, origin.position as usize + len);
    let template = if origin.reverse {
        fwd.reverse_complement()
    } else {
        fwd
    };
    (0..len)
        .filter(|&i| template.get(i) != read.seq.get(i))
        .count()
}

/// Expands a genome slice choice shared by tests: random base helper.
pub fn random_base(rng: &mut impl Rng) -> Base {
    Base::from_code(rng.gen_range(0..4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{random_genome, GenomeConfig};

    fn genome() -> DnaString {
        random_genome(
            &GenomeConfig {
                length: 5_000,
                ..Default::default()
            },
            17,
        )
    }

    fn simulate(config: &ReadSimConfig, seed: u64) -> (Vec<Read>, Vec<ReadOrigin>) {
        let g = genome();
        let mut reads = Vec::new();
        let mut origins = Vec::new();
        simulate_reads(&g, 3, 200, config, seed, "t", &mut reads, &mut origins).unwrap();
        (reads, origins)
    }

    #[test]
    fn produces_requested_reads_with_metadata() {
        let (reads, origins) = simulate(&ReadSimConfig::default(), 1);
        assert_eq!(reads.len(), 200);
        assert_eq!(origins.len(), 200);
        for (read, origin) in reads.iter().zip(&origins) {
            assert_eq!(read.len(), 100);
            assert_eq!(origin.genus, 3);
            assert!(origin.position as usize + 100 <= 5_000);
            assert_eq!(read.qual.as_ref().unwrap().len(), 100);
        }
    }

    #[test]
    fn error_free_config_reproduces_genome_slices() {
        let config = ReadSimConfig {
            error_rate_5p: 0.0,
            error_rate_3p: 0.0,
            bad_tail_probability: 0.0,
            ..Default::default()
        };
        let g = genome();
        let mut reads = Vec::new();
        let mut origins = Vec::new();
        simulate_reads(&g, 0, 50, &config, 5, "t", &mut reads, &mut origins).unwrap();
        for (read, origin) in reads.iter().zip(&origins) {
            assert_eq!(mismatches_vs_template(&g, read, origin), 0);
        }
    }

    #[test]
    fn error_rates_scale_mismatch_counts() {
        let low = ReadSimConfig {
            error_rate_5p: 0.001,
            error_rate_3p: 0.001,
            bad_tail_probability: 0.0,
            ..Default::default()
        };
        let high = ReadSimConfig {
            error_rate_5p: 0.05,
            error_rate_3p: 0.05,
            bad_tail_probability: 0.0,
            ..Default::default()
        };
        let g = genome();
        let count_mismatches = |config: &ReadSimConfig| {
            let mut reads = Vec::new();
            let mut origins = Vec::new();
            simulate_reads(&g, 0, 300, config, 9, "t", &mut reads, &mut origins).unwrap();
            reads
                .iter()
                .zip(&origins)
                .map(|(r, o)| mismatches_vs_template(&g, r, o))
                .sum::<usize>()
        };
        assert!(count_mismatches(&high) > 5 * count_mismatches(&low));
    }

    #[test]
    fn bad_tails_have_low_quality() {
        let config = ReadSimConfig {
            bad_tail_probability: 1.0,
            bad_tail_len: 10,
            ..Default::default()
        };
        let (reads, _) = simulate(&config, 2);
        for read in &reads {
            let q = read.qual.as_ref().unwrap();
            let tail_mean = q.window_mean(90, 100).unwrap();
            let head_mean = q.window_mean(0, 10).unwrap();
            assert!(
                tail_mean < head_mean,
                "tail {tail_mean} !< head {head_mean}"
            );
            assert!(
                tail_mean < 10.0,
                "tail quality should be terrible: {tail_mean}"
            );
        }
    }

    #[test]
    fn reverse_strand_reads_match_rc_template() {
        let config = ReadSimConfig {
            error_rate_5p: 0.0,
            error_rate_3p: 0.0,
            bad_tail_probability: 0.0,
            reverse_strand_probability: 1.0,
            ..Default::default()
        };
        let g = genome();
        let mut reads = Vec::new();
        let mut origins = Vec::new();
        simulate_reads(&g, 0, 20, &config, 3, "t", &mut reads, &mut origins).unwrap();
        for (read, origin) in reads.iter().zip(&origins) {
            assert!(origin.reverse);
            assert_eq!(mismatches_vs_template(&g, read, origin), 0);
            // And it is genuinely the RC, not the forward slice.
            let fwd = g.slice(origin.position as usize, origin.position as usize + 100);
            assert_ne!(read.seq, fwd);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (a, _) = simulate(&ReadSimConfig::default(), 42);
        let (b, _) = simulate(&ReadSimConfig::default(), 42);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_short_genome_and_bad_config() {
        let g: DnaString = "ACGT".parse().unwrap();
        let mut reads = Vec::new();
        let mut origins = Vec::new();
        assert!(simulate_reads(
            &g,
            0,
            1,
            &ReadSimConfig::default(),
            1,
            "t",
            &mut reads,
            &mut origins
        )
        .is_err());
        assert!(ReadSimConfig {
            read_len: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ReadSimConfig {
            error_rate_3p: 2.0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
