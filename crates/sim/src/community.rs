//! Community abundance profiles.

use crate::error::SimError;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Relative abundances over the genera of a taxonomy.
///
/// ```
/// use fc_sim::CommunityProfile;
/// let c = CommunityProfile::from_weights(&[3.0, 1.0]).unwrap();
/// assert_eq!(c.abundance(0), 0.75);
/// assert_eq!(c.read_counts(100), vec![75, 25]);
/// ```
///
/// Microbial communities typically have strongly skewed abundance
/// distributions; we draw abundances from a log-normal-like model (exp of a
/// normal via sums of uniforms) and normalise. Each of the paper-analogue
/// data sets D1–D3 uses a different seed, giving the distinct community
/// compositions visible across the three heat maps of Fig. 7.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityProfile {
    abundances: Vec<f64>,
}

impl CommunityProfile {
    /// Uniform community over `n` genera.
    pub fn uniform(n: usize) -> CommunityProfile {
        assert!(n > 0, "community needs at least one genus");
        CommunityProfile {
            abundances: vec![1.0 / n as f64; n],
        }
    }

    /// Skewed community over `n` genera, deterministic in `seed`.
    ///
    /// `sigma` controls skew: 0 gives a uniform community, ~1 gives realistic
    /// order-of-magnitude spreads.
    pub fn log_normal(n: usize, sigma: f64, seed: u64) -> CommunityProfile {
        assert!(n > 0, "community needs at least one genus");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut abundances: Vec<f64> = (0..n)
            .map(|_| {
                // Approximate a standard normal with the sum of 12 uniforms.
                let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
                (sigma * z).exp()
            })
            .collect();
        let total: f64 = abundances.iter().sum();
        for a in &mut abundances {
            *a /= total;
        }
        CommunityProfile { abundances }
    }

    /// Explicit abundances (normalised by this constructor).
    pub fn from_weights(weights: &[f64]) -> Result<CommunityProfile, SimError> {
        let config = |message: &str| SimError::Config {
            parameter: "weights",
            message: message.to_string(),
        };
        if weights.is_empty() {
            return Err(config("community needs at least one genus"));
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(config("weights must be finite and non-negative"));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(config("weights must not all be zero"));
        }
        Ok(CommunityProfile {
            abundances: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// Number of genera.
    pub fn len(&self) -> usize {
        self.abundances.len()
    }

    /// True if the profile covers no genera (never constructible).
    pub fn is_empty(&self) -> bool {
        self.abundances.is_empty()
    }

    /// Normalised abundance of genus `i`.
    pub fn abundance(&self, i: usize) -> f64 {
        self.abundances[i]
    }

    /// All abundances.
    pub fn as_slice(&self) -> &[f64] {
        &self.abundances
    }

    /// Samples a genus index proportional to abundance using `u ∈ [0, 1)`.
    pub fn sample_index(&self, u: f64) -> usize {
        let mut acc = 0.0;
        for (i, &a) in self.abundances.iter().enumerate() {
            acc += a;
            if u < acc {
                return i;
            }
        }
        self.abundances.len() - 1
    }

    /// Splits `total_reads` across genera proportional to abundance, with
    /// rounding corrected so the counts sum exactly to `total_reads`.
    pub fn read_counts(&self, total_reads: usize) -> Vec<usize> {
        let mut counts: Vec<usize> = self
            .abundances
            .iter()
            .map(|a| (a * total_reads as f64).floor() as usize)
            .collect();
        let mut assigned: usize = counts.iter().sum();
        // Hand out the remainder to the largest fractional parts.
        let mut fracs: Vec<(usize, f64)> = self
            .abundances
            .iter()
            .enumerate()
            .map(|(i, a)| (i, a * total_reads as f64 - counts[i] as f64))
            .collect();
        fracs.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut next = 0;
        while assigned < total_reads {
            counts[fracs[next % fracs.len()].0] += 1;
            assigned += 1;
            next += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sums_to_one() {
        let c = CommunityProfile::uniform(4);
        assert!((c.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(c.abundance(0), 0.25);
    }

    #[test]
    fn log_normal_is_normalised_and_deterministic() {
        let a = CommunityProfile::log_normal(10, 1.0, 7);
        let b = CommunityProfile::log_normal(10, 1.0, 7);
        assert_eq!(a, b);
        assert!((a.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // With sigma=1 the spread should be non-trivial.
        let max = a.as_slice().iter().cloned().fold(0.0, f64::max);
        let min = a.as_slice().iter().cloned().fold(1.0, f64::min);
        assert!(max / min > 1.5, "skew too small: {min}..{max}");
    }

    #[test]
    fn from_weights_normalises_and_validates() {
        let c = CommunityProfile::from_weights(&[1.0, 3.0]).unwrap();
        assert!((c.abundance(1) - 0.75).abs() < 1e-12);
        assert!(CommunityProfile::from_weights(&[]).is_err());
        assert!(CommunityProfile::from_weights(&[-1.0, 2.0]).is_err());
        assert!(CommunityProfile::from_weights(&[0.0, 0.0]).is_err());
        assert!(CommunityProfile::from_weights(&[f64::NAN]).is_err());
    }

    #[test]
    fn sample_index_respects_cumulative_ranges() {
        let c = CommunityProfile::from_weights(&[1.0, 1.0, 2.0]).unwrap();
        assert_eq!(c.sample_index(0.0), 0);
        assert_eq!(c.sample_index(0.26), 1);
        assert_eq!(c.sample_index(0.6), 2);
        assert_eq!(c.sample_index(0.999_999), 2);
    }

    #[test]
    fn read_counts_sum_exactly() {
        let c = CommunityProfile::log_normal(7, 1.0, 3);
        for total in [0usize, 1, 97, 1000] {
            let counts = c.read_counts(total);
            assert_eq!(counts.iter().sum::<usize>(), total, "total={total}");
        }
    }
}
