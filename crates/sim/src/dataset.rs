//! Assembled synthetic data sets, including the paper analogues D1–D3.

use crate::community::CommunityProfile;
use crate::error::SimError;
use crate::genome::GenomeConfig;
use crate::phylo::{Taxonomy, TaxonomyConfig};
use crate::reads::{simulate_reads, simulate_reads_to, ReadOrigin, ReadSimConfig};
use fc_seq::Read;
use std::io::Write;

/// Everything needed to run an experiment on one synthetic data set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Data-set name (e.g. `"D1"`, standing in for SRR513170).
    pub name: String,
    /// The taxonomy the reads were sampled from; genus genomes double as the
    /// classification reference database (paper §VI-E used BWA + the HMP gut
    /// reference set).
    pub taxonomy: Taxonomy,
    /// Relative genus abundances.
    pub community: CommunityProfile,
    /// The simulated reads, in simulation order.
    pub reads: Vec<Read>,
    /// Ground-truth origin of each read (parallel to `reads`).
    pub origins: Vec<ReadOrigin>,
    /// Seed the data set was generated from.
    pub seed: u64,
}

impl Dataset {
    /// Total bases across all reads.
    pub fn total_bases(&self) -> usize {
        self.reads.iter().map(Read::len).sum()
    }

    /// Read length (all simulated reads share one length).
    pub fn read_len(&self) -> usize {
        self.reads.first().map_or(0, Read::len)
    }
}

/// Parameters for building a [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Taxonomy (phyla/genera/genomes) parameters.
    pub taxonomy: TaxonomyConfig,
    /// Read simulator parameters.
    pub reads: ReadSimConfig,
    /// Total reads across all genera.
    pub total_reads: usize,
    /// Abundance skew (`sigma` of [`CommunityProfile::log_normal`]).
    pub abundance_sigma: f64,
}

impl Default for DatasetConfig {
    fn default() -> DatasetConfig {
        DatasetConfig {
            taxonomy: TaxonomyConfig::default(),
            reads: ReadSimConfig::default(),
            total_reads: 10_000,
            abundance_sigma: 0.8,
        }
    }
}

impl DatasetConfig {
    /// The benchmark-scale configuration used by the experiment harness:
    /// ten gut genera over three phyla, 12 kb genomes with dispersed
    /// repeats, 100 bp reads at ~8× community-wide coverage. `scale`
    /// multiplies the read count (and hence coverage); 1.0 is the default
    /// benchmark size, tests use much smaller values.
    pub fn paper_scale(scale: f64) -> DatasetConfig {
        let mut config = DatasetConfig::default();
        config.taxonomy.genome = GenomeConfig {
            length: 12_000,
            repeat_copies: 3,
            repeat_len: 250,
        };
        config.total_reads = ((10_000.0 * scale).round() as usize).max(10);
        config
    }

    /// A deliberately tiny configuration for unit/integration tests.
    pub fn test_scale() -> DatasetConfig {
        let mut config = DatasetConfig::default();
        config.taxonomy.genera = crate::phylo::GUT_GENERA[..4]
            .iter()
            .map(|&(g, p)| (g.to_string(), p.to_string()))
            .collect();
        config.taxonomy.genome = GenomeConfig {
            length: 3_000,
            repeat_copies: 0,
            repeat_len: 0,
        };
        config.total_reads = 900;
        config
    }
}

/// Builds a data set deterministically from `config` and `seed`.
pub fn generate(name: &str, config: &DatasetConfig, seed: u64) -> Result<Dataset, SimError> {
    let taxonomy = Taxonomy::generate(&config.taxonomy, seed)?;
    let community = CommunityProfile::log_normal(
        taxonomy.genus_count(),
        config.abundance_sigma,
        seed ^ 0x5151,
    );
    let counts = community.read_counts(config.total_reads);

    let mut reads = Vec::with_capacity(config.total_reads);
    let mut origins = Vec::with_capacity(config.total_reads);
    for (gi, (genus, &count)) in taxonomy.genera.iter().zip(&counts).enumerate() {
        simulate_reads(
            &genus.genome,
            gi as u32,
            count,
            &config.reads,
            seed.wrapping_mul(31).wrapping_add(gi as u64),
            &format!("{name}_{}", genus.name),
            &mut reads,
            &mut origins,
        )?;
    }
    Ok(Dataset {
        name: name.to_string(),
        taxonomy,
        community,
        reads,
        origins,
        seed,
    })
}

/// What [`generate_to`] streamed: enough to report coverage and read counts
/// without the reads themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSummary {
    /// Reads written.
    pub reads: usize,
    /// Total bases written.
    pub bases: u64,
}

/// Streams the data set `generate` would build straight to a FASTQ writer,
/// holding one read in memory at a time — O(1) memory in `total_reads`, so
/// inputs far bigger than RAM can be synthesized.
///
/// The RNG schedule is shared with [`generate`]: for the same `(name,
/// config, seed)` the bytes written here equal `fc_seq::fastq::write` over
/// [`Dataset::reads`]. Only the reads stream out; the taxonomy and
/// community (small, genome-sized) are built in memory as usual and
/// discarded.
pub fn generate_to<W: Write>(
    mut out: W,
    name: &str,
    config: &DatasetConfig,
    seed: u64,
) -> Result<StreamSummary, SimError> {
    let taxonomy = Taxonomy::generate(&config.taxonomy, seed)?;
    let community = CommunityProfile::log_normal(
        taxonomy.genus_count(),
        config.abundance_sigma,
        seed ^ 0x5151,
    );
    let counts = community.read_counts(config.total_reads);

    let mut summary = StreamSummary { reads: 0, bases: 0 };
    for (gi, (genus, &count)) in taxonomy.genera.iter().zip(&counts).enumerate() {
        simulate_reads_to(
            &genus.genome,
            gi as u32,
            count,
            &config.reads,
            seed.wrapping_mul(31).wrapping_add(gi as u64),
            &format!("{name}_{}", genus.name),
            &mut |read, _origin| {
                fc_seq::fastq::write_read(&mut out, &read, 30).map_err(|e| SimError::Io {
                    message: e.to_string(),
                })?;
                summary.reads += 1;
                summary.bases += read.len() as u64;
                Ok(())
            },
        )?;
    }
    out.flush().map_err(|e| SimError::Io {
        message: e.to_string(),
    })?;
    Ok(summary)
}

/// The three deterministic paper-analogue data sets (Table I substitutes):
/// same taxonomy parameters, different seeds/abundances — mirroring three
/// different gut samples sequenced the same way.
pub fn paper_datasets(scale: f64) -> Result<Vec<Dataset>, SimError> {
    let config = DatasetConfig::paper_scale(scale);
    [("D1", 1001u64), ("D2", 2002), ("D3", 3003)]
        .iter()
        .map(|&(name, seed)| generate(name, &config, seed))
        .collect()
}

/// A single-genome (non-metagenomic) data set for quickstarts and tests:
/// one genome of `genome_len` bases covered at `coverage`×.
pub fn single_genome_dataset(
    genome_len: usize,
    coverage: f64,
    seed: u64,
) -> Result<Dataset, SimError> {
    let mut config = DatasetConfig::default();
    config.taxonomy.genera = vec![("Escherichia".to_string(), "Proteobacteria".to_string())];
    config.taxonomy.genome = GenomeConfig {
        length: genome_len,
        repeat_copies: 0,
        repeat_len: 0,
    };
    config.abundance_sigma = 0.0;
    config.total_reads =
        ((genome_len as f64 * coverage) / config.reads.read_len as f64).round() as usize;
    generate("single", &config, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_test_scale_dataset() {
        let d = generate("T", &DatasetConfig::test_scale(), 42).unwrap();
        assert_eq!(d.reads.len(), 900);
        assert_eq!(d.origins.len(), 900);
        assert_eq!(d.taxonomy.genus_count(), 4);
        assert_eq!(d.read_len(), 100);
        assert_eq!(d.total_bases(), 90_000);
    }

    #[test]
    fn read_counts_respect_abundances() {
        let d = generate("T", &DatasetConfig::test_scale(), 7).unwrap();
        let mut per_genus = vec![0usize; d.taxonomy.genus_count()];
        for o in &d.origins {
            per_genus[o.genus as usize] += 1;
        }
        assert_eq!(per_genus.iter().sum::<usize>(), 900);
        for (gi, &count) in per_genus.iter().enumerate() {
            let expected = d.community.abundance(gi) * 900.0;
            assert!(
                (count as f64 - expected).abs() <= 1.0,
                "genus {gi}: {count} vs expected {expected}"
            );
        }
    }

    #[test]
    fn generate_to_streams_byte_identical_fastq() {
        let config = DatasetConfig::test_scale();
        let d = generate("T", &config, 42).unwrap();
        let mut collected = Vec::new();
        fc_seq::fastq::write(&mut collected, &d.reads, 30).unwrap();

        let mut streamed = Vec::new();
        let summary = generate_to(&mut streamed, "T", &config, 42).unwrap();
        assert_eq!(streamed, collected, "streamed FASTQ must match collected");
        assert_eq!(summary.reads, d.reads.len());
        assert_eq!(summary.bases, d.total_bases() as u64);
    }

    #[test]
    fn generate_to_surfaces_write_errors_typed() {
        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = generate_to(Broken, "T", &DatasetConfig::test_scale(), 1).unwrap_err();
        assert!(matches!(err, SimError::Io { .. }), "{err}");
    }

    #[test]
    fn paper_datasets_are_three_distinct_sets() {
        let sets = paper_datasets(0.02).unwrap();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].name, "D1");
        // Different seeds must give different reads and abundances.
        assert_ne!(sets[0].reads[0].seq, sets[1].reads[0].seq);
        assert_ne!(sets[0].community, sets[1].community);
        // But the same shape.
        assert_eq!(sets[0].reads.len(), sets[1].reads.len());
        assert_eq!(sets[0].taxonomy.genus_count(), 10);
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = generate("T", &DatasetConfig::test_scale(), 5).unwrap();
        let b = generate("T", &DatasetConfig::test_scale(), 5).unwrap();
        assert_eq!(a.reads, b.reads);
        assert_eq!(a.origins, b.origins);
    }

    #[test]
    fn single_genome_dataset_has_one_genus() {
        let d = single_genome_dataset(4_000, 10.0, 9).unwrap();
        assert_eq!(d.taxonomy.genus_count(), 1);
        assert_eq!(d.reads.len(), 400);
        assert!(d.origins.iter().all(|o| o.genus == 0));
    }
}
