//! A small gut-like taxonomy of phyla and genera.
//!
//! The paper's Fig. 7 analysis works with the ten most abundant genera of the
//! human gut microbiome, spread over three phyla. We reproduce that taxonomy
//! with synthetic genomes: each phylum gets an ancestral genome; each genus
//! genome is derived from its phylum ancestor under the within-phylum
//! mutation model, and phylum ancestors are derived from a root genome under
//! the heavier between-phyla model. The result is the similarity structure
//! the paper exploits — same-phylum genera share alignable sequence.

use crate::error::SimError;
use crate::genome::{mutate_genome, random_genome, GenomeConfig, MutationModel};
use fc_seq::DnaString;

/// The ten major gut genera of paper Fig. 7 with their phylum memberships.
pub const GUT_GENERA: &[(&str, &str)] = &[
    ("Alistipes", "Bacteroidetes"),
    ("Bacteroides", "Bacteroidetes"),
    ("Prevotella", "Bacteroidetes"),
    ("Parabacteroides", "Bacteroidetes"),
    ("Clostridium", "Firmicutes"),
    ("Eubacterium", "Firmicutes"),
    ("Faecalibacterium", "Firmicutes"),
    ("Roseburia", "Firmicutes"),
    ("Escherichia", "Proteobacteria"),
    ("Acinetobacter", "Proteobacteria"),
];

/// Configuration for building a [`Taxonomy`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaxonomyConfig {
    /// `(genus name, phylum name)` pairs; defaults to [`GUT_GENERA`].
    pub genera: Vec<(String, String)>,
    /// Genome parameters shared by all genomes.
    pub genome: GenomeConfig,
    /// Divergence of phylum ancestors from the root.
    pub between_phyla: MutationModel,
    /// Divergence of genus genomes from their phylum ancestor.
    pub within_phylum: MutationModel,
}

impl Default for TaxonomyConfig {
    fn default() -> TaxonomyConfig {
        TaxonomyConfig {
            genera: GUT_GENERA
                .iter()
                .map(|&(g, p)| (g.to_string(), p.to_string()))
                .collect(),
            genome: GenomeConfig::default(),
            between_phyla: MutationModel::between_phyla(),
            within_phylum: MutationModel::within_phylum(),
        }
    }
}

/// One genus: a named genome assigned to a phylum.
#[derive(Debug, Clone)]
pub struct Genus {
    /// Genus name (e.g. `"Bacteroides"`).
    pub name: String,
    /// Phylum name (e.g. `"Bacteroidetes"`).
    pub phylum: String,
    /// Index of the phylum within [`Taxonomy::phyla`].
    pub phylum_index: usize,
    /// The genus's reference genome.
    pub genome: DnaString,
}

/// A simulated taxonomy: phyla with ancestral genomes and genus genomes
/// derived from them.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    /// Phylum names, in first-appearance order.
    pub phyla: Vec<String>,
    /// All genera.
    pub genera: Vec<Genus>,
}

impl Taxonomy {
    /// Builds the taxonomy deterministically from `seed`.
    pub fn generate(config: &TaxonomyConfig, seed: u64) -> Result<Taxonomy, SimError> {
        config.between_phyla.validate()?;
        config.within_phylum.validate()?;
        if config.genera.is_empty() {
            return Err(SimError::Config {
                parameter: "genera",
                message: "taxonomy needs at least one genus".to_string(),
            });
        }
        let root = random_genome(&config.genome, seed);

        let mut phyla: Vec<String> = Vec::new();
        for (_, phylum) in &config.genera {
            if !phyla.contains(phylum) {
                phyla.push(phylum.clone());
            }
        }
        let ancestors: Vec<DnaString> = phyla
            .iter()
            .enumerate()
            .map(|(i, _)| {
                mutate_genome(
                    &root,
                    &config.between_phyla,
                    seed.wrapping_add(1000 + i as u64),
                )
            })
            .collect();

        let mut genera = Vec::with_capacity(config.genera.len());
        for (gi, (name, phylum)) in config.genera.iter().enumerate() {
            let Some(phylum_index) = phyla.iter().position(|p| p == phylum) else {
                return Err(SimError::Config {
                    parameter: "genera",
                    message: format!("phylum {phylum} missing from the registry"),
                });
            };
            genera.push(Genus {
                name: name.clone(),
                phylum: phylum.clone(),
                phylum_index,
                genome: mutate_genome(
                    &ancestors[phylum_index],
                    &config.within_phylum,
                    seed.wrapping_add(2000 + gi as u64),
                ),
            });
        }

        Ok(Taxonomy { phyla, genera })
    }

    /// Number of genera.
    pub fn genus_count(&self) -> usize {
        self.genera.len()
    }

    /// Index of a genus by name.
    pub fn genus_index(&self, name: &str) -> Option<usize> {
        self.genera.iter().position(|g| g.name == name)
    }

    /// Indices of the genera belonging to `phylum`.
    pub fn genera_of_phylum(&self, phylum: &str) -> Vec<usize> {
        self.genera
            .iter()
            .enumerate()
            .filter(|(_, g)| g.phylum == phylum)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::approximate_divergence;

    fn small_config() -> TaxonomyConfig {
        TaxonomyConfig {
            genome: GenomeConfig {
                length: 8_000,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn builds_default_gut_taxonomy() {
        let tax = Taxonomy::generate(&small_config(), 1).unwrap();
        assert_eq!(tax.genus_count(), 10);
        assert_eq!(tax.phyla.len(), 3);
        assert_eq!(tax.genera_of_phylum("Firmicutes").len(), 4);
        assert_eq!(tax.genus_index("Roseburia"), Some(7));
        assert_eq!(tax.genera[7].phylum, "Firmicutes");
    }

    #[test]
    fn same_phylum_genera_are_more_similar() {
        let tax = Taxonomy::generate(&small_config(), 99).unwrap();
        let bacteroides = &tax.genera[tax.genus_index("Bacteroides").unwrap()].genome;
        let prevotella = &tax.genera[tax.genus_index("Prevotella").unwrap()].genome;
        let escherichia = &tax.genera[tax.genus_index("Escherichia").unwrap()].genome;
        let within = approximate_divergence(bacteroides, prevotella);
        let across = approximate_divergence(bacteroides, escherichia);
        assert!(
            within < across,
            "within-phylum divergence {within} should be < cross-phylum {across}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Taxonomy::generate(&small_config(), 5).unwrap();
        let b = Taxonomy::generate(&small_config(), 5).unwrap();
        for (ga, gb) in a.genera.iter().zip(&b.genera) {
            assert_eq!(ga.genome, gb.genome);
        }
    }

    #[test]
    fn rejects_empty_taxonomy() {
        let config = TaxonomyConfig {
            genera: vec![],
            ..small_config()
        };
        assert!(Taxonomy::generate(&config, 1).is_err());
    }

    #[test]
    fn unknown_genus_lookup() {
        let tax = Taxonomy::generate(&small_config(), 1).unwrap();
        assert_eq!(tax.genus_index("Klebsiella"), None);
        assert!(tax.genera_of_phylum("Actinobacteria").is_empty());
    }
}
