//! # fc-partition — multilevel graph partitioning (paper §IV)
//!
//! Partitions a [`fc_graph::GraphSet`] — either the multilevel set (the
//! "naïve" baseline) or the hybrid set (biological knowledge injected) —
//! into `k = 2^i` parts by recursive bisection:
//!
//! * [`local`] — dense induced-subgraph extraction used by all algorithms,
//! * [`grow`] — greedy graph growing for the initial bisection (§IV-A):
//!   gain-priority growth, alternating sides, 3 % edge-weight balance bound,
//! * [`kl`] — Kernighan–Lin bisection refinement (§IV-B): D values, dual
//!   sorted queues with diagonal scanning, fifty-swap early stop, undo to
//!   the best partial sum,
//! * [`recursive`] — multilevel recursive bisection with projection and
//!   per-level refinement (§IV-C), recording the task tree whose natural
//!   parallelism fc-dist schedules (Fig. 4),
//! * [`kway`] — global k-way Kernighan–Lin boundary refinement (§IV-D),
//! * [`metrics`] — edge cut, balance and validity checks (Table II).

pub mod error;
pub mod grow;
pub mod kl;
pub mod kway;
pub mod local;
pub mod metrics;
pub mod recursive;

pub use error::PartitionError;
pub use grow::greedy_grow;
pub use kl::kl_refine;
pub use kway::{kway_refine, kway_refine_obs};
pub use local::LocalGraph;
pub use metrics::{edge_cut, partition_balance, validate_partition};
pub use recursive::{
    partition_graph_set, partition_graph_set_obs, PartitionConfig, PartitionResult, TaskRecord,
};
