//! Global k-way Kernighan–Lin refinement (paper §IV-D, after Karypis &
//! Kumar's multilevel k-way scheme).
//!
//! Boundary nodes are examined in order of decreasing gain; a node moves to
//! the neighboring partition with maximal external weight, provided the
//! balance bound allows it. Moves are logged with partial gain sums; after a
//! pass, moves past the maximal partial sum are undone. A pass also stops
//! after fifty consecutive non-improving moves. Passes repeat until no
//! improvement remains.

use crate::metrics::edge_cut;
use fc_graph::LevelGraph;
use fc_obs::Recorder;

/// Tuning knobs of the k-way refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KwayConfig {
    /// Consecutive non-improving moves before a pass gives up (paper: 50).
    pub max_bad_moves: usize,
    /// Safety cap on passes.
    pub max_passes: usize,
    /// Balance bound: a move into `Pj` is rejected when
    /// `weight(Pj) ≥ balance · weight(Pi)` (paper: 1.03).
    pub balance: f64,
}

impl Default for KwayConfig {
    fn default() -> KwayConfig {
        KwayConfig {
            max_bad_moves: 50,
            max_passes: 8,
            balance: 1.03,
        }
    }
}

/// Refines a k-partition in place; returns the total cut improvement.
///
/// # Invariants
/// `parts` stays a valid `k`-partition throughout: its length is unchanged,
/// every id remains in `0..k`, and only whole moves are applied (an undone
/// pass suffix restores the pre-move assignment exactly). The returned
/// improvement equals `edge_cut` before the call minus `edge_cut` after.
pub fn kway_refine(
    g: &LevelGraph,
    parts: &mut [u32],
    k: usize,
    config: &KwayConfig,
    work: &mut u64,
) -> u64 {
    kway_refine_obs(g, parts, k, config, work, &Recorder::disabled())
}

/// [`kway_refine`] with refinement metrics recorded into `rec`: the pass
/// count (`partition.kway_passes`) and the per-pass applied gain
/// (`partition.kway_pass_gain`). The refinement itself is identical.
///
/// # Invariants
/// `parts` stays a valid `k`-partition throughout: its length is unchanged,
/// every id remains in `0..k`, and only whole moves are applied (an undone
/// pass suffix restores the pre-move assignment exactly). The returned
/// improvement equals `edge_cut` before the call minus `edge_cut` after.
pub fn kway_refine_obs(
    g: &LevelGraph,
    parts: &mut [u32],
    k: usize,
    config: &KwayConfig,
    work: &mut u64,
    rec: &Recorder,
) -> u64 {
    if k < 2 || g.node_count() < 2 {
        return 0;
    }
    let before = edge_cut(g, parts);
    for _ in 0..config.max_passes {
        let gain = kway_pass(g, parts, k, config, work);
        rec.add("partition.kway_passes", 1);
        rec.observe("partition.kway_pass_gain", gain);
        if gain == 0 {
            break;
        }
    }
    before - edge_cut(g, parts)
}

/// One pass; returns the applied (positive) gain.
fn kway_pass(
    g: &LevelGraph,
    parts: &mut [u32],
    k: usize,
    config: &KwayConfig,
    work: &mut u64,
) -> u64 {
    let n = g.node_count();
    let mut part_weight = vec![0u64; k];
    for v in 0..n {
        part_weight[parts[v] as usize] += g.node_weight(v as u32);
    }
    let mut locked = vec![false; n];
    let mut moves: Vec<(u32, u32, u32, i64)> = Vec::new(); // (node, from, to, gain)
    let mut cum = 0i64;
    let mut best_cum = 0i64;
    let mut best_index = 0usize;
    let mut bad_moves = 0usize;

    loop {
        // Best admissible move over all unlocked boundary nodes.
        let mut best: Option<(i64, u32, u32)> = None; // (gain, node, target)
        let mut ext = vec![0i64; k]; // reused scratch: external weight per part
        for v in 0..n as u32 {
            if locked[v as usize] {
                continue;
            }
            let pi = parts[v as usize];
            let mut internal = 0i64;
            let mut touched: Vec<u32> = Vec::new();
            for &(u, w) in g.neighbors(v) {
                *work += 1;
                let pu = parts[u as usize];
                if pu == pi {
                    internal += w as i64;
                } else {
                    if ext[pu as usize] == 0 {
                        touched.push(pu);
                    }
                    ext[pu as usize] += w as i64;
                }
            }
            // Only boundary nodes (E_v > 0) are candidates. A node never
            // leaves a partition it is the last member of — emptying a
            // partition is never what refinement means.
            let would_empty = part_weight[pi as usize] == g.node_weight(v);
            for &pj in &touched {
                let admissible = !would_empty
                    && (part_weight[pj as usize] as f64)
                        < config.balance * part_weight[pi as usize] as f64;
                if admissible {
                    let gain = ext[pj as usize] - internal;
                    let better = match best {
                        None => true,
                        Some((bg, bv, _)) => gain > bg || (gain == bg && v < bv),
                    };
                    if better {
                        best = Some((gain, v, pj));
                    }
                }
            }
            for &pj in &touched {
                ext[pj as usize] = 0;
            }
        }
        let Some((gain, v, pj)) = best else { break };
        let pi = parts[v as usize];
        parts[v as usize] = pj;
        locked[v as usize] = true;
        let w_v = g.node_weight(v);
        part_weight[pi as usize] -= w_v;
        part_weight[pj as usize] += w_v;
        cum += gain;
        moves.push((v, pi, pj, gain));
        if cum > best_cum {
            best_cum = cum;
            best_index = moves.len();
            bad_moves = 0;
        } else {
            bad_moves += 1;
            if bad_moves >= config.max_bad_moves {
                break;
            }
        }
    }

    // Undo everything past the best prefix.
    for &(v, from, _to, _) in moves[best_index..].iter().rev() {
        parts[v as usize] = from;
    }
    best_cum.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{partition_balance, validate_partition};

    /// Three 4-cliques chained by single light edges.
    fn three_cliques() -> LevelGraph {
        let mut g = LevelGraph::with_nodes(12);
        for base in [0u32, 4, 8] {
            for i in 0..4 {
                for j in i + 1..4 {
                    g.add_edge(base + i, base + j, 10);
                }
            }
        }
        g.add_edge(3, 4, 1);
        g.add_edge(7, 8, 1);
        g
    }

    #[test]
    fn repairs_misassigned_clique_members() {
        let g = three_cliques();
        // Swap one node between cliques 0 and 1 (balance preserved).
        let mut parts: Vec<u32> = (0..12).map(|v| (v / 4) as u32).collect();
        parts[0] = 1;
        parts[4] = 0;
        let before = edge_cut(&g, &parts);
        let mut work = 0;
        let gain = kway_refine(&g, &mut parts, 3, &KwayConfig::default(), &mut work);
        let after = edge_cut(&g, &parts);
        assert_eq!(before - after, gain);
        assert_eq!(after, 2, "expected the two bridge edges only, got {after}");
        validate_partition(&g, &parts, 3).unwrap();
    }

    #[test]
    fn no_improvement_leaves_partition_unchanged() {
        let g = three_cliques();
        let mut parts: Vec<u32> = (0..12).map(|v| (v / 4) as u32).collect();
        let snapshot = parts.clone();
        let mut work = 0;
        let gain = kway_refine(&g, &mut parts, 3, &KwayConfig::default(), &mut work);
        assert_eq!(gain, 0);
        assert_eq!(parts, snapshot);
    }

    #[test]
    fn respects_balance_bound_and_never_empties() {
        // Two nodes, one edge: any move would merge the partitions (gain 10)
        // but would empty one of them — both moves must be blocked.
        let mut g = LevelGraph::with_nodes(2);
        g.add_edge(0, 1, 10);
        let mut parts = vec![0u32, 1];
        let mut work = 0;
        let gain = kway_refine(&g, &mut parts, 2, &KwayConfig::default(), &mut work);
        assert_eq!(gain, 0);
        assert_eq!(parts, vec![0, 1]);

        // Heavy target: node 0 (w=1) next to a clique of weight 12 in P1;
        // the 1.03 bound must block 0's move into P1. P0 has a second node
        // so the no-emptying rule is not what blocks.
        let mut g2 = LevelGraph::with_node_weights(vec![1, 4, 4, 4, 1]);
        for (u, v, w) in [
            (0u32, 1u32, 2u64),
            (1, 2, 9),
            (2, 3, 9),
            (1, 3, 9),
            (0, 4, 1),
        ] {
            g2.add_edge(u, v, w);
        }
        let mut parts = vec![0u32, 1, 1, 1, 0];
        let mut work = 0;
        kway_refine(&g2, &mut parts, 2, &KwayConfig::default(), &mut work);
        // weight(P1)=12 ≥ 1.03·weight(P0)=2.06: node 0 must stay in P0.
        assert_eq!(parts[0], 0);
    }

    #[test]
    fn k_one_is_a_noop() {
        let g = three_cliques();
        let mut parts = vec![0u32; 12];
        let mut work = 0;
        assert_eq!(
            kway_refine(&g, &mut parts, 1, &KwayConfig::default(), &mut work),
            0
        );
    }

    #[test]
    fn balance_never_explodes() {
        let g = three_cliques();
        let mut parts: Vec<u32> = (0..12).map(|v| (v % 3) as u32).collect(); // scrambled
        let mut work = 0;
        kway_refine(&g, &mut parts, 3, &KwayConfig::default(), &mut work);
        let balance = partition_balance(&g, &parts, 3);
        assert!(balance <= 2.0, "balance exploded: {balance}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_case() -> impl Strategy<Value = (LevelGraph, Vec<u32>, usize)> {
        (
            3usize..20,
            2usize..5,
            proptest::collection::vec((0usize..20, 0usize..20, 1u64..30), 1..60),
        )
            .prop_flat_map(|(n, k, raw)| {
                let mut g = LevelGraph::with_nodes(n);
                for (u, v, w) in raw {
                    let (u, v) = (u % n, v % n);
                    if u != v {
                        g.add_edge(u as u32, v as u32, w);
                    }
                }
                (
                    Just(g),
                    proptest::collection::vec(0u32..k as u32, n),
                    Just(k),
                )
            })
    }

    proptest! {
        /// k-way refinement never worsens the cut, reports the exact delta,
        /// and keeps assignments in range.
        #[test]
        fn kway_never_worsens((g, mut parts, k) in arb_case()) {
            let before = edge_cut(&g, &parts);
            let mut work = 0;
            let gain = kway_refine(&g, &mut parts, k, &KwayConfig::default(), &mut work);
            let after = edge_cut(&g, &parts);
            prop_assert!(after <= before);
            prop_assert_eq!(before - after, gain);
            prop_assert!(parts.iter().all(|&p| (p as usize) < k));
        }
    }
}
