//! Dense induced subgraphs.
//!
//! Recursive bisection repeatedly works on the subgraph induced by one
//! partition's nodes. Extracting it into dense local ids keeps the greedy
//! growing and KL inner loops cache-friendly and index-based.

use fc_graph::{LevelGraph, NodeId};

/// An induced subgraph with dense local node ids.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    /// Local id → global node id.
    pub nodes: Vec<NodeId>,
    /// Local adjacency: `(local neighbor, weight)`; only edges with both
    /// endpoints inside the subset are kept.
    pub adj: Vec<Vec<(u32, u64)>>,
    /// Local node weights.
    pub node_w: Vec<u64>,
}

impl LocalGraph {
    /// Extracts the subgraph of `g` induced by `nodes`.
    pub fn extract(g: &LevelGraph, nodes: &[NodeId]) -> LocalGraph {
        let mut global_to_local = std::collections::HashMap::with_capacity(nodes.len());
        for (li, &v) in nodes.iter().enumerate() {
            global_to_local.insert(v, li as u32);
        }
        let adj = nodes
            .iter()
            .map(|&v| {
                g.neighbors(v)
                    .iter()
                    .filter_map(|&(u, w)| global_to_local.get(&u).map(|&lu| (lu, w)))
                    .collect()
            })
            .collect();
        let node_w = nodes.iter().map(|&v| g.node_weight(v)).collect();
        LocalGraph {
            nodes: nodes.to_vec(),
            adj,
            node_w,
        }
    }

    /// Number of local nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total node weight.
    pub fn total_node_weight(&self) -> u64 {
        self.node_w.iter().sum()
    }

    /// Weighted degree of local node `v`.
    pub fn weighted_degree(&self, v: u32) -> u64 {
        self.adj[v as usize].iter().map(|&(_, w)| w).sum()
    }

    /// The cut weight of a two-sided assignment (`side[v]` ∈ {false, true}).
    pub fn cut(&self, side: &[bool]) -> u64 {
        let mut cut = 0;
        for (v, nbrs) in self.adj.iter().enumerate() {
            for &(u, w) in nbrs {
                if (u as usize) > v && side[v] != side[u as usize] {
                    cut += w;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> LevelGraph {
        // 0-1-2
        // |   |
        // 3-4-5
        let mut g = LevelGraph::with_nodes(6);
        for (u, v, w) in [
            (0, 1, 2),
            (1, 2, 3),
            (0, 3, 4),
            (2, 5, 5),
            (3, 4, 6),
            (4, 5, 7),
        ] {
            g.add_edge(u, v, w);
        }
        g
    }

    #[test]
    fn extract_keeps_internal_edges_only() {
        let g = grid();
        let local = LocalGraph::extract(&g, &[0, 1, 3]);
        assert_eq!(local.len(), 3);
        // Edges inside {0,1,3}: 0-1 (2) and 0-3 (4).
        let total: u64 = (0..3).map(|v| local.weighted_degree(v)).sum();
        assert_eq!(total, 2 * (2 + 4));
        assert_eq!(local.total_node_weight(), 3);
    }

    #[test]
    fn cut_counts_cross_side_weight_once() {
        let g = grid();
        let local = LocalGraph::extract(&g, &[0, 1, 2, 3, 4, 5]);
        // Split top row vs bottom row: cut edges 0-3 (4) and 2-5 (5).
        let side = vec![false, false, false, true, true, true];
        assert_eq!(local.cut(&side), 9);
        // Everything on one side: no cut.
        assert_eq!(local.cut(&[false; 6]), 0);
    }

    #[test]
    fn empty_subset() {
        let g = grid();
        let local = LocalGraph::extract(&g, &[]);
        assert!(local.is_empty());
        assert_eq!(local.cut(&[]), 0);
    }
}
