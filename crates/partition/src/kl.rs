//! Kernighan–Lin bisection refinement (paper §IV-B).
//!
//! Each pass swaps node pairs between the two sides in order of decreasing
//! gain, locking swapped nodes, then undoes everything after the maximal
//! partial gain sum. Pair selection follows the paper's `O(n² log n)`
//! scheme: both sides are kept sorted by D value and pairs are examined in
//! decreasing `D_a + D_b` order (diagonal scanning, after Dutt); the scan
//! stops as soon as `D_a + D_b ≤ g_max`, since a pair's gain
//! `D_a + D_b − 2·w(a,b)` can never beat that bound. A pass also terminates
//! early after fifty consecutive swaps without improving the best partial
//! sum (the paper's §IV-B speed-up).

use crate::local::LocalGraph;
use std::collections::HashMap;

/// Tuning knobs of the refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KlConfig {
    /// Consecutive non-improving swaps before a pass gives up (paper: 50).
    pub max_bad_moves: usize,
    /// Safety cap on passes (the paper iterates until no improvement).
    pub max_passes: usize,
}

impl Default for KlConfig {
    fn default() -> KlConfig {
        KlConfig {
            max_bad_moves: 50,
            max_passes: 16,
        }
    }
}

/// Refines a bisection in place. Returns the total cut improvement across
/// all passes (≥ 0: a pass that cannot improve is fully undone). Work
/// counters accumulate into `work`.
pub fn kl_refine(local: &LocalGraph, side: &mut [bool], config: &KlConfig, work: &mut u64) -> u64 {
    let mut total_gain = 0u64;
    for _ in 0..config.max_passes {
        let pass_gain = kl_pass(local, side, config, work);
        if pass_gain == 0 {
            break;
        }
        total_gain += pass_gain;
    }
    total_gain
}

/// One KL pass. Returns the applied (positive) gain, 0 if no improvement.
fn kl_pass(local: &LocalGraph, side: &mut [bool], config: &KlConfig, work: &mut u64) -> u64 {
    let n = local.len();
    if n < 2 {
        return 0;
    }
    // D value: external minus internal weight.
    let mut d = vec![0i64; n];
    for v in 0..n {
        for &(u, w) in &local.adj[v] {
            *work += 1;
            if side[v] != side[u as usize] {
                d[v] += w as i64;
            } else {
                d[v] -= w as i64;
            }
        }
    }

    let mut locked = vec![false; n];
    let mut swaps: Vec<(u32, u32, i64)> = Vec::new();
    let mut cum = 0i64;
    let mut best_cum = 0i64;
    let mut best_index = 0usize; // number of swaps kept
    let mut bad_moves = 0usize;

    loop {
        // Sorted unlocked nodes per side, descending D (ties by id for
        // determinism).
        let mut a_nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| !locked[v as usize] && !side[v as usize])
            .collect();
        let mut b_nodes: Vec<u32> = (0..n as u32)
            .filter(|&v| !locked[v as usize] && side[v as usize])
            .collect();
        if a_nodes.is_empty() || b_nodes.is_empty() {
            break;
        }
        *work += (a_nodes.len() + b_nodes.len()) as u64;
        a_nodes.sort_unstable_by_key(|&v| (std::cmp::Reverse(d[v as usize]), v));
        b_nodes.sort_unstable_by_key(|&v| (std::cmp::Reverse(d[v as usize]), v));

        // Diagonal scan for the best pair.
        let mut gmax: Option<i64> = None;
        let mut best_pair = (0u32, 0u32);
        'outer: for &a in &a_nodes {
            let upper_best = d[a as usize] + d[b_nodes[0] as usize];
            if let Some(g) = gmax {
                if upper_best <= g {
                    break 'outer; // no later row can beat gmax
                }
            }
            // Neighbor weights of `a` for O(1) w(a, b) lookups in this row.
            let wa: HashMap<u32, u64> = local.adj[a as usize].iter().copied().collect();
            for &b in &b_nodes {
                *work += 1;
                let bound = d[a as usize] + d[b as usize];
                if let Some(g) = gmax {
                    if bound <= g {
                        break; // rest of the row is dominated
                    }
                }
                let w_ab = wa.get(&b).copied().unwrap_or(0) as i64;
                let gain = bound - 2 * w_ab;
                if gmax.is_none_or(|g| gain > g) {
                    gmax = Some(gain);
                    best_pair = (a, b);
                }
            }
        }
        let Some(gain) = gmax else { break };
        let (a, b) = best_pair;

        // Swap, lock, update D values of unlocked neighbors.
        side[a as usize] = true;
        side[b as usize] = false;
        locked[a as usize] = true;
        locked[b as usize] = true;
        for &(u, w) in &local.adj[a as usize] {
            *work += 1;
            if locked[u as usize] {
                continue;
            }
            // `a` moved from A to B: nodes still in A see a leave (+2w),
            // nodes in B see a arrive (-2w).
            if !side[u as usize] {
                d[u as usize] += 2 * w as i64;
            } else {
                d[u as usize] -= 2 * w as i64;
            }
        }
        for &(u, w) in &local.adj[b as usize] {
            *work += 1;
            if locked[u as usize] {
                continue;
            }
            if side[u as usize] {
                d[u as usize] += 2 * w as i64;
            } else {
                d[u as usize] -= 2 * w as i64;
            }
        }

        cum += gain;
        swaps.push((a, b, gain));
        if cum > best_cum {
            best_cum = cum;
            best_index = swaps.len();
            bad_moves = 0;
        } else {
            bad_moves += 1;
            if bad_moves >= config.max_bad_moves {
                break;
            }
        }
    }

    // Undo swaps past the best prefix (all of them if best_cum == 0).
    for &(a, b, _) in swaps[best_index..].iter().rev() {
        side[a as usize] = false;
        side[b as usize] = true;
    }
    best_cum.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_graph::LevelGraph;

    fn extract_all(g: &LevelGraph) -> LocalGraph {
        let nodes: Vec<u32> = (0..g.node_count() as u32).collect();
        LocalGraph::extract(g, &nodes)
    }

    /// Two 5-cliques joined by a single light edge: the optimal bisection
    /// separates the cliques.
    fn two_cliques() -> LocalGraph {
        let mut g = LevelGraph::with_nodes(10);
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    g.add_edge(base + i, base + j, 10);
                }
            }
        }
        g.add_edge(0, 5, 1);
        extract_all(&g)
    }

    #[test]
    fn recovers_clique_structure_from_bad_start() {
        let local = two_cliques();
        // Worst start: alternate sides across the cliques.
        let mut side: Vec<bool> = (0..10).map(|v| v % 2 == 0).collect();
        let before = local.cut(&side);
        let mut work = 0;
        let gain = kl_refine(&local, &mut side, &KlConfig::default(), &mut work);
        let after = local.cut(&side);
        assert_eq!(before - gain, after, "reported gain inconsistent with cut");
        assert_eq!(after, 1, "KL should find the single-edge cut, got {after}");
        // The cliques must be whole.
        assert!((1..5).all(|v| side[v] == side[0]));
        assert!((6..10).all(|v| side[v] == side[5]));
        assert_ne!(side[0], side[5]);
    }

    #[test]
    fn never_worsens_the_cut() {
        let local = two_cliques();
        let mut side: Vec<bool> = (0..10).map(|v| v >= 5).collect(); // already optimal
        let before = local.cut(&side);
        let mut work = 0;
        let gain = kl_refine(&local, &mut side, &KlConfig::default(), &mut work);
        assert_eq!(gain, 0);
        assert_eq!(local.cut(&side), before);
    }

    #[test]
    fn balance_is_preserved_by_pairwise_swaps() {
        let local = two_cliques();
        let mut side: Vec<bool> = (0..10).map(|v| v % 2 == 0).collect();
        let count_true = side.iter().filter(|&&s| s).count();
        let mut work = 0;
        kl_refine(&local, &mut side, &KlConfig::default(), &mut work);
        assert_eq!(side.iter().filter(|&&s| s).count(), count_true);
    }

    #[test]
    fn handles_degenerate_inputs() {
        let empty = LocalGraph {
            nodes: vec![],
            adj: vec![],
            node_w: vec![],
        };
        let mut side: Vec<bool> = vec![];
        let mut work = 0;
        assert_eq!(
            kl_refine(&empty, &mut side, &KlConfig::default(), &mut work),
            0
        );

        let mut g = LevelGraph::with_nodes(1);
        g.add_edge(0, 0, 5); // ignored self-loop
        let local = extract_all(&g);
        let mut side = vec![false];
        assert_eq!(
            kl_refine(&local, &mut side, &KlConfig::default(), &mut work),
            0
        );
    }

    #[test]
    fn bad_move_cutoff_terminates_and_stays_consistent() {
        // A cross-matching start is heavily improvable (pairing both
        // endpoints of two cut edges removes both); a tiny bad-move budget
        // must still terminate with gain == cut delta.
        let mut g = LevelGraph::with_nodes(40);
        for i in 0..20u32 {
            g.add_edge(i, i + 20, 1); // perfect matching across sides
        }
        let local = extract_all(&g);
        let mut side: Vec<bool> = (0..40).map(|v| v >= 20).collect();
        let before = local.cut(&side);
        let mut work = 0;
        let config = KlConfig {
            max_bad_moves: 3,
            ..Default::default()
        };
        let gain = kl_refine(&local, &mut side, &config, &mut work);
        let after = local.cut(&side);
        assert_eq!(before - gain, after);
        assert!(after < before, "cross-matching should be improvable");
        // Side cardinality preserved by pairwise swaps.
        assert_eq!(side.iter().filter(|&&s| s).count(), 20);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use fc_graph::LevelGraph;
    use proptest::prelude::*;

    fn arb_case() -> impl Strategy<Value = (LocalGraph, Vec<bool>)> {
        (
            4usize..24,
            proptest::collection::vec((0usize..24, 0usize..24, 1u64..50), 1..80),
        )
            .prop_flat_map(|(n, raw)| {
                let mut g = LevelGraph::with_nodes(n);
                for (u, v, w) in raw {
                    let (u, v) = (u % n, v % n);
                    if u != v {
                        g.add_edge(u as u32, v as u32, w);
                    }
                }
                let nodes: Vec<u32> = (0..n as u32).collect();
                let local = LocalGraph::extract(&g, &nodes);
                (Just(local), proptest::collection::vec(any::<bool>(), n))
            })
    }

    proptest! {
        /// KL must never increase the cut, and the reported gain must match
        /// the observed cut delta exactly.
        #[test]
        fn kl_gain_matches_cut_delta((local, mut side) in arb_case()) {
            let before = local.cut(&side);
            let mut work = 0;
            let gain = kl_refine(&local, &mut side, &KlConfig::default(), &mut work);
            let after = local.cut(&side);
            prop_assert!(after <= before);
            prop_assert_eq!(before - after, gain);
        }

        /// Side cardinalities are invariant under KL (pairwise swaps only).
        #[test]
        fn kl_preserves_cardinality((local, mut side) in arb_case()) {
            let ones = side.iter().filter(|&&s| s).count();
            let mut work = 0;
            kl_refine(&local, &mut side, &KlConfig::default(), &mut work);
            prop_assert_eq!(side.iter().filter(|&&s| s).count(), ones);
        }
    }
}
