//! Error type for the partitioning stage.

use std::fmt;

/// Errors produced while configuring or validating a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// `k` is not a positive power of two.
    InvalidPartCount {
        /// The rejected value.
        k: usize,
    },
    /// Assignment length does not match the graph's node count.
    LengthMismatch {
        /// Assignment length.
        got: usize,
        /// Node count of the graph.
        expected: usize,
    },
    /// A node is assigned to a partition id outside `0..k`.
    PartOutOfRange {
        /// The offending node.
        node: usize,
        /// Its assigned partition id.
        part: u32,
        /// Number of partitions.
        k: usize,
    },
    /// Some partitions received no nodes although the graph is large enough.
    EmptyParts {
        /// The empty partition ids.
        missing: Vec<usize>,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InvalidPartCount { k } => {
                write!(f, "k must be a positive power of two, got {k}")
            }
            PartitionError::LengthMismatch { got, expected } => {
                write!(f, "assignment length {got} != node count {expected}")
            }
            PartitionError::PartOutOfRange { node, part, k } => {
                write!(f, "node {node} assigned to partition {part} >= k = {k}")
            }
            PartitionError::EmptyParts { missing } => {
                write!(f, "empty partitions: {missing:?}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}
