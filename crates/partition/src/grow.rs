//! Greedy graph growing — the initial bisection (paper §IV-A).
//!
//! Two partitions are grown alternately from random seeds. Unassigned nodes
//! on the growing partition's horizon sit in a gain priority queue (gain =
//! weight into the partition minus weight to everything else). Growth of a
//! side stops when its accumulated edge weight exceeds 1.03× the other
//! side's (the paper's 3 % edge-weight balance bound); the whole process
//! stops once either side holds half the node weight, and leftovers go to
//! the lighter side.

use crate::local::LocalGraph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The paper's 3 % balance bound on partition edge weight during growth.
pub const EDGE_WEIGHT_BALANCE: f64 = 1.03;

/// Grows an initial bisection of `local`. Returns `side[v]` (false = P1,
/// true = P2) and adds the work performed (edge relaxations + queue pops) to
/// `work`.
///
/// Deterministic in `seed`. Handles disconnected subgraphs by reseeding when
/// a horizon empties.
pub fn greedy_grow(local: &LocalGraph, seed: u64, work: &mut u64) -> Vec<bool> {
    let n = local.len();
    let mut side = vec![false; n];
    if n == 0 {
        return side;
    }
    if n == 1 {
        return side;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let total_nw: u64 = local.total_node_weight();

    // Assignment state: 0 = unassigned, 1 = P1, 2 = P2.
    let mut assigned = vec![0u8; n];
    let mut unassigned = n;
    // Accumulated edge weight into each side per unassigned node.
    let mut into = vec![[0u64; 2]; n];
    // Lazy max-heaps of (gain, node) per side.
    let mut heaps: [BinaryHeap<(i64, Reverse<u32>)>; 2] = [BinaryHeap::new(), BinaryHeap::new()];
    let (mut nw, mut ew) = ([0u64; 2], [0u64; 2]);

    let gain = |into_s: u64, wdeg: u64| -> i64 { 2 * into_s as i64 - wdeg as i64 };

    // Assigns `v` to side `s` (0 or 1) and relaxes its neighbors.
    macro_rules! assign {
        ($v:expr, $s:expr) => {{
            let v = $v;
            let s = $s;
            assigned[v as usize] = s as u8 + 1;
            unassigned -= 1;
            nw[s] += local.node_w[v as usize];
            ew[s] += local.weighted_degree(v);
            for &(u, w) in &local.adj[v as usize] {
                *work += 1;
                if assigned[u as usize] == 0 {
                    into[u as usize][s] += w;
                    let g = gain(into[u as usize][s], local.weighted_degree(u));
                    heaps[s].push((g, Reverse(u)));
                }
            }
        }};
    }

    // Which side is currently growing.
    let mut growing = 0usize;
    while unassigned > 0 && nw[0] < total_nw.div_ceil(2) && nw[1] < total_nw.div_ceil(2) {
        // Respect the edge-weight balance bound by switching sides.
        if (ew[growing] as f64) > EDGE_WEIGHT_BALANCE * ew[1 - growing] as f64 {
            growing = 1 - growing;
        }
        // Pop the best valid horizon node for the growing side.
        let mut chosen: Option<u32> = None;
        while let Some((g, Reverse(v))) = heaps[growing].pop() {
            *work += 1;
            if assigned[v as usize] != 0 {
                continue; // stale: already assigned
            }
            let current = gain(into[v as usize][growing], local.weighted_degree(v));
            if g != current {
                continue; // stale: gain changed since push
            }
            chosen = Some(v);
            break;
        }
        let v = match chosen {
            Some(v) => v,
            None => {
                // Empty horizon (new side or disconnected piece): random seed.
                let mut pick = rng.gen_range(0..unassigned);
                let mut found = 0u32;
                for (u, &a) in assigned.iter().enumerate() {
                    if a == 0 {
                        if pick == 0 {
                            found = u as u32;
                            break;
                        }
                        pick -= 1;
                    }
                }
                found
            }
        };
        assign!(v, growing);
    }

    // Leftovers go to the lighter side.
    for (v, a) in assigned.iter_mut().enumerate() {
        if *a == 0 {
            let s = usize::from(nw[1] < nw[0]);
            *a = s as u8 + 1;
            nw[s] += local.node_w[v];
        }
    }
    for (s, &a) in side.iter_mut().zip(&assigned) {
        *s = a == 2;
    }
    side
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_graph::LevelGraph;

    fn local_path(n: usize) -> LocalGraph {
        let mut g = LevelGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(i as u32, (i + 1) as u32, 10);
        }
        let nodes: Vec<u32> = (0..n as u32).collect();
        LocalGraph::extract(&g, &nodes)
    }

    fn side_weights(local: &LocalGraph, side: &[bool]) -> (u64, u64) {
        let mut w = (0u64, 0u64);
        for (v, &s) in side.iter().enumerate() {
            if s {
                w.1 += local.node_w[v];
            } else {
                w.0 += local.node_w[v];
            }
        }
        w
    }

    #[test]
    fn bisection_is_node_balanced() {
        let local = local_path(100);
        let mut work = 0;
        let side = greedy_grow(&local, 7, &mut work);
        let (w0, w1) = side_weights(&local, &side);
        assert_eq!(w0 + w1, 100);
        assert!(w0.abs_diff(w1) <= 2, "imbalanced: {w0} vs {w1}");
        assert!(work > 0);
    }

    #[test]
    fn path_graph_gets_a_small_cut() {
        // A good grower should cut a path in O(1) places, not scatter it.
        let local = local_path(200);
        let mut work = 0;
        let side = greedy_grow(&local, 3, &mut work);
        let cut = local.cut(&side);
        // Perfect = 10 (one edge); anything below 10 edges' worth is sane.
        assert!(cut <= 60, "cut too high for a path: {cut}");
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut g = LevelGraph::with_nodes(40);
        for c in 0..4 {
            for i in 0..9 {
                g.add_edge((c * 10 + i) as u32, (c * 10 + i + 1) as u32, 5);
            }
        }
        let nodes: Vec<u32> = (0..40).collect();
        let local = LocalGraph::extract(&g, &nodes);
        let mut work = 0;
        let side = greedy_grow(&local, 11, &mut work);
        let (w0, w1) = side_weights(&local, &side);
        assert!(w0.abs_diff(w1) <= 2, "imbalanced: {w0} vs {w1}");
    }

    #[test]
    fn tiny_inputs() {
        let mut work = 0;
        let empty = LocalGraph {
            nodes: vec![],
            adj: vec![],
            node_w: vec![],
        };
        assert!(greedy_grow(&empty, 1, &mut work).is_empty());
        let single = local_path(2);
        let side = greedy_grow(&single, 1, &mut work);
        assert_eq!(side.len(), 2);
        // Two nodes must be split one per side.
        assert_ne!(side[0], side[1]);
    }

    #[test]
    fn deterministic_in_seed() {
        let local = local_path(64);
        let mut w1 = 0;
        let mut w2 = 0;
        assert_eq!(
            greedy_grow(&local, 9, &mut w1),
            greedy_grow(&local, 9, &mut w2)
        );
    }

    #[test]
    fn respects_node_weights() {
        // One heavy node (weight 50) + 50 light nodes in a path.
        let mut g = LevelGraph::with_node_weights(
            std::iter::once(50u64)
                .chain(std::iter::repeat_n(1, 50))
                .collect(),
        );
        for i in 0..50 {
            g.add_edge(i as u32, (i + 1) as u32, 3);
        }
        let nodes: Vec<u32> = (0..51).collect();
        let local = LocalGraph::extract(&g, &nodes);
        let mut work = 0;
        let side = greedy_grow(&local, 5, &mut work);
        let (w0, w1) = side_weights(&local, &side);
        // Total 100; the heavy node forces its side to ~50.
        assert!(w0.abs_diff(w1) <= 51, "degenerate split: {w0} vs {w1}");
        assert_eq!(w0 + w1, 100);
    }
}
