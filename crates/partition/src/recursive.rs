//! Multilevel recursive bisection (paper §IV-C) and the full partitioning
//! pipeline.
//!
//! The coarsest graph is bisected with greedy growing + KL; the bisection is
//! projected level by level towards the finest graph, KL-refining after each
//! projection. Each produced partition is recursively bisected the same way
//! until `k = 2^i` partitions exist, then every level receives a global
//! k-way KL refinement.
//!
//! The recursion has natural task parallelism: step `i` bisects `2^i`
//! partitions independently, and the final k-way refinement treats each
//! level independently. Every task's abstract work is recorded in
//! [`TaskRecord`]s so the simulated cluster (fc-dist) can schedule them onto
//! `p` processors and reproduce the paper's Fig. 4 speedup curve.

use crate::error::PartitionError;
use crate::grow::greedy_grow;
use crate::kl::{kl_refine, KlConfig};
use crate::kway::{kway_refine_obs, KwayConfig};
use crate::local::LocalGraph;
use crate::metrics::validate_partition;
use fc_exec::Pool;
use fc_graph::{GraphSet, NodeId};
use fc_obs::Recorder;

/// Partitioning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Number of partitions; must be a power of two (recursive bisection,
    /// paper §IV).
    pub k: usize,
    /// Seed for greedy growing's random choices.
    pub seed: u64,
    /// KL bisection-refinement knobs.
    pub kl: KlConfig,
    /// Global k-way refinement knobs.
    pub kway: KwayConfig,
    /// Whether to run the final per-level k-way refinement.
    pub run_kway: bool,
    /// Worker threads for the task-parallel phases (`0` = available
    /// parallelism, `1` = exact serial path). Every bisection task derives
    /// its seed from `(seed, step, p)`, so the result is identical at any
    /// thread count.
    pub threads: usize,
}

impl PartitionConfig {
    /// Standard configuration for `k` partitions (serial execution).
    pub fn new(k: usize, seed: u64) -> PartitionConfig {
        PartitionConfig {
            k,
            seed,
            kl: KlConfig::default(),
            kway: KwayConfig::default(),
            run_kway: true,
            threads: 1,
        }
    }

    /// Sets the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> PartitionConfig {
        self.threads = threads;
        self
    }

    /// Validates that `k` is a positive power of two.
    pub fn validate(&self) -> Result<(), PartitionError> {
        if self.k == 0 || !self.k.is_power_of_two() {
            return Err(PartitionError::InvalidPartCount { k: self.k });
        }
        Ok(())
    }
}

/// What a recorded task did (for the simulated-cluster scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Bisection of one partition through all levels, at recursion `step`.
    Bisect {
        /// Recursion step (0-based); step `i` has `2^i` such tasks.
        step: usize,
        /// The partition id that was split.
        part: u32,
    },
    /// Global k-way refinement of one level.
    KwayLevel {
        /// The refined level.
        level: usize,
    },
}

/// One schedulable unit of partitioning work with its measured cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskRecord {
    /// What the task was.
    pub kind: TaskKind,
    /// Abstract work units consumed (edge relaxations, gain evaluations …).
    pub work: u64,
}

/// The outcome of partitioning a graph set.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Number of partitions.
    pub k: usize,
    /// Partition assignment per level (same indexing as `set.levels`).
    pub parts_per_level: Vec<Vec<u32>>,
    /// Task log for scheduling simulations.
    pub tasks: Vec<TaskRecord>,
}

impl PartitionResult {
    /// Assignment on the finest level.
    pub fn finest(&self) -> &[u32] {
        &self.parts_per_level[0]
    }

    /// Total work across all tasks.
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(|t| t.work).sum()
    }
}

/// Partitions `set` into `config.k` parts by multilevel recursive bisection
/// with per-level KL refinement and optional global k-way refinement.
pub fn partition_graph_set(
    set: &GraphSet,
    config: &PartitionConfig,
) -> Result<PartitionResult, PartitionError> {
    partition_graph_set_obs(set, config, &Recorder::disabled())
}

/// [`partition_graph_set`] with partitioning metrics recorded into `rec`:
/// the finest-level edge-cut trajectory after every bisection step (counter
/// samples plus `partition.edge_cut_final`), balance in permille, per-task
/// bisection work, and the k-way pass gains (via
/// [`crate::kway::kway_refine_obs`]). The assignments and task log are
/// identical to the uninstrumented call; every metric derives from
/// seed-deterministic results, so all are thread-count-invariant.
pub fn partition_graph_set_obs(
    set: &GraphSet,
    config: &PartitionConfig,
    rec: &Recorder,
) -> Result<PartitionResult, PartitionError> {
    config.validate()?;
    let _span = rec.span_args(
        "partition",
        "partition.graph_set",
        &[
            ("k", config.k as i64),
            ("nodes", set.finest().node_count() as i64),
        ],
    );
    let mut parts: Vec<Vec<u32>> = set
        .levels
        .iter()
        .map(|g| vec![0u32; g.node_count()])
        .collect();
    let mut tasks = Vec::new();

    let pool = Pool::new(config.threads);
    let steps = config.k.trailing_zeros() as usize;
    for step in 0..steps {
        // The paper's task parallelism (§IV-C): the `2^step` bisections of a
        // step are result-independent. A task for partition `p` reads other
        // partitions' assignments only through the "is it `p` or `p_new`"
        // membership test, and sibling tasks only relabel values that are
        // neither (`q → q + 2^step` with `q ≠ p`), so membership answers are
        // identical whether siblings ran before it or not. Running every
        // task from a read-only snapshot and applying the returned move
        // lists after a step barrier is therefore bit-identical to the
        // serial in-place loop — at any thread count.
        let parts_ro: &[Vec<u32>] = &parts;
        let outcomes = pool.map_obs(1usize << step, rec, |pi| {
            let p = pi as u32;
            bisect_partition(
                set,
                parts_ro,
                p,
                p + (1 << step),
                config,
                config.seed.wrapping_add(((step as u64) << 32) | p as u64),
            )
        });
        for (pi, outcome) in outcomes.into_iter().enumerate() {
            let p_new = pi as u32 + (1 << step);
            for (level, moved) in outcome.moved.iter().enumerate() {
                for &v in moved {
                    parts[level][v as usize] = p_new;
                }
            }
            rec.observe("partition.bisect_work", outcome.work);
            tasks.push(TaskRecord {
                kind: TaskKind::Bisect {
                    step,
                    part: pi as u32,
                },
                work: outcome.work,
            });
        }
        if rec.is_enabled() {
            // Edge-cut / balance trajectory on the finest level after each
            // step barrier — the counter track Perfetto renders as the
            // §IV-C convergence curve.
            let cut = crate::metrics::edge_cut(set.finest(), &parts[0]);
            let balance =
                crate::metrics::partition_balance(set.finest(), &parts[0], 2 << step);
            rec.counter_sample("partition", "partition.edge_cut", cut as i64);
            rec.counter_sample(
                "partition",
                "partition.balance_permille",
                (balance * 1000.0) as i64,
            );
        }
    }

    // Recursive bisection cannot split a partition that holds a single
    // (possibly heavy) node, which strands the sibling id empty. Repair by
    // donating half of the node-richest partition's nodes to each empty id
    // — the granularity fix a master process applies before handing
    // partitions to workers.
    for (level_graph, assignment) in set.levels.iter().zip(parts.iter_mut()) {
        repair_empty_partitions(level_graph, assignment, config.k);
    }

    if config.run_kway && config.k > 1 {
        // Level-parallel global refinement (§IV-D): each level's k-way pass
        // reads and writes only that level's assignment, so the levels run
        // concurrently and are reassembled in level order.
        let level_parts = std::mem::take(&mut parts);
        let refined = pool.map_items_obs(
            level_parts,
            rec,
            || (),
            |level, mut assignment, ()| {
                let mut work = 0u64;
                kway_refine_obs(
                    &set.levels[level],
                    &mut assignment,
                    config.k,
                    &config.kway,
                    &mut work,
                    rec,
                );
                (assignment, work)
            },
        );
        for (level, (assignment, work)) in refined.into_iter().enumerate() {
            parts.push(assignment);
            tasks.push(TaskRecord {
                kind: TaskKind::KwayLevel { level },
                work,
            });
        }
    }

    // The finest level must be a complete k-partition. Coarser levels may
    // legitimately miss partitions whose creating bisection happened below
    // them (a coarse partition with a single node cannot be split there), so
    // they are only range-checked.
    validate_partition(&set.levels[0], &parts[0], config.k)?;
    for assignment in parts.iter().skip(1) {
        for (node, &part) in assignment.iter().enumerate() {
            if part as usize >= config.k {
                return Err(PartitionError::PartOutOfRange {
                    node,
                    part,
                    k: config.k,
                });
            }
        }
    }
    if rec.is_enabled() {
        let cut = crate::metrics::edge_cut(set.finest(), &parts[0]);
        let balance = crate::metrics::partition_balance(set.finest(), &parts[0], config.k);
        rec.add("partition.edge_cut_final", cut);
        rec.gauge("partition.balance_final_permille", (balance * 1000.0) as i64);
        rec.add("partition.tasks", tasks.len() as u64);
    }
    Ok(PartitionResult {
        k: config.k,
        parts_per_level: parts,
        tasks,
    })
}

/// Fills empty partition ids (when the graph has enough nodes) by moving a
/// connected half of the node-richest partition into each empty id.
fn repair_empty_partitions(g: &fc_graph::LevelGraph, parts: &mut [u32], k: usize) {
    let n = g.node_count();
    if n < k {
        return;
    }
    loop {
        let mut counts = vec![0usize; k];
        for &p in parts.iter() {
            counts[p as usize] += 1;
        }
        let Some(empty) = counts.iter().position(|&c| c == 0) else {
            break;
        };
        let Some(donor) = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= 2)
            .max_by_key(|&(_, &c)| c)
            .map(|(p, _)| p as u32)
        else {
            break;
        };
        let donor_nodes: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| parts[v as usize] == donor)
            .collect();
        // Gather a connected half via BFS over donor-internal edges.
        let take = donor_nodes.len() / 2;
        let mut taken = Vec::with_capacity(take);
        let mut in_donor = std::collections::HashSet::new();
        in_donor.extend(donor_nodes.iter().copied());
        let mut visited = std::collections::HashSet::new();
        // BFS queue bounded by the donor part's node count: `visited`
        // admits each node once.
        let mut queue = std::collections::VecDeque::from([donor_nodes[0]]);
        visited.insert(donor_nodes[0]);
        while let Some(v) = queue.pop_front() {
            if taken.len() >= take {
                break;
            }
            taken.push(v);
            for &(u, _) in g.neighbors(v) {
                if in_donor.contains(&u) && visited.insert(u) {
                    queue.push_back(u);
                }
            }
            // Disconnected donor: continue from any unvisited donor node.
            if queue.is_empty() && taken.len() < take {
                if let Some(&next) = donor_nodes.iter().find(|&&u| !visited.contains(&u)) {
                    visited.insert(next);
                    queue.push_back(next);
                }
            }
        }
        for v in taken {
            parts[v as usize] = empty as u32;
        }
    }
}

/// What one bisection task produced: per-level lists of nodes to relabel
/// from `p` to `p_new`, plus the task's abstract work.
struct BisectOutcome {
    moved: Vec<Vec<NodeId>>,
    work: u64,
}

/// Splits partition `p` into `p` and `p_new` across all levels: bisect the
/// coarsest level's induced subgraph, then project and KL-refine downwards.
///
/// Reads `parts` as a pre-step snapshot and reports moves instead of writing
/// them, so sibling tasks of the same step can run concurrently. The task's
/// own level-above moves are overlaid during downward projection
/// (`above_nodes`/`above_side`), which reproduces exactly what the serial
/// in-place version would have read.
fn bisect_partition(
    set: &GraphSet,
    parts: &[Vec<u32>],
    p: u32,
    p_new: u32,
    config: &PartitionConfig,
    seed: u64,
) -> BisectOutcome {
    let n_levels = set.level_count();
    let mut moved: Vec<Vec<NodeId>> = vec![Vec::new(); n_levels];
    let mut work = 0u64;
    // Find the coarsest level where this partition has at least two nodes.
    let mut top = n_levels - 1;
    loop {
        let count = parts[top].iter().filter(|&&q| q == p).count();
        if count >= 2 || top == 0 {
            break;
        }
        top -= 1;
    }

    // Initial bisection at `top`. `above_nodes` (ascending) and `above_side`
    // carry this task's own view of the level above for the projection loop.
    let mut above_nodes: Vec<NodeId>;
    let mut above_side: Vec<bool>;
    {
        let nodes: Vec<NodeId> = (0..set.levels[top].node_count() as NodeId)
            .filter(|&v| parts[top][v as usize] == p)
            .collect();
        if nodes.len() < 2 {
            return BisectOutcome { moved, work }; // nothing to split
        }
        let local = LocalGraph::extract(&set.levels[top], &nodes);
        let mut side = greedy_grow(&local, seed, &mut work);
        kl_refine(&local, &mut side, &config.kl, &mut work);
        for (li, &v) in nodes.iter().enumerate() {
            if side[li] {
                moved[top].push(v);
            }
        }
        above_nodes = nodes;
        above_side = side;
    }

    // Project and refine downwards.
    for level in (0..top).rev() {
        let map = &set.fine_to_coarse[level];
        let graph = &set.levels[level];
        let nodes: Vec<NodeId> = (0..graph.node_count() as NodeId)
            .filter(|&v| parts[level][v as usize] == p)
            .collect();
        let local = LocalGraph::extract(graph, &nodes);
        let mut side = vec![false; nodes.len()];
        let mut side_weight = [0u64, 0u64];
        let mut drifters: Vec<usize> = Vec::new();
        for (li, &v) in nodes.iter().enumerate() {
            let anc = map[v as usize];
            // The ancestor's assignment seen through this task's overlay:
            // ancestors this task split read `p`/`p_new`, all others keep
            // their snapshot value (which can only be another partition —
            // drifters — regardless of sibling-task relabelings).
            let a = match above_nodes.binary_search(&anc) {
                Ok(ai) => {
                    if above_side[ai] {
                        p_new
                    } else {
                        p
                    }
                }
                Err(_) => parts[level + 1][anc as usize],
            };
            if a == p || a == p_new {
                side[li] = a == p_new;
                side_weight[usize::from(a == p_new)] += graph.node_weight(v);
            } else {
                // The ancestor drifted to another partition during an
                // earlier refinement; balance these rather than piling them
                // onto `p`.
                drifters.push(li);
            }
        }
        for li in drifters {
            let s = usize::from(side_weight[1] < side_weight[0]);
            side[li] = s == 1;
            side_weight[s] += graph.node_weight(nodes[li]);
        }
        // Guard against a degenerate or badly lopsided projection.
        let total = side_weight[0] + side_weight[1];
        if total > 0 && side_weight[0].max(side_weight[1]) * 4 > total * 3 {
            side = greedy_grow(&local, seed ^ 0x9E3779B9, &mut work);
        }
        kl_refine(&local, &mut side, &config.kl, &mut work);
        for (li, &v) in nodes.iter().enumerate() {
            if side[li] {
                moved[level].push(v);
            }
        }
        above_nodes = nodes;
        above_side = side;
    }
    BisectOutcome { moved, work }
}

impl fc_ckpt::Codec for TaskKind {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        match self {
            TaskKind::Bisect { step, part } => {
                w.put_u8(0);
                step.encode(w);
                w.put_u32(*part);
            }
            TaskKind::KwayLevel { level } => {
                w.put_u8(1);
                level.encode(w);
            }
        }
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<TaskKind, fc_ckpt::CkptError> {
        match r.u8()? {
            0 => Ok(TaskKind::Bisect {
                step: usize::decode(r)?,
                part: r.u32()?,
            }),
            1 => Ok(TaskKind::KwayLevel {
                level: usize::decode(r)?,
            }),
            tag => Err(fc_ckpt::CkptError::Decode {
                detail: format!("invalid TaskKind tag {tag}"),
            }),
        }
    }
}

impl fc_ckpt::Codec for TaskRecord {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.kind.encode(w);
        w.put_u64(self.work);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<TaskRecord, fc_ckpt::CkptError> {
        Ok(TaskRecord {
            kind: TaskKind::decode(r)?,
            work: r.u64()?,
        })
    }
}

impl fc_ckpt::Codec for PartitionResult {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.k.encode(w);
        self.parts_per_level.encode(w);
        self.tasks.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<PartitionResult, fc_ckpt::CkptError> {
        let k = usize::decode(r)?;
        let parts_per_level = Vec::<Vec<u32>>::decode(r)?;
        let tasks = Vec::<TaskRecord>::decode(r)?;
        if parts_per_level.is_empty() {
            return Err(fc_ckpt::CkptError::Decode {
                detail: "PartitionResult has no levels".to_string(),
            });
        }
        if let Some(&bad) = parts_per_level.iter().flatten().find(|&&p| p as usize >= k) {
            return Err(fc_ckpt::CkptError::Decode {
                detail: format!("PartitionResult assigns part {bad} with k = {k}"),
            });
        }
        Ok(PartitionResult {
            k,
            parts_per_level,
            tasks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, partition_balance};
    use fc_graph::{CoarsenConfig, LevelGraph, MultilevelSet};

    /// A long weighted path — the archetype of a "linear DNA" overlap graph.
    fn path_set(n: usize) -> GraphSet {
        let mut g = LevelGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(i as u32, (i + 1) as u32, 50);
        }
        MultilevelSet::build(
            g,
            &CoarsenConfig {
                min_nodes: 16,
                ..Default::default()
            },
        )
        .set
    }

    #[test]
    fn partitions_all_levels_consistently() {
        let set = path_set(512);
        let result = partition_graph_set(&set, &PartitionConfig::new(8, 42)).unwrap();
        assert_eq!(result.k, 8);
        assert_eq!(result.parts_per_level.len(), set.level_count());
        validate_partition(set.finest(), result.finest(), 8).unwrap();
        for assignment in &result.parts_per_level {
            assert!(assignment.iter().all(|&p| p < 8));
        }
    }

    #[test]
    fn path_cut_is_near_optimal() {
        let set = path_set(512);
        let result = partition_graph_set(&set, &PartitionConfig::new(8, 1)).unwrap();
        let cut = edge_cut(set.finest(), result.finest());
        // Optimal is 7 cut edges × 50 = 350; allow some slack.
        assert!(cut <= 3 * 350, "cut {cut} too far from optimal 350");
        let balance = partition_balance(set.finest(), result.finest(), 8);
        assert!(balance < 1.4, "balance {balance} too loose");
    }

    #[test]
    fn task_log_matches_recursion_shape() {
        let set = path_set(256);
        let result = partition_graph_set(&set, &PartitionConfig::new(16, 5)).unwrap();
        // 1 + 2 + 4 + 8 bisection tasks.
        let bisects: Vec<_> = result
            .tasks
            .iter()
            .filter_map(|t| match t.kind {
                TaskKind::Bisect { step, .. } => Some(step),
                _ => None,
            })
            .collect();
        assert_eq!(bisects.len(), 15);
        for step in 0..4 {
            assert_eq!(bisects.iter().filter(|&&s| s == step).count(), 1 << step);
        }
        // One k-way task per level.
        let kway_count = result
            .tasks
            .iter()
            .filter(|t| matches!(t.kind, TaskKind::KwayLevel { .. }))
            .count();
        assert_eq!(kway_count, set.level_count());
        assert!(result.total_work() > 0);
    }

    #[test]
    fn k_equal_one_yields_single_partition() {
        let set = path_set(64);
        let result = partition_graph_set(&set, &PartitionConfig::new(1, 3)).unwrap();
        assert!(result.finest().iter().all(|&p| p == 0));
        assert!(result.tasks.is_empty());
    }

    #[test]
    fn rejects_non_power_of_two() {
        let set = path_set(64);
        assert!(partition_graph_set(&set, &PartitionConfig::new(6, 3)).is_err());
        assert!(partition_graph_set(&set, &PartitionConfig::new(0, 3)).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let set = path_set(128);
        let a = partition_graph_set(&set, &PartitionConfig::new(4, 9)).unwrap();
        let b = partition_graph_set(&set, &PartitionConfig::new(4, 9)).unwrap();
        assert_eq!(a.parts_per_level, b.parts_per_level);
        let c = partition_graph_set(&set, &PartitionConfig::new(4, 10)).unwrap();
        // Different seed may legitimately give the same partition on such a
        // regular graph, but the result must still be valid.
        validate_partition(set.finest(), c.finest(), 4).unwrap();
    }

    #[test]
    fn works_without_kway_refinement() {
        let set = path_set(128);
        let mut config = PartitionConfig::new(4, 2);
        config.run_kway = false;
        let result = partition_graph_set(&set, &config).unwrap();
        assert!(result
            .tasks
            .iter()
            .all(|t| matches!(t.kind, TaskKind::Bisect { .. })));
        validate_partition(set.finest(), result.finest(), 4).unwrap();
    }

    #[test]
    fn single_level_set_is_supported() {
        // A graph too small/irregular to coarsen still partitions.
        let mut g = LevelGraph::with_nodes(32);
        for i in 0..31 {
            g.add_edge(i as u32, (i + 1) as u32, 5);
        }
        let set = GraphSet {
            levels: vec![g],
            fine_to_coarse: vec![],
        };
        let result = partition_graph_set(&set, &PartitionConfig::new(4, 7)).unwrap();
        validate_partition(set.finest(), result.finest(), 4).unwrap();
    }

    #[test]
    fn pooled_partitioning_is_bit_identical_to_serial() {
        let set = path_set(512);
        let serial = partition_graph_set(&set, &PartitionConfig::new(8, 42)).unwrap();
        for threads in [2, 4, 8] {
            let pooled =
                partition_graph_set(&set, &PartitionConfig::new(8, 42).with_threads(threads))
                    .unwrap();
            assert_eq!(
                pooled.parts_per_level, serial.parts_per_level,
                "assignments diverged at {threads} threads"
            );
            assert_eq!(
                pooled.tasks, serial.tasks,
                "task log diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn obs_partition_metrics_are_thread_invariant() {
        let set = path_set(512);
        let baseline = {
            let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
            let result =
                partition_graph_set_obs(&set, &PartitionConfig::new(8, 42), &rec).unwrap();
            let plain = partition_graph_set(&set, &PartitionConfig::new(8, 42)).unwrap();
            assert_eq!(result.parts_per_level, plain.parts_per_level);
            rec.snapshot_json()
        };
        assert!(baseline.contains("partition.edge_cut_final"));
        assert!(baseline.contains("partition.bisect_work"));
        for threads in [2, 4, 8] {
            let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
            partition_graph_set_obs(&set, &PartitionConfig::new(8, 42).with_threads(threads), &rec)
                .unwrap();
            assert_eq!(
                rec.snapshot_json(),
                baseline,
                "metric snapshot differs at {threads} threads"
            );
        }
    }

    #[test]
    fn obs_edge_cut_counter_matches_final_cut() {
        let set = path_set(256);
        let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
        let result = partition_graph_set_obs(&set, &PartitionConfig::new(8, 7), &rec).unwrap();
        let snapshot = rec.snapshot();
        assert_eq!(
            snapshot.counters.get("partition.edge_cut_final"),
            Some(&edge_cut(set.finest(), result.finest()))
        );
        // One edge-cut sample per bisection step (counter events).
        let samples = rec
            .events()
            .iter()
            .filter(|e| e.name == "partition.edge_cut")
            .count();
        assert_eq!(samples, 3, "k=8 has three bisection steps");
        assert_eq!(
            snapshot.counters.get("partition.tasks"),
            Some(&(result.tasks.len() as u64))
        );
    }

    #[test]
    fn kway_never_worsens_final_cut() {
        let set = path_set(256);
        let mut without = PartitionConfig::new(8, 13);
        without.run_kway = false;
        let base = partition_graph_set(&set, &without).unwrap();
        let with = partition_graph_set(&set, &PartitionConfig::new(8, 13)).unwrap();
        let cut_without = edge_cut(set.finest(), base.finest());
        let cut_with = edge_cut(set.finest(), with.finest());
        assert!(
            cut_with <= cut_without,
            "k-way made things worse: {cut_with} > {cut_without}"
        );
    }
}
