//! Partition quality metrics (edge cut, balance) and validity checks.

use crate::error::PartitionError;
use fc_graph::LevelGraph;

/// Total weight of edges whose endpoints lie in different partitions
/// (Table II's metric).
pub fn edge_cut(g: &LevelGraph, parts: &[u32]) -> u64 {
    assert_eq!(parts.len(), g.node_count(), "partition length mismatch");
    g.edges()
        .filter(|&(u, v, _)| parts[u as usize] != parts[v as usize])
        .map(|(_, _, w)| w)
        .sum()
}

/// Node-weight of each partition.
pub fn partition_weights(g: &LevelGraph, parts: &[u32], k: usize) -> Vec<u64> {
    let mut weights = vec![0u64; k];
    for v in 0..g.node_count() {
        weights[parts[v] as usize] += g.node_weight(v as u32);
    }
    weights
}

/// Balance factor: heaviest partition weight divided by the ideal
/// (total / k). 1.0 is perfect; the paper's algorithms aim for ≤ ~1.03 per
/// bisection.
pub fn partition_balance(g: &LevelGraph, parts: &[u32], k: usize) -> f64 {
    let weights = partition_weights(g, parts, k);
    let total: u64 = weights.iter().sum();
    if total == 0 || k == 0 {
        return 1.0;
    }
    let ideal = total as f64 / k as f64;
    weights.iter().copied().max().unwrap_or(0) as f64 / ideal
}

/// Checks that `parts` is a valid `k`-partition assignment: in range, and
/// (when the graph has at least `k` weighted nodes) every partition
/// non-empty.
pub fn validate_partition(g: &LevelGraph, parts: &[u32], k: usize) -> Result<(), PartitionError> {
    if parts.len() != g.node_count() {
        return Err(PartitionError::LengthMismatch {
            got: parts.len(),
            expected: g.node_count(),
        });
    }
    let mut seen = vec![false; k];
    for (v, &p) in parts.iter().enumerate() {
        if p as usize >= k {
            return Err(PartitionError::PartOutOfRange {
                node: v,
                part: p,
                k,
            });
        }
        seen[p as usize] = true;
    }
    if g.node_count() >= k && !seen.iter().all(|&s| s) {
        let missing: Vec<usize> = seen
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| i)
            .collect();
        return Err(PartitionError::EmptyParts { missing });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> LevelGraph {
        let mut g = LevelGraph::with_nodes(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(3, 0, 4);
        g
    }

    #[test]
    fn edge_cut_counts_crossing_weight() {
        let g = square();
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 2 + 4);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 10);
    }

    #[test]
    fn balance_of_even_split_is_one() {
        let g = square();
        assert!((partition_balance(&g, &[0, 0, 1, 1], 2) - 1.0).abs() < 1e-12);
        assert!((partition_balance(&g, &[0, 0, 0, 1], 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_problems() {
        let g = square();
        assert!(validate_partition(&g, &[0, 0, 1, 1], 2).is_ok());
        assert!(validate_partition(&g, &[0, 0, 2, 1], 2).is_err()); // out of range
        assert!(validate_partition(&g, &[0, 0, 0, 0], 2).is_err()); // empty part
        assert!(validate_partition(&g, &[0, 0, 1], 2).is_err()); // wrong length
    }

    #[test]
    fn partition_weights_sum_to_total() {
        let g = square();
        let w = partition_weights(&g, &[0, 1, 1, 0], 2);
        assert_eq!(w, vec![2, 2]);
    }
}
