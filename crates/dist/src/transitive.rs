//! Distributed transitive edge reduction (paper §V-A, after Myers' string
//! graph construction).
//!
//! Each worker owns one partition and scans its nodes: an edge `v → w` is
//! transitive when some two-hop path `v → u → w` explains it (the shifts
//! compose within a small tolerance, i.e. the same genomic placement).
//! Workers record transitive edges; the master removes them. An edge whose
//! endpoints straddle two partitions is recorded by both owners — the
//! master's removal set deduplicates, exactly as in the paper.

use fc_graph::{DiGraph, NodeId};

/// Indel slack when testing whether two shifts compose to a third.
const SHIFT_TOLERANCE: i64 = 4;

/// One worker's scan over its partition. Returns the recorded transitive
/// edges and the work performed (edge pairs examined).
pub fn worker_scan(g: &DiGraph, nodes: &[NodeId], work: &mut u64) -> Vec<(NodeId, NodeId)> {
    let mut recorded = Vec::new();
    for &v in nodes {
        if g.is_removed(v) {
            continue;
        }
        let out = g.out_edges(v);
        for e_vw in out {
            // Is there u with v->u and u->w such that
            // shift(v,u) + shift(u,w) ≈ shift(v,w)?
            let mut transitive = false;
            for e_vu in out {
                if e_vu.to == e_vw.to {
                    continue;
                }
                *work += 1;
                if let Some(e_uw) = g.edge(e_vu.to, e_vw.to) {
                    let composed = e_vu.shift as i64 + e_uw.shift as i64;
                    if (composed - e_vw.shift as i64).abs() <= SHIFT_TOLERANCE {
                        transitive = true;
                        break;
                    }
                }
            }
            if transitive {
                recorded.push((v, e_vw.to));
            }
        }
    }
    recorded
}

/// Master-side removal of the recorded edges (deduplicated). Returns the
/// number of edges actually removed and adds the removal work to `work`.
///
/// # Invariants
///
/// Only the recorded edges are removed, each at most once no matter how many
/// workers recorded it; nodes and all other edges stay untouched, so the
/// graph remains a valid overlap DAG minus exactly the returned edge count.
pub fn master_remove(
    g: &mut DiGraph,
    recorded: impl IntoIterator<Item = (NodeId, NodeId)>,
    work: &mut u64,
) -> usize {
    // Sorted dedup, not a HashSet: removal is commutative but the work
    // trace and any tie-broken downstream pass must see one fixed order.
    let mut unique: Vec<(NodeId, NodeId)> = recorded.into_iter().collect();
    unique.sort_unstable();
    unique.dedup();
    let mut removed = 0;
    for (v, w) in unique {
        *work += 1;
        if g.remove_edge(v, w) {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_graph::DiEdge;

    fn edge(to: NodeId, shift: u32, len: u32) -> DiEdge {
        DiEdge {
            to,
            len,
            identity: 1.0,
            shift,
        }
    }

    /// 0 → 1 → 2 with the transitive shortcut 0 → 2.
    fn triangle() -> DiGraph {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, edge(1, 50, 50));
        g.add_edge(1, edge(2, 50, 50));
        g.add_edge(0, edge(2, 100, 10));
        g
    }

    #[test]
    fn detects_and_removes_shortcut() {
        let mut g = triangle();
        let mut work = 0;
        let recorded = worker_scan(&g, &[0, 1, 2], &mut work);
        assert_eq!(recorded, vec![(0, 2)]);
        let removed = master_remove(&mut g, recorded, &mut work);
        assert_eq!(removed, 1);
        assert!(g.edge(0, 2).is_none());
        assert!(g.edge(0, 1).is_some());
        assert!(g.edge(1, 2).is_some());
    }

    #[test]
    fn preserves_reachability() {
        let mut g = triangle();
        let mut work = 0;
        let recorded = worker_scan(&g, &[0, 1, 2], &mut work);
        master_remove(&mut g, recorded, &mut work);
        assert!(g.is_reachable(0, 2));
    }

    #[test]
    fn non_composing_shifts_are_kept() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, edge(1, 50, 50));
        g.add_edge(1, edge(2, 50, 50));
        // Shift 60 ≠ 100: a genuinely different placement (repeat), kept.
        g.add_edge(0, edge(2, 60, 40));
        let mut work = 0;
        let recorded = worker_scan(&g, &[0, 1, 2], &mut work);
        assert!(recorded.is_empty());
    }

    #[test]
    fn cross_partition_edges_recorded_by_both_workers() {
        let g = triangle();
        let mut work = 0;
        // Partition {0} and {1, 2}: the shortcut 0->2 crosses. Only the
        // owner of node 0 can see it as an out-edge; worker({1,2}) sees
        // nothing, and dedup still yields one removal.
        let r0 = worker_scan(&g, &[0], &mut work);
        let r1 = worker_scan(&g, &[1, 2], &mut work);
        let mut g2 = g.clone();
        let removed = master_remove(&mut g2, r0.into_iter().chain(r1), &mut work);
        assert_eq!(removed, 1);
        assert!(g2.edge(0, 2).is_none());
    }

    #[test]
    fn tolerates_small_indel_drift() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, edge(1, 50, 50));
        g.add_edge(1, edge(2, 50, 50));
        g.add_edge(0, edge(2, 98, 10)); // 2 off from 100: within tolerance
        let mut work = 0;
        let recorded = worker_scan(&g, &[0, 1, 2], &mut work);
        assert_eq!(recorded, vec![(0, 2)]);
    }

    #[test]
    fn chain_of_length_three_reduces_all_shortcuts() {
        let mut g = DiGraph::with_nodes(4);
        for i in 0..3u32 {
            g.add_edge(i, edge(i + 1, 40, 60));
        }
        g.add_edge(0, edge(2, 80, 20));
        g.add_edge(1, edge(3, 80, 20));
        g.add_edge(0, edge(3, 120, 5));
        let mut work = 0;
        let recorded = worker_scan(&g, &[0, 1, 2, 3], &mut work);
        let mut g2 = g.clone();
        master_remove(&mut g2, recorded, &mut work);
        // All three shortcuts go; note 0->3 composes via 0->2->3 too.
        assert!(g2.edge(0, 2).is_none());
        assert!(g2.edge(1, 3).is_none());
        assert!(g2.edge(0, 3).is_none());
        assert_eq!(g2.edge_count(), 3);
        assert!(g2.is_reachable(0, 3));
    }
}
