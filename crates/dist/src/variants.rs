//! Distributed variant detection on the hybrid graph.
//!
//! The paper's discussion (§VI-D) names variant detection as the next
//! analysis to run on the distributed hybrid graph: "For example, variant
//! detection algorithms can be implemented to be run on the distributed
//! hybrid graph." This module implements that extension.
//!
//! A *variant site* is a bubble whose two branches both carry substantial
//! read support — unlike an error bubble (one thin branch, removed by
//! [`crate::error_removal`]), a balanced bubble is evidence of genuine sequence
//! polymorphism (a strain variant in a metagenome, a heterozygous site in a
//! diploid). Workers scan their own partitions for such bubbles and emit
//! candidate records; the master deduplicates. The graph is *not* mutated:
//! variant detection is a read-only analysis pass.

use crate::cluster::SimCluster;
use fc_graph::{DiGraph, NodeId};
use fc_seq::DnaString;
use std::collections::HashSet;

/// Limits and thresholds for variant calling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantConfig {
    /// Maximum nodes in one bubble branch.
    pub max_branch_len: usize,
    /// Minimum read support (cluster size sum) on *each* branch; below
    /// this, the bubble is an error candidate, not a variant.
    pub min_branch_support: u64,
    /// Minimum support ratio `min(a, b) / max(a, b)` for a balanced bubble.
    pub min_support_ratio: f64,
}

impl Default for VariantConfig {
    fn default() -> VariantConfig {
        VariantConfig {
            max_branch_len: 6,
            min_branch_support: 2,
            min_support_ratio: 0.2,
        }
    }
}

/// One candidate variant site.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Node where the branches diverge.
    pub opens_at: NodeId,
    /// Node where the branches reconverge.
    pub closes_at: NodeId,
    /// Interior nodes of the better-supported branch.
    pub major_branch: Vec<NodeId>,
    /// Interior nodes of the lesser-supported branch.
    pub minor_branch: Vec<NodeId>,
    /// Read support of the major branch.
    pub major_support: u64,
    /// Read support of the minor branch.
    pub minor_support: u64,
}

impl Variant {
    /// Support ratio `minor / major` in `(0, 1]`.
    pub fn support_ratio(&self) -> f64 {
        if self.major_support == 0 {
            0.0
        } else {
            self.minor_support as f64 / self.major_support as f64
        }
    }

    /// Canonical key for master-side deduplication.
    fn key(&self) -> (NodeId, NodeId, Vec<NodeId>, Vec<NodeId>) {
        (
            self.opens_at,
            self.closes_at,
            self.major_branch.clone(),
            self.minor_branch.clone(),
        )
    }
}

/// Interior paths reachable from `start` within `max_len` hops, excluding
/// walks that pass back through `origin`. Maps each reached node to the
/// interior nodes of the (BFS-shortest) path `start … node`, exclusive of
/// `node` itself but inclusive of `start`.
fn branch_paths(
    g: &DiGraph,
    origin: NodeId,
    start: NodeId,
    max_len: usize,
    work: &mut u64,
) -> std::collections::HashMap<NodeId, Vec<NodeId>> {
    let mut paths = std::collections::HashMap::new();
    paths.insert(start, Vec::new());
    let mut frontier = vec![start];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for &u in &frontier {
            let mut to_u = paths[&u].clone();
            to_u.push(u);
            for e in g.out_edges(u) {
                *work += 1;
                if e.to == origin || paths.contains_key(&e.to) {
                    continue;
                }
                paths.insert(e.to, to_u.clone());
                next.push(e.to);
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    paths
}

/// One worker's variant scan over its partition.
///
/// For every branching node `v`, each pair of out-neighbors is probed with
/// bounded BFS; if the two branches reconverge on a common node `w`, the two
/// interior paths form a bubble `v → … → w`. Real hybrid graphs produced by
/// strain mixtures are not clean unary diamonds (flank contigs cross-link
/// the branches), which is why reconvergence is detected by reachability
/// rather than unary-chain walking.
pub fn worker_scan(
    g: &DiGraph,
    nodes: &[NodeId],
    support: &[u64],
    config: &VariantConfig,
    work: &mut u64,
) -> Vec<Variant> {
    let mut variants = Vec::new();
    for &v in nodes {
        if g.is_removed(v) || g.out_degree(v) < 2 {
            continue;
        }
        let starts: Vec<NodeId> = g.out_edges(v).iter().map(|e| e.to).collect();
        let maps: Vec<_> = starts
            .iter()
            .map(|&s| branch_paths(g, v, s, config.max_branch_len, work))
            .collect();
        for i in 0..starts.len() {
            for j in i + 1..starts.len() {
                *work += 1;
                // Nearest reconvergence: common reachable node with the
                // smallest combined interior length.
                let mut best: Option<(usize, NodeId)> = None;
                for (&w, path_i) in &maps[i] {
                    if let Some(path_j) = maps[j].get(&w) {
                        // A branch start appearing on the other path means
                        // the "branches" are nested, not parallel.
                        if w == starts[i] || w == starts[j] {
                            continue;
                        }
                        let cost = path_i.len() + path_j.len();
                        if best.is_none_or(|(c, bw)| cost < c || (cost == c && w < bw)) {
                            best = Some((cost, w));
                        }
                    }
                }
                let Some((_, w)) = best else { continue };
                let int_i = &maps[i][&w];
                let int_j = &maps[j][&w];
                if int_i.iter().any(|n| int_j.contains(n)) {
                    continue; // shared interior: not two alleles
                }
                let weight = |interior: &[NodeId]| -> u64 {
                    interior.iter().map(|&n| support[n as usize]).sum()
                };
                let (wi, wj) = (weight(int_i), weight(int_j));
                let (major, minor, w_major, w_minor) = if wi >= wj {
                    (int_i.clone(), int_j.clone(), wi, wj)
                } else {
                    (int_j.clone(), int_i.clone(), wj, wi)
                };
                if w_minor < config.min_branch_support {
                    continue; // an error bubble, not a variant
                }
                if w_major > 0 && (w_minor as f64 / w_major as f64) < config.min_support_ratio {
                    continue;
                }
                variants.push(Variant {
                    opens_at: v,
                    closes_at: w,
                    major_branch: major,
                    minor_branch: minor,
                    major_support: w_major,
                    minor_support: w_minor,
                });
            }
        }
    }
    variants
}

/// Extracts the two allele sequences of a variant from per-node contigs
/// (concatenated branch interiors; empty for a pure deletion branch).
pub fn allele_sequences(variant: &Variant, contigs: &[DnaString]) -> (DnaString, DnaString) {
    let concat = |branch: &[NodeId]| {
        let mut seq = DnaString::new();
        for &n in branch {
            seq.extend_from(&contigs[n as usize]);
        }
        seq
    };
    (concat(&variant.major_branch), concat(&variant.minor_branch))
}

/// Runs the distributed variant scan over a partitioned hybrid graph:
/// every partition's worker scans concurrently (simulated), results are
/// gathered and deduplicated by the master. Returns the variants and the
/// virtual makespan.
pub fn detect_variants(
    g: &DiGraph,
    parts: &[u32],
    k: usize,
    support: &[u64],
    config: &VariantConfig,
    cluster: &mut SimCluster,
) -> Vec<Variant> {
    let mut lists = vec![Vec::new(); k];
    for v in 0..g.node_count() as NodeId {
        if !g.is_removed(v) {
            lists[parts[v as usize] as usize].push(v);
        }
    }
    let mut found = Vec::new();
    let mut works = Vec::with_capacity(k);
    for nodes in &lists {
        let mut w = 0;
        found.push(worker_scan(g, nodes, support, config, &mut w));
        works.push(w);
    }
    cluster.run_phase(&works);
    let payloads: Vec<u64> = found.iter().map(|f| 32 * f.len() as u64).collect();
    cluster.gather_to_master(&payloads);

    // Master: deduplicate (a bubble whose open/close nodes sit in different
    // partitions is reported by both owners).
    let mut seen = HashSet::new();
    let mut unique = Vec::new();
    for v in found.into_iter().flatten() {
        if seen.insert(v.key()) {
            unique.push(v);
        }
    }
    unique.sort_by_key(|v| (v.opens_at, v.closes_at));
    unique
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::CostModel;
    use fc_graph::DiEdge;

    fn edge(to: NodeId) -> DiEdge {
        DiEdge {
            to,
            len: 50,
            identity: 1.0,
            shift: 50,
        }
    }

    /// Balanced diamond: 0→{1,2}→3→4; both branches well supported.
    fn balanced_bubble() -> (DiGraph, Vec<u64>) {
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(0, edge(1));
        g.add_edge(0, edge(2));
        g.add_edge(1, edge(3));
        g.add_edge(2, edge(3));
        g.add_edge(3, edge(4));
        (g, vec![20, 9, 7, 20, 20])
    }

    #[test]
    fn balanced_bubble_is_a_variant() {
        let (g, support) = balanced_bubble();
        let mut work = 0;
        let variants = worker_scan(
            &g,
            &[0, 1, 2, 3, 4],
            &support,
            &VariantConfig::default(),
            &mut work,
        );
        assert_eq!(variants.len(), 1);
        let v = &variants[0];
        assert_eq!(v.opens_at, 0);
        assert_eq!(v.closes_at, 3);
        assert_eq!(v.major_branch, vec![1]);
        assert_eq!(v.minor_branch, vec![2]);
        assert_eq!(v.major_support, 9);
        assert_eq!(v.minor_support, 7);
        assert!((v.support_ratio() - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn error_bubble_is_not_a_variant() {
        let (g, mut support) = balanced_bubble();
        support[2] = 1; // thin branch: error, not polymorphism
        let mut work = 0;
        let variants = worker_scan(
            &g,
            &[0, 1, 2, 3, 4],
            &support,
            &VariantConfig::default(),
            &mut work,
        );
        assert!(
            variants.is_empty(),
            "error bubble reported as variant: {variants:?}"
        );
    }

    #[test]
    fn unbalanced_support_ratio_filtered() {
        let (g, mut support) = balanced_bubble();
        support[1] = 100;
        support[2] = 5; // ratio 0.05 < 0.2
        let mut work = 0;
        let variants = worker_scan(
            &g,
            &[0, 1, 2, 3, 4],
            &support,
            &VariantConfig::default(),
            &mut work,
        );
        assert!(variants.is_empty());
    }

    #[test]
    fn distributed_scan_deduplicates_cross_partition_sites() {
        let (g, support) = balanced_bubble();
        let parts = vec![0u32, 1, 0, 1, 1];
        let mut cluster = SimCluster::new(2, CostModel::default()).unwrap();
        let variants = detect_variants(
            &g,
            &parts,
            2,
            &support,
            &VariantConfig::default(),
            &mut cluster,
        );
        assert_eq!(
            variants.len(),
            1,
            "cross-partition bubble must dedup: {variants:?}"
        );
        assert!(cluster.messages() >= 2);
    }

    #[test]
    fn allele_sequences_concatenate_branch_contigs() {
        let (g, support) = balanced_bubble();
        let _ = (g, support);
        let contigs: Vec<DnaString> = ["AAAA", "CCGG", "TTTT", "GGGG", "ACGT"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let v = Variant {
            opens_at: 0,
            closes_at: 3,
            major_branch: vec![1],
            minor_branch: vec![2],
            major_support: 9,
            minor_support: 7,
        };
        let (major, minor) = allele_sequences(&v, &contigs);
        assert_eq!(major.to_string(), "CCGG");
        assert_eq!(minor.to_string(), "TTTT");
    }

    #[test]
    fn graph_is_not_mutated() {
        let (g, support) = balanced_bubble();
        let before_edges = g.edge_count();
        let mut cluster = SimCluster::new(1, CostModel::default()).unwrap();
        let parts = vec![0u32; 5];
        detect_variants(
            &g,
            &parts,
            1,
            &support,
            &VariantConfig::default(),
            &mut cluster,
        );
        assert_eq!(g.edge_count(), before_edges);
        assert_eq!(g.live_node_count(), 5);
    }
}
