//! Typed errors of the distributed stage.

use crate::fault::PhaseId;
use std::fmt;

/// Everything that can go wrong while setting up or running the distributed
/// pipeline. Replaces the earlier bare-`String` errors and the panic on a
/// zero-rank cluster so callers can match on failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A cluster or partition count of zero was requested.
    NoRanks,
    /// The partition vector does not cover the hybrid node set.
    PartitionLengthMismatch {
        /// Supplied partition-vector length.
        got: usize,
        /// Hybrid node count it must equal.
        expected: usize,
    },
    /// A partition id exceeds the declared partition count.
    PartitionIdOutOfRange {
        /// The offending id.
        id: u32,
        /// Number of partitions.
        k: usize,
    },
    /// Every rank died (or was presumed dead) before a phase could finish —
    /// there is nobody left to re-run the lost work on.
    AllRanksDead {
        /// Phase in which the cluster was lost.
        phase: PhaseId,
    },
    /// The retry policy is unusable (e.g. zero attempts).
    InvalidRetryPolicy(String),
    /// The fault-rate table is unusable (probability outside `[0, 1]` or a
    /// slowdown factor below 1).
    InvalidFaultRates(String),
    /// A partition's result never reached the master even after recovery —
    /// the invariant "the recovery loop leaves no partition pending" broke.
    LostPartition {
        /// Phase in which the partition was lost.
        phase: PhaseId,
        /// The partition whose result is missing.
        partition: usize,
    },
    /// Traversal produced paths that do not cover the live graph exactly
    /// once — the pipeline's structural post-condition was violated.
    PathCoverViolation(String),
    /// A loaded checkpoint passed its integrity checks but is inconsistent
    /// with the run being resumed (wrong rank count, missing traversal
    /// paths, ...). The caller should discard it and recompute.
    InvalidCheckpoint(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NoRanks => write!(f, "cluster needs at least one rank"),
            DistError::PartitionLengthMismatch { got, expected } => {
                write!(f, "partition length {got} != hybrid node count {expected}")
            }
            DistError::PartitionIdOutOfRange { id, k } => {
                write!(f, "partition id {id} out of range for k = {k}")
            }
            DistError::AllRanksDead { phase } => {
                write!(
                    f,
                    "all ranks lost during {}; nothing left to recover on",
                    phase.name()
                )
            }
            DistError::InvalidRetryPolicy(m) => write!(f, "invalid retry policy: {m}"),
            DistError::InvalidFaultRates(m) => write!(f, "invalid fault rates: {m}"),
            DistError::LostPartition { phase, partition } => {
                write!(
                    f,
                    "partition {partition} unrecovered after {}",
                    phase.name()
                )
            }
            DistError::PathCoverViolation(m) => {
                write!(f, "traversal post-condition violated: {m}")
            }
            DistError::InvalidCheckpoint(m) => {
                write!(f, "checkpoint inconsistent with this run: {m}")
            }
        }
    }
}

impl std::error::Error for DistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DistError::PartitionLengthMismatch {
            got: 3,
            expected: 5,
        };
        assert_eq!(e.to_string(), "partition length 3 != hybrid node count 5");
        let e = DistError::AllRanksDead {
            phase: PhaseId::ErrorRemoval,
        };
        assert!(e.to_string().contains("error_removal"));
        let e = DistError::PathCoverViolation("node 3 missing".into());
        assert!(e.to_string().contains("node 3 missing"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&DistError::NoRanks);
    }
}
