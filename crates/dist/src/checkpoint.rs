//! Phase-level checkpoint hooks for the distributed pipeline.
//!
//! The driver offers to persist a [`DistPhaseState`] after every completed
//! §V phase through the [`DistCheckpoint`] trait. The trait is deliberately
//! storage-agnostic: the pipeline only decides *what* a durable phase
//! boundary contains, the caller (the `focus-core` pipeline, backed by a
//! `fc_ckpt::CheckpointStore`) decides where and how it is written. A
//! [`NoCheckpoint`] implementation keeps checkpoint-free runs zero-cost.
//!
//! The state snapshot contains everything the driver mutates: the working
//! graph, the cluster's progress ([`ClusterState`]), per-phase timings and
//! removal counters, and — once traversal ran — the final paths. The fault
//! plan, cost model and retry policy are *not* stored; they are pure
//! functions of the run configuration and are rebuilt on resume, so skipped
//! phases never re-consume fault events.

use crate::cluster::{ClusterState, PhaseTiming};
use crate::fault::{FaultReport, PhaseId};
use crate::traverse::AssemblyPath;
use fc_graph::DiGraph;

/// Everything the distributed driver has computed up to (and including) one
/// completed phase. Saving this after phase `i` and restoring it before
/// phase `i + 1` continues the run bit-identically.
#[derive(Debug, Clone, Default)]
pub struct DistPhaseState {
    /// The working graph after the phase's master-side mutations.
    pub graph: DiGraph,
    /// The simulated cluster's progress (clocks, liveness, counters).
    pub cluster: ClusterState,
    /// Timings of the completed phases, in [`PhaseId::ALL`] order.
    pub timings: Vec<PhaseTiming>,
    /// Transitive edges removed so far.
    pub transitive_removed: usize,
    /// Contained contig nodes removed so far.
    pub contained_removed: usize,
    /// False-positive edges removed so far.
    pub false_edges_removed: usize,
    /// Dead-end/bubble nodes removed so far.
    pub error_nodes_removed: usize,
    /// Virtual time at the end of the trimming phases (set once
    /// [`PhaseId::ErrorRemoval`] completed).
    pub trimming_time: f64,
    /// Virtual time of traversal + joining (set once [`PhaseId::Traversal`]
    /// completed).
    pub traversal_time: f64,
    /// Final maximal paths (set once [`PhaseId::Traversal`] completed).
    pub paths: Option<Vec<AssemblyPath>>,
}

impl fc_ckpt::Codec for DistPhaseState {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.graph.encode(w);
        self.cluster.encode(w);
        self.timings.encode(w);
        self.transitive_removed.encode(w);
        self.contained_removed.encode(w);
        self.false_edges_removed.encode(w);
        self.error_nodes_removed.encode(w);
        w.put_f64(self.trimming_time);
        w.put_f64(self.traversal_time);
        self.paths.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<DistPhaseState, fc_ckpt::CkptError> {
        let graph = DiGraph::decode(r)?;
        let cluster = ClusterState::decode(r)?;
        let timings = Vec::<PhaseTiming>::decode(r)?;
        if timings.len() > PhaseId::ALL.len() {
            return Err(fc_ckpt::CkptError::Decode {
                detail: format!(
                    "{} phase timings recorded for a {}-phase pipeline",
                    timings.len(),
                    PhaseId::ALL.len()
                ),
            });
        }
        Ok(DistPhaseState {
            graph,
            cluster,
            timings,
            transitive_removed: usize::decode(r)?,
            contained_removed: usize::decode(r)?,
            false_edges_removed: usize::decode(r)?,
            error_nodes_removed: usize::decode(r)?,
            trimming_time: r.f64()?,
            traversal_time: r.f64()?,
            paths: Option::<Vec<AssemblyPath>>::decode(r)?,
        })
    }
}

/// Storage hook the distributed driver calls at phase boundaries.
pub trait DistCheckpoint {
    /// The newest durable phase state, if any: the last completed phase and
    /// the state saved after it. Called once, before the first phase runs.
    fn load(&mut self) -> Option<(PhaseId, DistPhaseState)>;

    /// Persists `state` after `phase` completed. Returning `false` requests
    /// an orderly stop right after the save — the chaos harness uses this to
    /// simulate a crash at an exact phase boundary. Storage failures must be
    /// handled internally (degrade and keep returning `true`); the pipeline
    /// never fails because a checkpoint could not be written.
    fn save(&mut self, phase: PhaseId, state: &DistPhaseState) -> bool;
}

/// The checkpoint-free mode: nothing to resume, every save succeeds without
/// touching storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCheckpoint;

impl DistCheckpoint for NoCheckpoint {
    fn load(&mut self) -> Option<(PhaseId, DistPhaseState)> {
        None
    }

    fn save(&mut self, _phase: PhaseId, _state: &DistPhaseState) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_ckpt::{decode_from_slice, encode_to_vec};

    #[test]
    fn phase_state_round_trips() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(
            0,
            fc_graph::DiEdge {
                to: 1,
                len: 40,
                identity: 0.98,
                shift: 12,
            },
        );
        let state = DistPhaseState {
            graph: g,
            cluster: ClusterState {
                clocks: vec![10.0, 20.0],
                alive: vec![true, false],
                messages: 7,
                bytes: 900,
                fault: FaultReport {
                    crashes: 1,
                    degraded: true,
                    ..Default::default()
                },
            },
            timings: vec![PhaseTiming {
                makespan: 5.0,
                total_work_time: 9.0,
                tasks: 2,
            }],
            transitive_removed: 3,
            contained_removed: 1,
            false_edges_removed: 2,
            error_nodes_removed: 4,
            trimming_time: 123.0,
            traversal_time: 0.0,
            paths: Some(vec![AssemblyPath { nodes: vec![0, 1] }]),
        };
        let bytes = encode_to_vec(&state);
        let back: DistPhaseState = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.cluster, state.cluster);
        assert_eq!(back.timings, state.timings);
        assert_eq!(back.transitive_removed, 3);
        assert_eq!(back.paths, state.paths);
        assert_eq!(back.graph.node_count(), 3);
        assert_eq!(back.graph.out_degree(0), 1);
    }

    #[test]
    fn too_many_timings_rejected() {
        let mut state = DistPhaseState::default();
        state.timings = vec![
            PhaseTiming {
                makespan: 0.0,
                total_work_time: 0.0,
                tasks: 0
            };
            5
        ];
        let bytes = encode_to_vec(&state);
        assert!(decode_from_slice::<DistPhaseState>(&bytes).is_err());
    }

    #[test]
    fn no_checkpoint_is_inert() {
        let mut n = NoCheckpoint;
        assert!(n.load().is_none());
        assert!(n.save(PhaseId::Traversal, &DistPhaseState::default()));
    }
}
