//! Phase-level recovery for the distributed pipeline.
//!
//! The master/worker design records worker results and lets the master apply
//! them, and every worker scan is a **pure function** over
//! `(&graph, partition nodes)`. That property makes recovery cheap: when a
//! rank dies mid-phase (or its result transmissions are exhausted), the
//! master simply reassigns the dead rank's partition to a surviving rank and
//! *re-invokes* the scan — no checkpointing, no state transfer. Re-running
//! the identical scan over the identical inputs reproduces the lost records
//! exactly, which is why a run with any single-rank crash yields the same
//! final path cover as the fault-free run.
//!
//! [`execute_phase`] is the generic engine used by the driver for all four
//! pipeline phases: it assigns partitions to live ranks, runs the scans
//! under the cluster's [`FaultPlan`](crate::fault::FaultPlan), gathers
//! results with retry/backoff, detects losses via the cost-model-derived
//! phase timeout, and re-executes lost scans on survivors until every
//! partition's result reached the master (or nobody is left).

use crate::cluster::{PhaseTiming, SendOutcome, SimCluster};
use crate::error::DistError;
use crate::fault::PhaseId;
use fc_exec::Pool;
use fc_obs::{Flow, Recorder};

/// Total transmission attempts behind a [`SendOutcome`], delivered or not.
fn attempts_of(outcome: &SendOutcome) -> i64 {
    match outcome {
        SendOutcome::Delivered { attempts } | SendOutcome::Lost { attempts } => *attempts as i64,
    }
}

/// Outcome of one recovered phase: every partition's result (in partition
/// order, so master-side application is order-identical to a fault-free
/// run) plus the compute timing.
#[derive(Debug, Clone)]
pub struct PhaseExecution<T> {
    /// Per-partition worker results, index = partition id.
    pub results: Vec<T>,
    /// Timing of the phase's compute portion.
    pub timing: PhaseTiming,
}

/// Runs one parallel phase with fault handling and recovery.
///
/// `scan(p, &mut work)` runs partition `p`'s worker scan and must be pure
/// over the current graph state; `payload_of` sizes the result message.
/// Partitions owned by already-dead ranks are adopted round-robin by the
/// survivors. Returns [`DistError::AllRanksDead`] when every rank is lost
/// before all results reach the master.
///
/// The initial fan-out runs the scans on `pool` — the same purity that
/// makes recovery free of checkpoints makes the scans trivially
/// parallelizable, and results are stored per partition id so the master
/// applies them in partition order regardless of completion order. Fault
/// charging and recovery re-invocations stay on the master's serial
/// schedule, so a [`FaultPlan`](crate::fault::FaultPlan) replays
/// bit-identically at any thread count.
pub fn execute_phase<T: Send>(
    cluster: &mut SimCluster,
    pool: &Pool,
    phase: PhaseId,
    partitions: usize,
    scan: impl Fn(usize, &mut u64) -> T + Sync,
    payload_of: impl Fn(&T) -> u64,
) -> Result<PhaseExecution<T>, DistError> {
    execute_phase_obs(
        cluster,
        pool,
        phase,
        partitions,
        scan,
        payload_of,
        &Recorder::disabled(),
    )
}

/// [`execute_phase`] with recovery metrics recorded into `rec`: one
/// `dist.recovery_rescans` increment per re-executed scan, the adopted
/// partition count (`dist.adopted_partitions`), and the pool's execution
/// metrics for the initial fan-out. The phase itself is identical.
#[allow(clippy::too_many_arguments)]
pub fn execute_phase_obs<T: Send>(
    cluster: &mut SimCluster,
    pool: &Pool,
    phase: PhaseId,
    partitions: usize,
    scan: impl Fn(usize, &mut u64) -> T + Sync,
    payload_of: impl Fn(&T) -> u64,
    rec: &Recorder,
) -> Result<PhaseExecution<T>, DistError> {
    // Assign every partition an executor: its own rank when alive, else a
    // survivor chosen round-robin (deterministic in rank order).
    let adopters = cluster.alive_ranks();
    if adopters.is_empty() {
        return Err(DistError::AllRanksDead { phase });
    }
    let executor: Vec<usize> = (0..partitions)
        .map(|p| {
            if p < cluster.ranks() && cluster.is_alive(p) {
                p
            } else {
                adopters[p % adopters.len()]
            }
        })
        .collect();
    if rec.is_enabled() {
        let adopted = executor
            .iter()
            .enumerate()
            .filter(|&(p, &e)| p != e)
            .count();
        rec.add("dist.adopted_partitions", adopted as u64);
    }

    // Worker scans (the real algorithm), with per-partition work counters.
    let mut results: Vec<Option<T>> = Vec::with_capacity(partitions);
    let mut works = Vec::with_capacity(partitions);
    for (result, w) in pool.map_obs(partitions, rec, |p| {
        let mut w = 0;
        (scan(p, &mut w), w)
    }) {
        results.push(Some(result));
        works.push(w);
    }

    // Charge the compute under the fault plan.
    cluster.barrier();
    let phase_start = cluster.now();
    let tasks: Vec<(usize, u64)> = executor
        .iter()
        .copied()
        .zip(works.iter().copied())
        .collect();
    let outcome = cluster.run_phase_faulty(phase, &tasks);
    for &i in &outcome.lost {
        results[i] = None; // died with the rank's memory
    }
    // Causal markers for the fault events the phase absorbed: crashes and
    // speculative backups are instants inside the phase span, so Perfetto
    // shows *where* in the phase each one landed.
    for &r in &outcome.crashed {
        rec.instant("dist", "dist.rank_crash", &[("rank", r as i64)]);
    }
    for &r in &outcome.speculated {
        rec.instant("dist", "dist.speculative_backup", &[("rank", r as i64)]);
    }

    // Gather surviving results to the master, with retransmission. A sender
    // whose retries are exhausted is presumed dead; everything it still
    // held is scheduled for recovery. Each partition's journey to the
    // master is one causal flow: started at the send, stepped on a
    // reroute, ended on delivery — Perfetto draws the arrow, and the
    // profiler attributes retransmission windows to retry time.
    let mut gather_flows: Vec<Flow> = vec![Flow::NONE; partitions];
    for p in 0..partitions {
        let Some(result) = results[p].as_ref() else {
            continue;
        };
        let payload = payload_of(result);
        let sender = executor[p];
        if !cluster.is_alive(sender) {
            results[p] = None;
            continue;
        }
        let flow = rec.flow_start(
            "dist",
            "dist.gather",
            &[("partition", p as i64), ("rank", sender as i64)],
        );
        let send = cluster.transmit_to_master(phase, sender, payload);
        if send.delivered() {
            rec.flow_end(
                flow,
                &[
                    ("partition", p as i64),
                    ("rank", sender as i64),
                    ("attempts", attempts_of(&send)),
                ],
            );
        } else {
            rec.flow_step(
                flow,
                &[
                    ("partition", p as i64),
                    ("rank", sender as i64),
                    ("attempts", attempts_of(&send)),
                ],
            );
            gather_flows[p] = flow;
            cluster.kill(sender);
            results[p] = None;
        }
    }

    // Recovery: the master notices missing results at the phase timeout
    // (derived from the cost model and the largest nominal task), reassigns
    // each lost partition to the least-loaded survivor and re-invokes the
    // pure scan there. Re-sends may themselves fail, killing the survivor
    // and keeping the partition pending, until results land or nobody is
    // left.
    let max_task_time = works
        .iter()
        .map(|&w| w as f64 * cluster.cost().per_work_unit)
        .fold(0.0, f64::max);
    let deadline = phase_start
        + cluster
            .retry_policy()
            .phase_timeout(max_task_time, cluster.cost());
    let mut pending: Vec<usize> = (0..partitions).filter(|&p| results[p].is_none()).collect();
    while let Some(p) = pending.first().copied() {
        pending.remove(0);
        let Some(survivor) = cluster.least_loaded_alive(None) else {
            return Err(DistError::AllRanksDead { phase });
        };
        let wait_from = cluster.clock(survivor);
        cluster.advance_to(survivor, deadline);
        rec.add("dist.recovery_rescans", 1);
        // Continue the partition's gather flow through the reassignment —
        // or, when the result died with the rank before any send, start a
        // recovery flow here so the re-scan is still causally anchored.
        if gather_flows[p].is_none() {
            gather_flows[p] = rec.flow_start(
                "dist",
                "dist.recovery_reassign",
                &[("partition", p as i64), ("rank", survivor as i64)],
            );
        } else {
            rec.flow_step(
                gather_flows[p],
                &[("partition", p as i64), ("reassigned_to", survivor as i64)],
            );
        }
        let mut w = 0;
        let recovered = scan(p, &mut w);
        cluster.charge_work(survivor, w);
        let payload = payload_of(&recovered);
        // Everything from the survivor's pre-recovery clock to after the
        // re-send is recovery overhead: the wait to the deadline, the
        // re-executed scan, and the retransmission itself. Backoff waits
        // inside the transmit are already counted there — subtract them so
        // the total recovery_time increment equals the clock delta exactly.
        let backoff_before = cluster.fault_report().recovery_time;
        let outcome = cluster.transmit_to_master(phase, survivor, payload);
        let backoff_during = cluster.fault_report().recovery_time - backoff_before;
        cluster.note_recovery_time(cluster.clock(survivor) - wait_from - backoff_during);
        if outcome.delivered() {
            rec.flow_end(
                gather_flows[p],
                &[
                    ("partition", p as i64),
                    ("rank", survivor as i64),
                    ("attempts", attempts_of(&outcome)),
                ],
            );
            results[p] = Some(recovered);
        } else {
            rec.flow_step(
                gather_flows[p],
                &[("partition", p as i64), ("attempts", attempts_of(&outcome))],
            );
            cluster.kill(survivor);
            pending.push(p);
        }
    }

    let mut gathered = Vec::with_capacity(results.len());
    for (p, r) in results.into_iter().enumerate() {
        match r {
            Some(v) => gathered.push(v),
            None => {
                return Err(DistError::LostPartition {
                    phase,
                    partition: p,
                })
            }
        }
    }
    Ok(PhaseExecution {
        results: gathered,
        timing: outcome.timing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::CostModel;
    use crate::fault::{FaultPlan, RetryPolicy};

    fn flat_cost() -> CostModel {
        CostModel {
            per_work_unit: 1.0,
            msg_latency: 0.0,
            msg_per_byte: 0.0,
        }
    }

    /// The identity scan: each partition returns its own id and charges
    /// 10 work units.
    fn id_scan(p: usize, w: &mut u64) -> usize {
        *w += 10;
        p
    }

    #[test]
    fn fault_free_phase_returns_all_results_in_order() {
        let mut c = SimCluster::new(4, flat_cost()).unwrap();
        let run = execute_phase(
            &mut c,
            &Pool::serial(),
            PhaseId::TransitiveReduction,
            4,
            id_scan,
            |_| 8,
        )
        .unwrap();
        assert_eq!(run.results, vec![0, 1, 2, 3]);
        assert_eq!(run.timing.tasks, 4);
        assert_eq!(*c.fault_report(), Default::default());
    }

    #[test]
    fn crashed_partition_is_recovered_on_a_survivor() {
        let plan = FaultPlan::single_crash(PhaseId::TransitiveReduction, 2);
        let mut c = SimCluster::with_faults(4, flat_cost(), plan, RetryPolicy::default()).unwrap();
        let run = execute_phase(
            &mut c,
            &Pool::serial(),
            PhaseId::TransitiveReduction,
            4,
            id_scan,
            |_| 8,
        )
        .unwrap();
        // The result set is complete and order-identical despite the crash.
        assert_eq!(run.results, vec![0, 1, 2, 3]);
        assert!(!c.is_alive(2));
        assert_eq!(c.fault_report().crashes, 1);
        assert!(c.fault_report().recovery_time > 0.0);
    }

    #[test]
    fn dead_rank_partitions_are_adopted_in_later_phases() {
        let plan = FaultPlan::single_crash(PhaseId::TransitiveReduction, 1);
        let mut c = SimCluster::with_faults(2, flat_cost(), plan, RetryPolicy::default()).unwrap();
        execute_phase(
            &mut c,
            &Pool::serial(),
            PhaseId::TransitiveReduction,
            2,
            id_scan,
            |_| 8,
        )
        .unwrap();
        // Next phase: partition 1 has no owner, rank 0 adopts it up front —
        // no timeout, no crash recorded, still every result delivered.
        let crashes_before = c.fault_report().crashes;
        let run = execute_phase(
            &mut c,
            &Pool::serial(),
            PhaseId::ContainmentRemoval,
            2,
            id_scan,
            |_| 8,
        )
        .unwrap();
        assert_eq!(run.results, vec![0, 1]);
        assert_eq!(c.fault_report().crashes, crashes_before);
    }

    #[test]
    fn exhausted_retransmissions_presume_sender_dead_and_recover() {
        let plan = FaultPlan::message_drops(PhaseId::ErrorRemoval, 1, 99);
        let retry = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        let mut c = SimCluster::with_faults(3, CostModel::default(), plan, retry).unwrap();
        let run = execute_phase(
            &mut c,
            &Pool::serial(),
            PhaseId::ErrorRemoval,
            3,
            id_scan,
            |_| 8,
        )
        .unwrap();
        assert_eq!(run.results, vec![0, 1, 2]);
        assert!(
            !c.is_alive(1),
            "sender with exhausted retries is presumed dead"
        );
        assert_eq!(c.fault_report().retries, 3);
        assert!(c.fault_report().degraded);
    }

    #[test]
    fn simultaneous_multi_rank_crashes_recover_on_the_survivors() {
        let plan = FaultPlan::crashes(PhaseId::TransitiveReduction, &[1, 2, 3]);
        let mut c = SimCluster::with_faults(4, flat_cost(), plan, RetryPolicy::default()).unwrap();
        let run = execute_phase(
            &mut c,
            &Pool::serial(),
            PhaseId::TransitiveReduction,
            4,
            id_scan,
            |_| 8,
        )
        .unwrap();
        // All three dead ranks' partitions are re-scanned on the lone
        // survivor; results stay complete and in partition order.
        assert_eq!(run.results, vec![0, 1, 2, 3]);
        assert_eq!(c.alive_count(), 1);
        assert_eq!(c.fault_report().crashes, 3);
        assert!(c.fault_report().recovery_time > 0.0);
    }

    #[test]
    fn every_rank_crashing_simultaneously_is_all_ranks_dead() {
        let plan = FaultPlan::crashes(PhaseId::ErrorRemoval, &[0, 1, 2, 3]);
        let mut c = SimCluster::with_faults(4, flat_cost(), plan, RetryPolicy::default()).unwrap();
        let err = execute_phase(
            &mut c,
            &Pool::serial(),
            PhaseId::ErrorRemoval,
            4,
            id_scan,
            |_| 8,
        )
        .unwrap_err();
        assert_eq!(
            err,
            DistError::AllRanksDead {
                phase: PhaseId::ErrorRemoval
            }
        );
    }

    #[test]
    fn losing_every_rank_is_a_typed_error() {
        let plan = FaultPlan::single_crash(PhaseId::Traversal, 0);
        let mut c = SimCluster::with_faults(1, flat_cost(), plan, RetryPolicy::default()).unwrap();
        let err = execute_phase(
            &mut c,
            &Pool::serial(),
            PhaseId::Traversal,
            1,
            id_scan,
            |_| 8,
        )
        .unwrap_err();
        assert_eq!(
            err,
            DistError::AllRanksDead {
                phase: PhaseId::Traversal
            }
        );
    }
}
