//! Distributed graph traversal: maximal-path extraction (paper §V-D).
//!
//! Each worker walks its own partition: starting from an unvisited node, the
//! path extends along out-edges while the edge is the *unique* out-edge of
//! the tail and the *unique* in-edge of its target and the target lies in
//! the same partition; then symmetrically backwards along in-edges. The
//! master joins sub-paths across partition boundaries when the connecting
//! edge is unambiguous on both sides.

use crate::error::DistError;
use fc_graph::{DiGraph, NodeId};
use std::collections::HashMap;

fn cover_violation(message: String) -> DistError {
    DistError::PathCoverViolation(message)
}

/// An extracted path of hybrid nodes, ordered along the target sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssemblyPath {
    /// Node sequence; consecutive nodes are joined by dovetail edges.
    pub nodes: Vec<NodeId>,
}

impl AssemblyPath {
    /// First node of the path.
    ///
    /// # Panics
    ///
    /// Panics on an empty path. Traversal never produces one — every path
    /// starts from a live seed node — so constructing an `AssemblyPath`
    /// with no nodes is a caller bug.
    pub fn left(&self) -> NodeId {
        *self.nodes.first().expect("paths are non-empty")
    }

    /// Last node of the path.
    ///
    /// # Panics
    ///
    /// Panics on an empty path; see [`AssemblyPath::left`].
    pub fn right(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Paths are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl fc_ckpt::Codec for AssemblyPath {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.nodes.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<AssemblyPath, fc_ckpt::CkptError> {
        let nodes = Vec::<NodeId>::decode(r)?;
        if nodes.is_empty() {
            return Err(fc_ckpt::CkptError::Decode {
                detail: "assembly path has no nodes".to_owned(),
            });
        }
        Ok(AssemblyPath { nodes })
    }
}

/// One worker's traversal of its partition. `parts[v]` gives every node's
/// partition; `own` is this worker's partition id. Returns the sub-paths;
/// every live node of the partition appears in exactly one.
pub fn worker_paths(g: &DiGraph, parts: &[u32], own: u32, work: &mut u64) -> Vec<AssemblyPath> {
    let mut in_path = vec![false; g.node_count()];
    let mut paths = Vec::new();
    for v in 0..g.node_count() as NodeId {
        if parts[v as usize] != own || g.is_removed(v) || in_path[v as usize] {
            continue;
        }
        let mut nodes = vec![v];
        in_path[v as usize] = true;

        // Extend forward.
        let mut tail = v;
        loop {
            *work += 1;
            if g.out_degree(tail) != 1 {
                break;
            }
            let next = g.out_edges(tail)[0].to;
            if g.in_degree(next) != 1 || parts[next as usize] != own || in_path[next as usize] {
                break;
            }
            nodes.push(next);
            in_path[next as usize] = true;
            tail = next;
        }
        // Extend backward.
        let mut head = v;
        loop {
            *work += 1;
            if g.in_degree(head) != 1 {
                break;
            }
            let prev = g.in_neighbors(head)[0];
            if g.out_degree(prev) != 1 || parts[prev as usize] != own || in_path[prev as usize] {
                break;
            }
            nodes.insert(0, prev);
            in_path[prev as usize] = true;
            head = prev;
        }
        paths.push(AssemblyPath { nodes });
    }
    paths
}

/// Master-side joining of worker sub-paths (paper §V-D): `p1 + p2` join when
/// the right endpoint of `p1` has a single out-edge, it points at the left
/// endpoint of `p2`, and that endpoint has no other in-edges. Joins chain
/// transitively.
pub fn master_join(g: &DiGraph, sub_paths: Vec<AssemblyPath>, work: &mut u64) -> Vec<AssemblyPath> {
    // Map each path's left endpoint to its index for O(1) successor lookup.
    let left_of: HashMap<NodeId, usize> = sub_paths
        .iter()
        .enumerate()
        .map(|(i, p)| (p.left(), i))
        .collect();
    let n = sub_paths.len();
    let mut successor: Vec<Option<usize>> = vec![None; n];
    let mut has_predecessor = vec![false; n];

    for (i, path) in sub_paths.iter().enumerate() {
        *work += 1;
        let tail = path.right();
        if g.out_degree(tail) != 1 {
            continue;
        }
        let next = g.out_edges(tail)[0].to;
        if g.in_degree(next) != 1 {
            continue; // ambiguous join point: keep paths separate
        }
        if let Some(&j) = left_of.get(&next) {
            if i != j && !has_predecessor[j] {
                successor[i] = Some(j);
                has_predecessor[j] = true;
            }
        }
    }

    // Emit chains starting from paths without predecessors.
    let mut consumed = vec![false; n];
    let mut joined = Vec::new();
    for start in 0..n {
        if has_predecessor[start] || consumed[start] {
            continue;
        }
        let mut nodes = Vec::new();
        let mut cur = Some(start);
        while let Some(i) = cur {
            *work += 1;
            consumed[i] = true;
            nodes.extend(sub_paths[i].nodes.iter().copied());
            cur = successor[i];
        }
        joined.push(AssemblyPath { nodes });
    }
    // Cycles of sub-paths (rare: circular sequences) are skipped above;
    // pick them up so no node is lost.
    for i in 0..n {
        if !consumed[i] {
            let mut nodes = Vec::new();
            let mut cur = i;
            loop {
                consumed[cur] = true;
                nodes.extend(sub_paths[cur].nodes.iter().copied());
                match successor[cur] {
                    Some(j) if !consumed[j] => cur = j,
                    _ => break,
                }
            }
            joined.push(AssemblyPath { nodes });
        }
    }
    joined
}

/// Validates that `paths` cover every live node exactly once and that
/// consecutive nodes are connected by edges — the structural contract of
/// traversal. Used by tests and the driver's debug assertions.
pub fn check_path_cover(g: &DiGraph, paths: &[AssemblyPath]) -> Result<(), DistError> {
    let mut seen = vec![false; g.node_count()];
    for path in paths {
        for w in path.nodes.windows(2) {
            if g.edge(w[0], w[1]).is_none() {
                return Err(cover_violation(format!(
                    "path step {}->{} has no edge",
                    w[0], w[1]
                )));
            }
        }
        for &v in &path.nodes {
            if g.is_removed(v) {
                return Err(cover_violation(format!("path contains removed node {v}")));
            }
            if seen[v as usize] {
                return Err(cover_violation(format!("node {v} appears in two paths")));
            }
            seen[v as usize] = true;
        }
    }
    for v in g.live_nodes() {
        if !seen[v as usize] {
            return Err(cover_violation(format!("live node {v} not covered")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_graph::DiEdge;

    fn edge(to: NodeId) -> DiEdge {
        DiEdge {
            to,
            len: 50,
            identity: 1.0,
            shift: 50,
        }
    }

    fn chain(n: usize) -> DiGraph {
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(i as NodeId, edge((i + 1) as NodeId));
        }
        g
    }

    #[test]
    fn single_partition_chain_is_one_path() {
        let g = chain(6);
        let parts = vec![0u32; 6];
        let mut work = 0;
        let sub = worker_paths(&g, &parts, 0, &mut work);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].nodes, vec![0, 1, 2, 3, 4, 5]);
        check_path_cover(&g, &sub).unwrap();
    }

    #[test]
    fn paths_stop_at_partition_boundary_and_master_joins() {
        let g = chain(6);
        let parts = vec![0, 0, 0, 1, 1, 1];
        let mut work = 0;
        let mut sub = worker_paths(&g, &parts, 0, &mut work);
        sub.extend(worker_paths(&g, &parts, 1, &mut work));
        assert_eq!(sub.len(), 2);
        let joined = master_join(&g, sub, &mut work);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].nodes, vec![0, 1, 2, 3, 4, 5]);
        check_path_cover(&g, &joined).unwrap();
    }

    #[test]
    fn branch_points_split_paths() {
        // 0→1→2, plus 5→2 (2 has in-degree 2), 2→3→4.
        let mut g = DiGraph::with_nodes(6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (5, 2)] {
            g.add_edge(u, edge(v));
        }
        let parts = vec![0u32; 6];
        let mut work = 0;
        let sub = worker_paths(&g, &parts, 0, &mut work);
        check_path_cover(&g, &sub).unwrap();
        // No path may run through the ambiguous junction at 2.
        for p in &sub {
            for w in p.nodes.windows(2) {
                assert!(
                    (w[1] != 2),
                    "path continues through ambiguous in-degree-2 node: {:?}",
                    p.nodes
                );
            }
        }
    }

    #[test]
    fn master_does_not_join_ambiguous_boundaries() {
        // Two sub-paths both feeding node 3: 0→1, 2, and 1→3, 2→3.
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(0, edge(1));
        g.add_edge(1, edge(3));
        g.add_edge(2, edge(3));
        g.add_edge(3, edge(4));
        let parts = vec![0, 0, 1, 2, 2];
        let mut work = 0;
        let mut sub = worker_paths(&g, &parts, 0, &mut work);
        sub.extend(worker_paths(&g, &parts, 1, &mut work));
        sub.extend(worker_paths(&g, &parts, 2, &mut work));
        let joined = master_join(&g, sub, &mut work);
        check_path_cover(&g, &joined).unwrap();
        // Node 3 has in-degree 2: nothing may join onto the path starting
        // at 3.
        for p in &joined {
            if p.nodes.contains(&3) {
                assert_eq!(p.left(), 3, "ambiguous join performed: {:?}", p.nodes);
            }
        }
    }

    #[test]
    fn cycles_are_preserved() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, edge(1));
        g.add_edge(1, edge(2));
        g.add_edge(2, edge(0));
        let parts = vec![0u32; 3];
        let mut work = 0;
        let sub = worker_paths(&g, &parts, 0, &mut work);
        let joined = master_join(&g, sub, &mut work);
        check_path_cover(&g, &joined).unwrap();
        assert_eq!(joined.iter().map(|p| p.len()).sum::<usize>(), 3);
    }

    #[test]
    fn removed_nodes_not_traversed() {
        let mut g = chain(4);
        g.remove_node(2);
        let parts = vec![0u32; 4];
        let mut work = 0;
        let sub = worker_paths(&g, &parts, 0, &mut work);
        check_path_cover(&g, &sub).unwrap();
        assert_eq!(sub.iter().map(|p| p.len()).sum::<usize>(), 3);
    }
}
