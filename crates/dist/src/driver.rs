//! The distributed pipeline over a partitioned hybrid graph (paper §V).
//!
//! Runs, in order: transitive reduction, containment/false-edge removal,
//! dead-end trimming, bubble popping (together "graph trimming", Fig. 6),
//! then maximal-path traversal with master-side joining. Each phase executes
//! every partition's worker through the fault-tolerant
//! [`recovery`](crate::recovery) engine: worker scans are charged to the
//! simulated cluster under the run's [`FaultPlan`], results are gathered
//! with retry/backoff, lost scans are re-executed on survivors, and the
//! master applies the recorded mutations.

use crate::checkpoint::{DistCheckpoint, DistPhaseState, NoCheckpoint};
use crate::cluster::{CostModel, PhaseTiming, SimCluster};
use crate::error::DistError;
use crate::error_removal::{self, ErrorRemovalConfig};
use crate::fault::{FaultPlan, FaultReport, PhaseId, RetryPolicy};
use crate::recovery::execute_phase_obs;
use crate::simplify;
use crate::transitive;
use crate::traverse::{self, AssemblyPath};
use fc_graph::{DiGraph, HybridSet, NodeId};
use fc_obs::Recorder;
use fc_seq::{DnaString, ReadStore};

/// Configuration of the distributed stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistributedConfig {
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Dead-end/bubble limits.
    pub errors: ErrorRemovalConfig,
    /// Retransmission, backoff, timeout and speculation policy used when a
    /// [`FaultPlan`] is in effect (and harmless otherwise).
    pub retry: RetryPolicy,
    /// Worker threads for the per-partition scans (`0` = available
    /// parallelism, `1` = exact serial path). Scans are pure, so results —
    /// including [`FaultPlan`] replays — are identical at any thread count.
    pub threads: usize,
}

/// Per-phase and aggregate outcome of the distributed stage.
#[derive(Debug, Clone)]
pub struct DistributedReport {
    /// Named phase timings in execution order.
    pub phases: Vec<(&'static str, PhaseTiming)>,
    /// Virtual time of the combined trimming phases (Fig. 6, "trimming").
    pub trimming_time: f64,
    /// Virtual time of traversal + joining (Fig. 6, "traversal").
    pub traversal_time: f64,
    /// Final maximal paths over live hybrid nodes.
    pub paths: Vec<AssemblyPath>,
    /// Transitive edges removed.
    pub transitive_removed: usize,
    /// Contained contig nodes removed.
    pub contained_removed: usize,
    /// False-positive edges removed.
    pub false_edges_removed: usize,
    /// Dead-end/bubble nodes removed.
    pub error_nodes_removed: usize,
    /// Messages exchanged with the master (retransmissions included).
    pub messages: u64,
    /// Message payload bytes (retransmissions included).
    pub bytes: u64,
    /// What the fault layer observed: crashes, retries, retransmitted
    /// bytes, speculative re-executions, recovery overhead, degraded flag.
    pub fault: FaultReport,
}

/// A partitioned hybrid graph ready for the distributed algorithms.
#[derive(Debug, Clone)]
pub struct DistributedHybrid {
    /// Working copy of the directed hybrid graph (mutated by simplification).
    pub graph: DiGraph,
    /// Partition of each hybrid node.
    pub parts: Vec<u32>,
    /// Number of partitions (= worker ranks).
    pub k: usize,
    /// Contig sequence per hybrid node.
    contigs: Vec<DnaString>,
    /// Read support (cluster size) per hybrid node.
    support: Vec<u64>,
}

impl DistributedHybrid {
    /// Prepares the distributed stage from a hybrid set, its `G'0` partition
    /// assignment and the read store. Contigs are built with first-wins
    /// merging; use [`DistributedHybrid::with_consensus`] for per-column
    /// majority consensus.
    pub fn new(
        hybrid: &HybridSet,
        store: &ReadStore,
        parts: Vec<u32>,
        k: usize,
    ) -> Result<DistributedHybrid, DistError> {
        DistributedHybrid::build(hybrid, store, parts, k, false)
    }

    /// Like [`DistributedHybrid::new`] but with error-corrected consensus
    /// contig sequences.
    pub fn with_consensus(
        hybrid: &HybridSet,
        store: &ReadStore,
        parts: Vec<u32>,
        k: usize,
    ) -> Result<DistributedHybrid, DistError> {
        DistributedHybrid::build(hybrid, store, parts, k, true)
    }

    fn build(
        hybrid: &HybridSet,
        store: &ReadStore,
        parts: Vec<u32>,
        k: usize,
        consensus: bool,
    ) -> Result<DistributedHybrid, DistError> {
        if parts.len() != hybrid.node_count() {
            return Err(DistError::PartitionLengthMismatch {
                got: parts.len(),
                expected: hybrid.node_count(),
            });
        }
        if k == 0 {
            return Err(DistError::NoRanks);
        }
        if let Some(&bad) = parts.iter().find(|&&p| p as usize >= k) {
            return Err(DistError::PartitionIdOutOfRange { id: bad, k });
        }
        let contigs: Vec<DnaString> = (0..hybrid.node_count() as NodeId)
            .map(|v| {
                if consensus {
                    hybrid.contig_consensus(v, store)
                } else {
                    hybrid.contig(v, store)
                }
            })
            .collect();
        let support: Vec<u64> = hybrid.clusters.iter().map(|c| c.len() as u64).collect();
        Ok(DistributedHybrid {
            graph: hybrid.directed.clone(),
            parts,
            k,
            contigs,
            support,
        })
    }

    /// Nodes of each partition.
    fn partition_nodes(&self) -> Vec<Vec<NodeId>> {
        let mut lists = vec![Vec::new(); self.k];
        for v in 0..self.graph.node_count() as NodeId {
            lists[self.parts[v as usize] as usize].push(v);
        }
        lists
    }

    /// Contig sequence of a hybrid node (post-construction view).
    pub fn contig(&self, v: NodeId) -> &DnaString {
        &self.contigs[v as usize]
    }

    /// Runs the full distributed pipeline on a perfect cluster. The graph
    /// is mutated in place; the report carries timings and the final paths.
    pub fn run(&mut self, config: &DistributedConfig) -> Result<DistributedReport, DistError> {
        self.run_with_faults(config, FaultPlan::none())
    }

    /// Runs the full distributed pipeline under a fault-injection plan.
    ///
    /// Failures are handled per phase: crashed (or presumed-dead) ranks'
    /// partitions are re-scanned on survivors, message drops are
    /// retransmitted with exponential backoff, and stragglers are
    /// speculatively re-executed — see [`crate::recovery`]. Because every
    /// worker scan is pure over the current graph, the final paths of any
    /// recoverable run are **identical** to the fault-free run's; only the
    /// virtual timings and the [`FaultReport`] differ.
    pub fn run_with_faults(
        &mut self,
        config: &DistributedConfig,
        plan: FaultPlan,
    ) -> Result<DistributedReport, DistError> {
        self.run_with_faults_obs(config, plan, &Recorder::disabled())
    }

    /// [`DistributedHybrid::run_with_faults`] with the distributed stage's
    /// metrics recorded into `rec`. Phase boundaries are emitted as span
    /// events from the orchestrating thread; message, retry and fault
    /// counters are recorded once at end of run and mirror the returned
    /// report's [`FaultReport`] field for field. The pipeline itself is
    /// identical.
    pub fn run_with_faults_obs(
        &mut self,
        config: &DistributedConfig,
        plan: FaultPlan,
        rec: &Recorder,
    ) -> Result<DistributedReport, DistError> {
        match self.run_with_faults_ckpt_obs(config, plan, rec, &mut NoCheckpoint)? {
            Some(report) => Ok(report),
            // NoCheckpoint::save always returns true, so a stop request can
            // only reach this point through a bug in the driver itself.
            None => Err(DistError::InvalidCheckpoint(
                "checkpoint-free run reported an orderly stop".to_owned(),
            )),
        }
    }

    /// [`DistributedHybrid::run_with_faults_obs`] with durable phase-level
    /// checkpoints.
    ///
    /// `ckpt` is consulted once up front: if it yields a saved
    /// [`DistPhaseState`], every phase up to and including the saved one is
    /// **skipped** — the graph, cluster progress and counters are restored
    /// wholesale, and the run continues from the next phase with results
    /// bit-identical to an uninterrupted run. After every completed phase
    /// the new state is offered to [`DistCheckpoint::save`]; a `false`
    /// return requests an orderly stop at that exact boundary (the chaos
    /// harness's crash point), reported as `Ok(None)`.
    ///
    /// The [`FaultPlan`], [`CostModel`] and [`RetryPolicy`] are rebuilt from
    /// the arguments on every call — they are pure lookups, so skipped
    /// phases never re-consume their fault events.
    pub fn run_with_faults_ckpt_obs(
        &mut self,
        config: &DistributedConfig,
        plan: FaultPlan,
        rec: &Recorder,
        ckpt: &mut dyn DistCheckpoint,
    ) -> Result<Option<DistributedReport>, DistError> {
        let planned_faults = plan.events().len() as u64;
        let mut cluster = SimCluster::with_faults(self.k, config.cost, plan, config.retry)?;
        let pool = fc_exec::Pool::new(config.threads);
        let _run_span = rec.span_args(
            "dist",
            "dist.run",
            &[
                ("ranks", self.k as i64),
                ("nodes", self.graph.node_count() as i64),
                ("planned_faults", planned_faults as i64),
            ],
        );

        // Resume: adopt the newest durable phase boundary, if any.
        let (done, mut st) = match ckpt.load() {
            Some((phase, s)) => {
                if s.timings.len() != phase.index() + 1 {
                    return Err(DistError::InvalidCheckpoint(format!(
                        "state saved after {} carries {} phase timings",
                        phase.name(),
                        s.timings.len()
                    )));
                }
                cluster.restore_state(&s.cluster)?;
                self.graph = s.graph.clone();
                rec.add("ckpt.dist_phases_skipped", s.timings.len() as u64);
                (phase.index() + 1, s)
            }
            None => (0, DistPhaseState::default()),
        };

        // --- Phase 1: transitive reduction (§V-A). ---
        if done <= PhaseId::TransitiveReduction.index() {
            let lists = self.partition_nodes();
            let phase_span = rec.span("dist", "dist.phase.transitive_reduction");
            let run = execute_phase_obs(
                &mut cluster,
                &pool,
                PhaseId::TransitiveReduction,
                self.k,
                |p, w| transitive::worker_scan(&self.graph, &lists[p], w),
                |r| 8 * r.len() as u64,
                rec,
            )?;
            drop(phase_span);
            let mut master_w = 0;
            st.transitive_removed = transitive::master_remove(
                &mut self.graph,
                run.results.into_iter().flatten(),
                &mut master_w,
            );
            cluster.master_work(master_w);
            st.timings.push(run.timing);
            if !save_boundary(ckpt, PhaseId::TransitiveReduction, &mut st, &self.graph, &cluster) {
                return Ok(None);
            }
        }

        // --- Phase 2: containment + false-positive edges (§V-B). ---
        if done <= PhaseId::ContainmentRemoval.index() {
            let lists = self.partition_nodes();
            let phase_span = rec.span("dist", "dist.phase.containment_removal");
            let run = execute_phase_obs(
                &mut cluster,
                &pool,
                PhaseId::ContainmentRemoval,
                self.k,
                |p, w| simplify::worker_scan(&self.graph, &lists[p], &self.contigs, w),
                |(dn, de)| 8 * (dn.len() + 2 * de.len()) as u64,
                rec,
            )?;
            drop(phase_span);
            let (node_recs, edge_recs): (Vec<_>, Vec<_>) = run.results.into_iter().unzip();
            let mut master_w = 0;
            let (contained, false_edges) = simplify::master_apply(
                &mut self.graph,
                node_recs.into_iter().flatten(),
                edge_recs.into_iter().flatten(),
                &mut master_w,
            );
            st.contained_removed = contained;
            st.false_edges_removed = false_edges;
            cluster.master_work(master_w);
            st.timings.push(run.timing);
            if !save_boundary(ckpt, PhaseId::ContainmentRemoval, &mut st, &self.graph, &cluster) {
                return Ok(None);
            }
        }

        // --- Phase 3: dead ends + bubbles (§V-C). ---
        if done <= PhaseId::ErrorRemoval.index() {
            let lists = self.partition_nodes();
            let phase_span = rec.span("dist", "dist.phase.error_removal");
            let run = execute_phase_obs(
                &mut cluster,
                &pool,
                PhaseId::ErrorRemoval,
                self.k,
                |p, w| {
                    let mut rec =
                        error_removal::worker_dead_ends(&self.graph, &lists[p], &config.errors, w);
                    rec.extend(error_removal::worker_bubbles(
                        &self.graph,
                        &lists[p],
                        &self.support,
                        &config.errors,
                        w,
                    ));
                    rec
                },
                |r| 4 * r.len() as u64,
                rec,
            )?;
            drop(phase_span);
            let mut master_w = 0;
            st.error_nodes_removed = error_removal::master_remove(
                &mut self.graph,
                run.results.into_iter().flatten(),
                &mut master_w,
            );
            cluster.master_work(master_w);
            st.timings.push(run.timing);
            cluster.barrier();
            st.trimming_time = cluster.now();
            if !save_boundary(ckpt, PhaseId::ErrorRemoval, &mut st, &self.graph, &cluster) {
                return Ok(None);
            }
        }

        // --- Phase 4: traversal (§V-D). ---
        if done <= PhaseId::Traversal.index() {
            let phase_span = rec.span("dist", "dist.phase.traversal");
            let run = execute_phase_obs(
                &mut cluster,
                &pool,
                PhaseId::Traversal,
                self.k,
                |p, w| traverse::worker_paths(&self.graph, &self.parts, p as u32, w),
                |paths| paths.iter().map(|q| 4 * q.len() as u64 + 8).sum(),
                rec,
            )?;
            drop(phase_span);
            let mut master_w = 0;
            let paths = traverse::master_join(
                &self.graph,
                run.results.into_iter().flatten().collect(),
                &mut master_w,
            );
            cluster.master_work(master_w);
            st.timings.push(run.timing);
            cluster.barrier();
            st.traversal_time = cluster.now() - st.trimming_time;
            st.paths = Some(paths);
            if !save_boundary(ckpt, PhaseId::Traversal, &mut st, &self.graph, &cluster) {
                return Ok(None);
            }
        }

        let phases: Vec<(&'static str, PhaseTiming)> = st
            .timings
            .iter()
            .zip(PhaseId::ALL)
            .map(|(&t, phase)| (phase.name(), t))
            .collect();
        let Some(paths) = st.paths else {
            return Err(DistError::InvalidCheckpoint(
                "state saved after traversal has no paths".to_owned(),
            ));
        };
        let trimming_time = st.trimming_time;
        let traversal_time = st.traversal_time;
        let transitive_removed = st.transitive_removed;
        let contained_removed = st.contained_removed;
        let false_edges_removed = st.false_edges_removed;
        let error_nodes_removed = st.error_nodes_removed;

        // Structural post-condition (previously a debug assertion that
        // vanished in release builds): the paths must cover every live node
        // exactly once — fault, resume or neither.
        traverse::check_path_cover(&self.graph, &paths)?;

        let fault = cluster.fault_report().clone();
        if rec.is_enabled() {
            // End-of-run counters mirror the report exactly — tests assert
            // field-for-field parity with the returned `FaultReport`.
            rec.add("dist.messages", cluster.messages());
            rec.add("dist.bytes", cluster.bytes());
            rec.add("dist.faults_injected", planned_faults);
            rec.add("dist.fault.crashes", fault.crashes as u64);
            rec.add("dist.fault.retries", fault.retries as u64);
            rec.add("dist.fault.retransmitted_bytes", fault.retransmitted_bytes);
            rec.add(
                "dist.fault.speculative_reexecutions",
                fault.speculative_reexecutions as u64,
            );
            rec.gauge(
                "dist.fault.recovery_time_milli",
                (fault.recovery_time * 1000.0) as i64,
            );
            rec.gauge("dist.fault.degraded", i64::from(fault.degraded));
            rec.add("dist.paths", paths.len() as u64);
            rec.add("dist.transitive_removed", transitive_removed as u64);
            rec.add("dist.contained_removed", contained_removed as u64);
            rec.add("dist.false_edges_removed", false_edges_removed as u64);
            rec.add("dist.error_nodes_removed", error_nodes_removed as u64);
        }

        Ok(Some(DistributedReport {
            phases,
            trimming_time,
            traversal_time,
            paths,
            transitive_removed,
            contained_removed,
            false_edges_removed,
            error_nodes_removed,
            messages: cluster.messages(),
            bytes: cluster.bytes(),
            fault,
        }))
    }
}

/// Refreshes the snapshot's graph + cluster fields and offers it to the
/// checkpoint hook. Returns the hook's verdict (`false` = orderly stop).
fn save_boundary(
    ckpt: &mut dyn DistCheckpoint,
    phase: PhaseId,
    st: &mut DistPhaseState,
    graph: &DiGraph,
    cluster: &SimCluster,
) -> bool {
    st.graph = graph.clone();
    st.cluster = cluster.export_state();
    ckpt.save(phase, st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_align::{Overlap, OverlapKind};
    use fc_graph::{CoarsenConfig, LayoutConfig, MultilevelSet, OverlapGraph};
    use fc_seq::{Read, ReadId};

    /// Builds a hybrid set from a linear tiling with a transitive shortcut.
    fn hybrid_case(n_reads: usize) -> (ReadStore, HybridSet) {
        let read_len = 100usize;
        let stride = 50usize;
        let genome: DnaString = (0..(n_reads * stride + read_len))
            .map(|i| fc_seq::Base::from_code(((i * 2654435761usize) >> 7) as u8 & 3))
            .collect();
        let reads: Vec<Read> = (0..n_reads)
            .map(|i| {
                Read::new(
                    format!("r{i}"),
                    genome.slice(i * stride, i * stride + read_len),
                )
            })
            .collect();
        let store = ReadStore::from_reads(reads);
        let mut overlaps: Vec<Overlap> = (0..n_reads - 1)
            .map(|i| Overlap {
                a: ReadId(i as u32),
                b: ReadId(i as u32 + 1),
                kind: OverlapKind::SuffixPrefix,
                shift: stride as u32,
                len: (read_len - stride) as u32,
                identity: 1.0,
            })
            .collect();
        // Transitive two-hop overlaps.
        overlaps.extend((0..n_reads - 2).map(|i| Overlap {
            a: ReadId(i as u32),
            b: ReadId(i as u32 + 2),
            kind: OverlapKind::SuffixPrefix,
            shift: 2 * stride as u32,
            len: 1,
            identity: 1.0,
        }));
        let g = OverlapGraph::build(&store, &overlaps);
        let ml = MultilevelSet::build(
            g.undirected.clone(),
            &CoarsenConfig {
                min_nodes: 6,
                ..Default::default()
            },
        );
        let hs = HybridSet::build(&ml, &g, &store, &LayoutConfig::default());
        (store, hs)
    }

    fn round_robin_parts(n: usize, k: usize) -> Vec<u32> {
        (0..n).map(|i| (i % k) as u32).collect()
    }

    fn sorted_cover(report: &DistributedReport) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = report
            .paths
            .iter()
            .flat_map(|p| p.nodes.iter().copied())
            .collect();
        nodes.sort_unstable();
        nodes
    }

    #[test]
    fn pipeline_runs_and_covers_all_live_nodes() {
        let (store, hs) = hybrid_case(40);
        let k = 4;
        let parts = round_robin_parts(hs.node_count(), k);
        let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
        let report = dh.run(&DistributedConfig::default()).unwrap();
        traverse::check_path_cover(&dh.graph, &report.paths).unwrap();
        assert!(report.trimming_time > 0.0);
        assert!(report.traversal_time > 0.0);
        assert!(report.messages >= 4 * k as u64);
        assert_eq!(report.phases.len(), 4);
        assert_eq!(report.fault, FaultReport::default());
    }

    #[test]
    fn rejects_bad_partition_input_with_typed_errors() {
        let (store, hs) = hybrid_case(20);
        let n = hs.node_count();
        assert!(matches!(
            DistributedHybrid::new(&hs, &store, vec![0; n + 1], 2),
            Err(DistError::PartitionLengthMismatch { .. })
        ));
        assert!(matches!(
            DistributedHybrid::new(&hs, &store, vec![5; n], 2),
            Err(DistError::PartitionIdOutOfRange { id: 5, k: 2 })
        ));
        assert!(matches!(
            DistributedHybrid::new(&hs, &store, vec![0; n], 0),
            Err(DistError::NoRanks)
        ));
    }

    #[test]
    fn more_partitions_do_not_change_path_node_cover() {
        let (store, hs) = hybrid_case(60);
        let mut covers = Vec::new();
        for k in [1usize, 2, 4] {
            let parts = round_robin_parts(hs.node_count(), k);
            let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
            let report = dh.run(&DistributedConfig::default()).unwrap();
            covers.push(sorted_cover(&report));
        }
        assert_eq!(covers[0], covers[1]);
        assert_eq!(covers[1], covers[2]);
    }

    #[test]
    fn contiguous_partitions_give_fewer_subpath_breaks_than_scattered() {
        let (store, hs) = hybrid_case(80);
        let k = 4;
        let n = hs.node_count();
        // Scattered: round-robin. Contiguous-ish: block assignment.
        let scattered = round_robin_parts(n, k);
        let block: Vec<u32> = (0..n).map(|i| ((i * k) / n).min(k - 1) as u32).collect();
        let run = |parts: Vec<u32>| {
            let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
            dh.run(&DistributedConfig::default()).unwrap().paths.len()
        };
        // Both must cover the same nodes; the block partition cannot yield
        // more final paths than the scattered one after master joining
        // (joining heals boundaries, so counts are equal in the end — the
        // real difference is message volume; assert the invariant that
        // path counts match).
        assert_eq!(run(scattered), run(block));
    }

    #[test]
    fn single_crash_in_every_phase_preserves_paths_exactly() {
        let (store, hs) = hybrid_case(50);
        let k = 4;
        let parts = round_robin_parts(hs.node_count(), k);
        let clean_report = DistributedHybrid::new(&hs, &store, parts.clone(), k)
            .unwrap()
            .run(&DistributedConfig::default())
            .unwrap();
        for phase in PhaseId::ALL {
            for rank in 0..k {
                let mut dh = DistributedHybrid::new(&hs, &store, parts.clone(), k).unwrap();
                let report = dh
                    .run_with_faults(
                        &DistributedConfig::default(),
                        FaultPlan::single_crash(phase, rank),
                    )
                    .unwrap();
                traverse::check_path_cover(&dh.graph, &report.paths).unwrap();
                // Not just the cover: the paths themselves are identical.
                assert_eq!(
                    report.paths,
                    clean_report.paths,
                    "crash of rank {rank} in {} changed the result",
                    phase.name()
                );
                assert_eq!(report.fault.crashes, 1);
                assert!(report.fault.degraded);
                assert!(report.fault.recovery_time > 0.0);
            }
        }
    }

    #[test]
    fn message_drops_are_retried_and_counted() {
        let (store, hs) = hybrid_case(40);
        let k = 2;
        let parts = round_robin_parts(hs.node_count(), k);
        let mut dh = DistributedHybrid::new(&hs, &store, parts.clone(), k).unwrap();
        let clean = dh.run(&DistributedConfig::default()).unwrap();
        let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
        let report = dh
            .run_with_faults(
                &DistributedConfig::default(),
                FaultPlan::message_drops(PhaseId::TransitiveReduction, 1, 2),
            )
            .unwrap();
        assert_eq!(report.fault.retries, 2);
        assert!(report.fault.retransmitted_bytes > 0 || report.bytes == clean.bytes);
        assert_eq!(report.fault.crashes, 0);
        assert!(!report.fault.degraded);
        assert_eq!(report.paths, clean.paths);
        assert_eq!(report.messages, clean.messages + 2);
    }

    #[test]
    fn obs_fault_counters_mirror_the_fault_report_exactly() {
        let (store, hs) = hybrid_case(50);
        let k = 4;
        let parts = round_robin_parts(hs.node_count(), k);
        let mut plan = FaultPlan::single_crash(PhaseId::TransitiveReduction, 1);
        for event in FaultPlan::message_drops(PhaseId::ErrorRemoval, 2, 2).events() {
            plan.push(event.clone());
        }
        let planned = plan.events().len() as u64;
        let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
        let rec = Recorder::new(fc_obs::ObsOptions::logical());
        let report = dh
            .run_with_faults_obs(&DistributedConfig::default(), plan, &rec)
            .unwrap();
        let snapshot = rec.snapshot();
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0);
        assert_eq!(counter("dist.fault.crashes"), report.fault.crashes as u64);
        assert_eq!(counter("dist.fault.retries"), report.fault.retries as u64);
        assert_eq!(
            counter("dist.fault.retransmitted_bytes"),
            report.fault.retransmitted_bytes
        );
        assert_eq!(
            counter("dist.fault.speculative_reexecutions"),
            report.fault.speculative_reexecutions as u64
        );
        assert_eq!(
            gauge("dist.fault.recovery_time_milli"),
            (report.fault.recovery_time * 1000.0) as i64
        );
        assert_eq!(gauge("dist.fault.degraded"), i64::from(report.fault.degraded));
        assert_eq!(counter("dist.faults_injected"), planned);
        assert_eq!(counter("dist.messages"), report.messages);
        assert_eq!(counter("dist.bytes"), report.bytes);
        assert!(report.fault.crashes >= 1);
        assert!(report.fault.retries >= 2);
        assert!(
            counter("dist.recovery_rescans") >= 1,
            "a crash must force at least one recovery re-scan"
        );
        // Four phase spans plus the run span plus one exec.batch span per
        // phase fan-out, all balanced (B/E pairs).
        let begins = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, fc_obs::EventKind::Begin))
            .count();
        let ends = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, fc_obs::EventKind::End))
            .count();
        assert_eq!(begins, 9);
        assert_eq!(begins, ends);
    }

    #[test]
    fn obs_run_is_identical_to_plain_run() {
        let (store, hs) = hybrid_case(40);
        let k = 3;
        let parts = round_robin_parts(hs.node_count(), k);
        let mut dh = DistributedHybrid::new(&hs, &store, parts.clone(), k).unwrap();
        let plain = dh.run(&DistributedConfig::default()).unwrap();
        let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
        let rec = Recorder::new(fc_obs::ObsOptions::logical());
        let obs = dh
            .run_with_faults_obs(&DistributedConfig::default(), FaultPlan::none(), &rec)
            .unwrap();
        assert_eq!(obs.paths, plain.paths);
        assert_eq!(obs.messages, plain.messages);
        assert_eq!(rec.snapshot().counters.get("dist.recovery_rescans"), None);
    }

    #[test]
    fn crashing_the_only_rank_is_unrecoverable() {
        let (store, hs) = hybrid_case(30);
        let parts = vec![0u32; hs.node_count()];
        let mut dh = DistributedHybrid::new(&hs, &store, parts, 1).unwrap();
        let err = dh
            .run_with_faults(
                &DistributedConfig::default(),
                FaultPlan::single_crash(PhaseId::ContainmentRemoval, 0),
            )
            .unwrap_err();
        assert_eq!(
            err,
            DistError::AllRanksDead {
                phase: PhaseId::ContainmentRemoval
            }
        );
    }

    /// In-memory [`DistCheckpoint`] that round-trips every save through the
    /// binary codec, and optionally requests a stop after one phase — the
    /// unit-level analogue of the chaos harness's crash points.
    struct MemCkpt {
        saved: Option<(PhaseId, DistPhaseState)>,
        stop_after: Option<PhaseId>,
        saves: usize,
    }

    impl MemCkpt {
        fn new(stop_after: Option<PhaseId>) -> MemCkpt {
            MemCkpt {
                saved: None,
                stop_after,
                saves: 0,
            }
        }
    }

    impl DistCheckpoint for MemCkpt {
        fn load(&mut self) -> Option<(PhaseId, DistPhaseState)> {
            self.saved.clone()
        }

        fn save(&mut self, phase: PhaseId, state: &DistPhaseState) -> bool {
            self.saves += 1;
            let bytes = fc_ckpt::encode_to_vec(state);
            let back: DistPhaseState = fc_ckpt::decode_from_slice(&bytes).unwrap();
            self.saved = Some((phase, back));
            self.stop_after != Some(phase)
        }
    }

    #[test]
    fn stop_and_resume_at_every_phase_boundary_is_bit_identical() {
        let (store, hs) = hybrid_case(40);
        let k = 4;
        let parts = round_robin_parts(hs.node_count(), k);
        let clean = DistributedHybrid::new(&hs, &store, parts.clone(), k)
            .unwrap()
            .run(&DistributedConfig::default())
            .unwrap();
        for stop in PhaseId::ALL {
            let mut ckpt = MemCkpt::new(Some(stop));
            let mut dh = DistributedHybrid::new(&hs, &store, parts.clone(), k).unwrap();
            let first = dh
                .run_with_faults_ckpt_obs(
                    &DistributedConfig::default(),
                    FaultPlan::none(),
                    &Recorder::disabled(),
                    &mut ckpt,
                )
                .unwrap();
            assert!(
                first.is_none(),
                "a stop after {} must be an orderly Ok(None)",
                stop.name()
            );
            assert_eq!(ckpt.saves, stop.index() + 1);
            ckpt.stop_after = None;
            let mut dh = DistributedHybrid::new(&hs, &store, parts.clone(), k).unwrap();
            let resumed = dh
                .run_with_faults_ckpt_obs(
                    &DistributedConfig::default(),
                    FaultPlan::none(),
                    &Recorder::disabled(),
                    &mut ckpt,
                )
                .unwrap()
                .unwrap();
            assert_eq!(resumed.paths, clean.paths);
            assert_eq!(resumed.messages, clean.messages);
            assert_eq!(resumed.bytes, clean.bytes);
            assert_eq!(resumed.fault, clean.fault);
            assert_eq!(resumed.trimming_time, clean.trimming_time);
            assert_eq!(resumed.traversal_time, clean.traversal_time);
            for ((n1, t1), (n2, t2)) in resumed.phases.iter().zip(clean.phases.iter()) {
                assert_eq!(n1, n2);
                assert_eq!(t1, t2, "timing of {n1} changed across the resume");
            }
        }
    }

    #[test]
    fn faults_after_the_resume_point_fire_exactly_once() {
        let (store, hs) = hybrid_case(40);
        let k = 4;
        let parts = round_robin_parts(hs.node_count(), k);
        let clean = DistributedHybrid::new(&hs, &store, parts.clone(), k)
            .unwrap()
            .run(&DistributedConfig::default())
            .unwrap();
        // A crash scheduled for traversal, with the run interrupted two
        // phases earlier: the resumed run must consume the crash exactly
        // once (skipped phases never replay fault events).
        let plan = FaultPlan::single_crash(PhaseId::Traversal, 2);
        let mut ckpt = MemCkpt::new(Some(PhaseId::ContainmentRemoval));
        let mut dh = DistributedHybrid::new(&hs, &store, parts.clone(), k).unwrap();
        let first = dh
            .run_with_faults_ckpt_obs(
                &DistributedConfig::default(),
                plan.clone(),
                &Recorder::disabled(),
                &mut ckpt,
            )
            .unwrap();
        assert!(first.is_none());
        assert_eq!(ckpt.saved.as_ref().unwrap().1.cluster.fault.crashes, 0);
        ckpt.stop_after = None;
        let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
        let resumed = dh
            .run_with_faults_ckpt_obs(
                &DistributedConfig::default(),
                plan,
                &Recorder::disabled(),
                &mut ckpt,
            )
            .unwrap()
            .unwrap();
        assert_eq!(resumed.fault.crashes, 1);
        assert!(resumed.fault.degraded);
        assert_eq!(resumed.paths, clean.paths);
    }

    #[test]
    fn resume_with_wrong_rank_count_is_a_typed_error() {
        let (store, hs) = hybrid_case(30);
        let k = 4;
        let parts = round_robin_parts(hs.node_count(), k);
        let mut ckpt = MemCkpt::new(Some(PhaseId::TransitiveReduction));
        let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
        dh.run_with_faults_ckpt_obs(
            &DistributedConfig::default(),
            FaultPlan::none(),
            &Recorder::disabled(),
            &mut ckpt,
        )
        .unwrap();
        // Resume against a 2-rank run: the snapshot's 4 clocks don't fit.
        let parts2 = round_robin_parts(hs.node_count(), 2);
        ckpt.stop_after = None;
        let mut dh = DistributedHybrid::new(&hs, &store, parts2, 2).unwrap();
        let err = dh
            .run_with_faults_ckpt_obs(
                &DistributedConfig::default(),
                FaultPlan::none(),
                &Recorder::disabled(),
                &mut ckpt,
            )
            .unwrap_err();
        assert!(matches!(err, DistError::InvalidCheckpoint(_)));
    }

    #[test]
    fn faulty_run_charges_more_virtual_time_than_clean_run() {
        let (store, hs) = hybrid_case(60);
        let k = 4;
        let parts = round_robin_parts(hs.node_count(), k);
        let mut dh = DistributedHybrid::new(&hs, &store, parts.clone(), k).unwrap();
        let clean = dh.run(&DistributedConfig::default()).unwrap();
        let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
        let faulty = dh
            .run_with_faults(
                &DistributedConfig::default(),
                FaultPlan::single_crash(PhaseId::ErrorRemoval, 2),
            )
            .unwrap();
        let total = |r: &DistributedReport| r.trimming_time + r.traversal_time;
        // Recovery can hide behind the master's serial time in the makespan,
        // but it can never make the run faster, and its own cost is always
        // visible in the report.
        assert!(
            total(&faulty) >= total(&clean),
            "recovery must not speed the run up: {} vs {}",
            total(&faulty),
            total(&clean)
        );
        assert!(faulty.fault.recovery_time > 0.0);
        assert!(faulty.fault.degraded);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Any simultaneous crash set that leaves at least one survivor
            /// yields paths identical to the fault-free run; wiping out every
            /// rank is the typed `AllRanksDead` error. `mask` enumerates
            /// non-empty subsets of the 4 ranks, bit r = crash rank r.
            #[test]
            fn any_crash_set_with_a_survivor_preserves_paths(
                mask in 1u8..16,
                phase_idx in 0usize..4,
            ) {
                let (store, hs) = hybrid_case(30);
                let k = 4;
                let parts = round_robin_parts(hs.node_count(), k);
                let clean = DistributedHybrid::new(&hs, &store, parts.clone(), k)
                    .unwrap()
                    .run(&DistributedConfig::default())
                    .unwrap();
                let ranks: Vec<usize> = (0..k).filter(|r| mask & (1 << r) != 0).collect();
                let phase = PhaseId::ALL[phase_idx];
                let plan = FaultPlan::crashes(phase, &ranks);
                let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
                let outcome = dh.run_with_faults(&DistributedConfig::default(), plan);
                if ranks.len() == k {
                    prop_assert_eq!(outcome.unwrap_err(), DistError::AllRanksDead { phase });
                } else {
                    let report = outcome.unwrap();
                    prop_assert_eq!(
                        &report.paths,
                        &clean.paths,
                        "crash set {:?} in {} changed the paths",
                        &ranks,
                        phase.name()
                    );
                    prop_assert_eq!(report.fault.crashes as usize, ranks.len());
                    prop_assert!(report.fault.degraded);
                    prop_assert!(report.fault.recovery_time > 0.0);
                }
            }
        }
    }
}
