//! The distributed pipeline over a partitioned hybrid graph (paper §V).
//!
//! Runs, in order: transitive reduction, containment/false-edge removal,
//! dead-end trimming, bubble popping (together "graph trimming", Fig. 6),
//! then maximal-path traversal with master-side joining. Each phase executes
//! every partition's worker, charges the simulated cluster with the worker
//! works and result messages, and lets the master apply the recorded
//! mutations.

use crate::cluster::{CostModel, PhaseTiming, SimCluster};
use crate::errors::{self, ErrorRemovalConfig};
use crate::simplify;
use crate::transitive;
use crate::traverse::{self, AssemblyPath};
use fc_graph::{DiGraph, HybridSet, NodeId};
use fc_seq::{DnaString, ReadStore};

/// Configuration of the distributed stage.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub struct DistributedConfig {
    /// Virtual-time cost model.
    pub cost: CostModel,
    /// Dead-end/bubble limits.
    pub errors: ErrorRemovalConfig,
}


/// Per-phase and aggregate outcome of the distributed stage.
#[derive(Debug, Clone)]
pub struct DistributedReport {
    /// Named phase timings in execution order.
    pub phases: Vec<(&'static str, PhaseTiming)>,
    /// Virtual time of the combined trimming phases (Fig. 6, "trimming").
    pub trimming_time: f64,
    /// Virtual time of traversal + joining (Fig. 6, "traversal").
    pub traversal_time: f64,
    /// Final maximal paths over live hybrid nodes.
    pub paths: Vec<AssemblyPath>,
    /// Transitive edges removed.
    pub transitive_removed: usize,
    /// Contained contig nodes removed.
    pub contained_removed: usize,
    /// False-positive edges removed.
    pub false_edges_removed: usize,
    /// Dead-end/bubble nodes removed.
    pub error_nodes_removed: usize,
    /// Messages exchanged with the master.
    pub messages: u64,
    /// Message payload bytes.
    pub bytes: u64,
}

/// A partitioned hybrid graph ready for the distributed algorithms.
#[derive(Debug, Clone)]
pub struct DistributedHybrid {
    /// Working copy of the directed hybrid graph (mutated by simplification).
    pub graph: DiGraph,
    /// Partition of each hybrid node.
    pub parts: Vec<u32>,
    /// Number of partitions (= worker ranks).
    pub k: usize,
    /// Contig sequence per hybrid node.
    contigs: Vec<DnaString>,
    /// Read support (cluster size) per hybrid node.
    support: Vec<u64>,
}

impl DistributedHybrid {
    /// Prepares the distributed stage from a hybrid set, its `G'0` partition
    /// assignment and the read store. Contigs are built with first-wins
    /// merging; use [`DistributedHybrid::with_consensus`] for per-column
    /// majority consensus.
    pub fn new(hybrid: &HybridSet, store: &ReadStore, parts: Vec<u32>, k: usize) -> Result<DistributedHybrid, String> {
        DistributedHybrid::build(hybrid, store, parts, k, false)
    }

    /// Like [`DistributedHybrid::new`] but with error-corrected consensus
    /// contig sequences.
    pub fn with_consensus(
        hybrid: &HybridSet,
        store: &ReadStore,
        parts: Vec<u32>,
        k: usize,
    ) -> Result<DistributedHybrid, String> {
        DistributedHybrid::build(hybrid, store, parts, k, true)
    }

    fn build(hybrid: &HybridSet, store: &ReadStore, parts: Vec<u32>, k: usize, consensus: bool) -> Result<DistributedHybrid, String> {
        if parts.len() != hybrid.node_count() {
            return Err(format!(
                "partition length {} != hybrid node count {}",
                parts.len(),
                hybrid.node_count()
            ));
        }
        if k == 0 || parts.iter().any(|&p| p as usize >= k) {
            return Err("partition ids out of range".to_string());
        }
        let contigs: Vec<DnaString> = (0..hybrid.node_count() as NodeId)
            .map(|v| {
                if consensus {
                    hybrid.contig_consensus(v, store)
                } else {
                    hybrid.contig(v, store)
                }
            })
            .collect();
        let support: Vec<u64> =
            hybrid.clusters.iter().map(|c| c.len() as u64).collect();
        Ok(DistributedHybrid { graph: hybrid.directed.clone(), parts, k, contigs, support })
    }

    /// Nodes of each partition.
    fn partition_nodes(&self) -> Vec<Vec<NodeId>> {
        let mut lists = vec![Vec::new(); self.k];
        for v in 0..self.graph.node_count() as NodeId {
            lists[self.parts[v as usize] as usize].push(v);
        }
        lists
    }

    /// Contig sequence of a hybrid node (post-construction view).
    pub fn contig(&self, v: NodeId) -> &DnaString {
        &self.contigs[v as usize]
    }

    /// Runs the full distributed pipeline. The graph is mutated in place;
    /// the report carries timings and the final paths.
    pub fn run(&mut self, config: &DistributedConfig) -> DistributedReport {
        let mut cluster = SimCluster::new(self.k, config.cost);
        let mut phases = Vec::new();

        // --- Phase 1: transitive reduction (§V-A). ---
        let lists = self.partition_nodes();
        let mut records = Vec::new();
        let mut works = Vec::with_capacity(self.k);
        for nodes in &lists {
            let mut w = 0;
            let r = transitive::worker_scan(&self.graph, nodes, &mut w);
            works.push(w);
            records.push(r);
        }
        let timing = cluster.run_phase(&works);
        let payloads: Vec<u64> = records.iter().map(|r| 8 * r.len() as u64).collect();
        cluster.gather_to_master(&payloads);
        let mut master_w = 0;
        let transitive_removed =
            transitive::master_remove(&mut self.graph, records.into_iter().flatten(), &mut master_w);
        cluster.master_work(master_w);
        phases.push(("transitive_reduction", timing));

        // --- Phase 2: containment + false-positive edges (§V-B). ---
        let lists = self.partition_nodes();
        let mut node_recs = Vec::new();
        let mut edge_recs = Vec::new();
        let mut works = Vec::with_capacity(self.k);
        for nodes in &lists {
            let mut w = 0;
            let (dn, de) = simplify::worker_scan(&self.graph, nodes, &self.contigs, &mut w);
            works.push(w);
            node_recs.push(dn);
            edge_recs.push(de);
        }
        let timing = cluster.run_phase(&works);
        let payloads: Vec<u64> = (0..self.k)
            .map(|rank| 8 * (node_recs[rank].len() + 2 * edge_recs[rank].len()) as u64)
            .collect();
        cluster.gather_to_master(&payloads);
        let mut master_w = 0;
        let (contained_removed, false_edges_removed) = simplify::master_apply(
            &mut self.graph,
            node_recs.into_iter().flatten(),
            edge_recs.into_iter().flatten(),
            &mut master_w,
        );
        cluster.master_work(master_w);
        phases.push(("containment_removal", timing));

        // --- Phase 3: dead ends + bubbles (§V-C). ---
        let lists = self.partition_nodes();
        let mut error_recs = Vec::new();
        let mut works = Vec::with_capacity(self.k);
        for nodes in &lists {
            let mut w = 0;
            let mut rec = errors::worker_dead_ends(&self.graph, nodes, &config.errors, &mut w);
            rec.extend(errors::worker_bubbles(
                &self.graph,
                nodes,
                &self.support,
                &config.errors,
                &mut w,
            ));
            works.push(w);
            error_recs.push(rec);
        }
        let timing = cluster.run_phase(&works);
        let payloads: Vec<u64> = error_recs.iter().map(|r| 4 * r.len() as u64).collect();
        cluster.gather_to_master(&payloads);
        let mut master_w = 0;
        let error_nodes_removed =
            errors::master_remove(&mut self.graph, error_recs.into_iter().flatten(), &mut master_w);
        cluster.master_work(master_w);
        phases.push(("error_removal", timing));

        cluster.barrier();
        let trimming_time = cluster.now();

        // --- Phase 4: traversal (§V-D). ---
        let mut sub_paths = Vec::new();
        let mut works = Vec::with_capacity(self.k);
        for rank in 0..self.k {
            let mut w = 0;
            let paths = traverse::worker_paths(&self.graph, &self.parts, rank as u32, &mut w);
            works.push(w);
            sub_paths.push(paths);
        }
        let timing = cluster.run_phase(&works);
        let payloads: Vec<u64> = sub_paths
            .iter()
            .map(|p| p.iter().map(|q| 4 * q.len() as u64 + 8).sum())
            .collect();
        cluster.gather_to_master(&payloads);
        let mut master_w = 0;
        let paths = traverse::master_join(
            &self.graph,
            sub_paths.into_iter().flatten().collect(),
            &mut master_w,
        );
        cluster.master_work(master_w);
        phases.push(("traversal", timing));
        cluster.barrier();
        let traversal_time = cluster.now() - trimming_time;

        debug_assert_eq!(traverse::check_path_cover(&self.graph, &paths), Ok(()));

        DistributedReport {
            phases,
            trimming_time,
            traversal_time,
            paths,
            transitive_removed,
            contained_removed,
            false_edges_removed,
            error_nodes_removed,
            messages: cluster.messages(),
            bytes: cluster.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_align::{Overlap, OverlapKind};
    use fc_graph::{CoarsenConfig, LayoutConfig, MultilevelSet, OverlapGraph};
    use fc_seq::{Read, ReadId};

    /// Builds a hybrid set from a linear tiling with a transitive shortcut.
    fn hybrid_case(n_reads: usize) -> (ReadStore, HybridSet) {
        let read_len = 100usize;
        let stride = 50usize;
        let genome: DnaString = (0..(n_reads * stride + read_len))
            .map(|i| fc_seq::Base::from_code(((i * 2654435761usize) >> 7) as u8 & 3))
            .collect();
        let reads: Vec<Read> = (0..n_reads)
            .map(|i| Read::new(format!("r{i}"), genome.slice(i * stride, i * stride + read_len)))
            .collect();
        let store = ReadStore::from_reads(reads);
        let mut overlaps: Vec<Overlap> = (0..n_reads - 1)
            .map(|i| Overlap {
                a: ReadId(i as u32),
                b: ReadId(i as u32 + 1),
                kind: OverlapKind::SuffixPrefix,
                shift: stride as u32,
                len: (read_len - stride) as u32,
                identity: 1.0,
            })
            .collect();
        // Transitive two-hop overlaps.
        overlaps.extend((0..n_reads - 2).map(|i| Overlap {
            a: ReadId(i as u32),
            b: ReadId(i as u32 + 2),
            kind: OverlapKind::SuffixPrefix,
            shift: 2 * stride as u32,
            len: 1,
            identity: 1.0,
        }));
        let g = OverlapGraph::build(&store, &overlaps);
        let ml = MultilevelSet::build(
            g.undirected.clone(),
            &CoarsenConfig { min_nodes: 6, ..Default::default() },
        );
        let hs = HybridSet::build(&ml, &g, &store, &LayoutConfig::default());
        (store, hs)
    }

    fn round_robin_parts(n: usize, k: usize) -> Vec<u32> {
        (0..n).map(|i| (i % k) as u32).collect()
    }

    #[test]
    fn pipeline_runs_and_covers_all_live_nodes() {
        let (store, hs) = hybrid_case(40);
        let k = 4;
        let parts = round_robin_parts(hs.node_count(), k);
        let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
        let report = dh.run(&DistributedConfig::default());
        traverse::check_path_cover(&dh.graph, &report.paths).unwrap();
        assert!(report.trimming_time > 0.0);
        assert!(report.traversal_time > 0.0);
        assert!(report.messages >= 4 * k as u64);
        assert_eq!(report.phases.len(), 4);
    }

    #[test]
    fn rejects_bad_partition_input() {
        let (store, hs) = hybrid_case(20);
        let n = hs.node_count();
        assert!(DistributedHybrid::new(&hs, &store, vec![0; n + 1], 2).is_err());
        assert!(DistributedHybrid::new(&hs, &store, vec![5; n], 2).is_err());
        assert!(DistributedHybrid::new(&hs, &store, vec![0; n], 0).is_err());
    }

    #[test]
    fn more_partitions_do_not_change_path_node_cover() {
        let (store, hs) = hybrid_case(60);
        let mut covers = Vec::new();
        for k in [1usize, 2, 4] {
            let parts = round_robin_parts(hs.node_count(), k);
            let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
            let report = dh.run(&DistributedConfig::default());
            let mut nodes: Vec<NodeId> =
                report.paths.iter().flat_map(|p| p.nodes.iter().copied()).collect();
            nodes.sort_unstable();
            covers.push(nodes);
        }
        assert_eq!(covers[0], covers[1]);
        assert_eq!(covers[1], covers[2]);
    }

    #[test]
    fn contiguous_partitions_give_fewer_subpath_breaks_than_scattered() {
        let (store, hs) = hybrid_case(80);
        let k = 4;
        let n = hs.node_count();
        // Scattered: round-robin. Contiguous-ish: block assignment.
        let scattered = round_robin_parts(n, k);
        let block: Vec<u32> = (0..n).map(|i| ((i * k) / n).min(k - 1) as u32).collect();
        let run = |parts: Vec<u32>| {
            let mut dh = DistributedHybrid::new(&hs, &store, parts, k).unwrap();
            dh.run(&DistributedConfig::default()).paths.len()
        };
        // Both must cover the same nodes; the block partition cannot yield
        // more final paths than the scattered one after master joining
        // (joining heals boundaries, so counts are equal in the end — the
        // real difference is message volume; assert the invariant that
        // path counts match).
        assert_eq!(run(scattered), run(block));
    }
}
