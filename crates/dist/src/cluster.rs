//! The simulated cluster: virtual rank clocks, cost model, scheduling.

/// Converts abstract work and message counts into virtual time.
///
/// Units are arbitrary ("virtual microseconds"); every experiment reports
/// ratios (speedup) or relative comparisons, so only the *relative*
/// magnitudes matter. The defaults reflect the regime the paper measures
/// in: per-partition graph work takes seconds while a message takes
/// microseconds, so one work unit (an edge relaxation / gain evaluation /
/// base comparison) costs 1 unit and a message only a few units of latency.
/// Experiments that want to study communication pressure can raise
/// `msg_latency` explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Virtual time per abstract work unit.
    pub per_work_unit: f64,
    /// Virtual time per message (latency).
    pub msg_latency: f64,
    /// Virtual time per transferred byte (inverse bandwidth).
    pub msg_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel { per_work_unit: 1.0, msg_latency: 5.0, msg_per_byte: 0.002 }
    }
}

/// Timing of one parallel phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTiming {
    /// Virtual makespan of the phase (time from phase start to last rank
    /// finishing, including message costs).
    pub makespan: f64,
    /// Sum of all ranks' busy time (serial-equivalent work).
    pub total_work_time: f64,
    /// Number of scheduled tasks.
    pub tasks: usize,
}

impl PhaseTiming {
    /// Parallel efficiency: serial time / (ranks × makespan) is not derivable
    /// without rank count, so this exposes the speedup vs. serial execution.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.makespan <= 0.0 {
            1.0
        } else {
            self.total_work_time / self.makespan
        }
    }
}

/// A deterministic simulated cluster of `ranks` workers.
///
/// Tasks are list-scheduled in submission order onto the least-loaded rank —
/// the same greedy assignment an MPI master handing out partitions performs.
/// `barrier` synchronises all clocks, modelling a collective.
#[derive(Debug, Clone)]
pub struct SimCluster {
    clocks: Vec<f64>,
    cost: CostModel,
    messages: u64,
    bytes: u64,
}

impl SimCluster {
    /// Creates a cluster with `ranks` workers (≥ 1) and a cost model.
    pub fn new(ranks: usize, cost: CostModel) -> SimCluster {
        assert!(ranks >= 1, "cluster needs at least one rank");
        SimCluster { clocks: vec![0.0; ranks], cost, messages: 0, bytes: 0 }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.clocks.len()
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Total messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Current virtual time (the furthest rank clock).
    pub fn now(&self) -> f64 {
        self.clocks.iter().cloned().fold(0.0, f64::max)
    }

    /// Synchronises all ranks to the current virtual time (a collective).
    pub fn barrier(&mut self) {
        let now = self.now();
        for c in &mut self.clocks {
            *c = now;
        }
    }

    /// Runs one parallel phase: `work[i]` abstract work units per task,
    /// list-scheduled in order onto the least-loaded rank. A barrier is
    /// implied before the phase starts. Returns the phase timing.
    pub fn run_phase(&mut self, work: &[u64]) -> PhaseTiming {
        self.barrier();
        let start = self.now();
        for &w in work {
            let rank = self.least_loaded();
            self.clocks[rank] += w as f64 * self.cost.per_work_unit;
        }
        let makespan = self.now() - start;
        let total: f64 = work.iter().map(|&w| w as f64 * self.cost.per_work_unit).sum();
        PhaseTiming { makespan, total_work_time: total, tasks: work.len() }
    }

    /// Charges a message of `bytes` payload from `from`; the receiving side
    /// is the master (rank 0 convention), whose clock also advances.
    pub fn send_to_master(&mut self, from: usize, bytes: u64) {
        assert!(from < self.clocks.len());
        let cost = self.cost.msg_latency + bytes as f64 * self.cost.msg_per_byte;
        self.clocks[from] += cost;
        // The master cannot finish receiving before the sender finished
        // sending.
        self.clocks[0] = f64::max(self.clocks[0] + cost, self.clocks[from]);
        self.messages += 1;
        self.bytes += bytes;
    }

    /// Charges serial master-side work (e.g. applying recorded removals).
    pub fn master_work(&mut self, work: u64) {
        self.clocks[0] += work as f64 * self.cost.per_work_unit;
    }

    /// Charges a tree-structured gather of one payload per rank to the
    /// master (how MPI implements `MPI_Gatherv`): every rank pays one
    /// message latency plus its payload; the master pays `⌈log2(ranks)⌉`
    /// latencies plus the total payload, and cannot finish before the
    /// slowest sender.
    pub fn gather_to_master(&mut self, payloads: &[u64]) {
        assert_eq!(payloads.len(), self.clocks.len(), "one payload per rank");
        let mut slowest_sender: f64 = 0.0;
        let mut total_bytes = 0u64;
        for (rank, &bytes) in payloads.iter().enumerate() {
            let cost = self.cost.msg_latency + bytes as f64 * self.cost.msg_per_byte;
            self.clocks[rank] += cost;
            slowest_sender = slowest_sender.max(self.clocks[rank]);
            total_bytes += bytes;
            self.messages += 1;
            self.bytes += bytes;
        }
        let depth = (self.clocks.len().max(2) as f64).log2().ceil();
        let master_cost =
            depth * self.cost.msg_latency + total_bytes as f64 * self.cost.msg_per_byte;
        self.clocks[0] = f64::max(self.clocks[0] + master_cost, slowest_sender);
    }

    fn least_loaded(&self) -> usize {
        let mut best = 0usize;
        for (i, &c) in self.clocks.iter().enumerate().skip(1) {
            if c < self.clocks[best] {
                best = i;
            }
        }
        best
    }
}

/// List-schedules a sequence of barrier-separated phases (each a slice of
/// task works) onto `ranks` processors and returns the total virtual
/// makespan. Used to replay the partitioner's task log (Fig. 4/5).
pub fn schedule_phases(phases: &[Vec<u64>], ranks: usize, cost: CostModel) -> f64 {
    let mut cluster = SimCluster::new(ranks, cost);
    for phase in phases {
        cluster.run_phase(phase);
    }
    cluster.barrier();
    cluster.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_cost() -> CostModel {
        CostModel { per_work_unit: 1.0, msg_latency: 0.0, msg_per_byte: 0.0 }
    }

    #[test]
    fn single_rank_serialises_everything() {
        let mut c = SimCluster::new(1, flat_cost());
        let t = c.run_phase(&[10, 20, 30]);
        assert_eq!(t.makespan, 60.0);
        assert_eq!(t.total_work_time, 60.0);
        assert_eq!(c.now(), 60.0);
    }

    #[test]
    fn equal_tasks_split_perfectly() {
        let mut c = SimCluster::new(4, flat_cost());
        let t = c.run_phase(&[10; 8]);
        assert_eq!(t.makespan, 20.0);
        assert!((t.speedup_vs_serial() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_bounded_by_longest_task() {
        let mut c = SimCluster::new(8, flat_cost());
        let t = c.run_phase(&[100, 1, 1, 1]);
        assert_eq!(t.makespan, 100.0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut c = SimCluster::new(2, flat_cost());
        c.run_phase(&[10]);
        c.barrier();
        let t = c.run_phase(&[5]);
        assert_eq!(t.makespan, 5.0);
        assert_eq!(c.now(), 15.0);
    }

    #[test]
    fn messages_charge_latency_and_bandwidth() {
        let cost = CostModel { per_work_unit: 1.0, msg_latency: 100.0, msg_per_byte: 0.5 };
        let mut c = SimCluster::new(2, cost);
        c.send_to_master(1, 200);
        assert_eq!(c.messages(), 1);
        assert_eq!(c.bytes(), 200);
        assert_eq!(c.now(), 200.0); // 100 + 200*0.5
    }

    #[test]
    fn more_ranks_never_slower() {
        let phases = vec![vec![7, 13, 4, 9, 22, 5, 16, 8]];
        let mut last = f64::INFINITY;
        for ranks in 1..=8 {
            let t = schedule_phases(&phases, ranks, flat_cost());
            assert!(t <= last + 1e-9, "ranks {ranks} slower: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn speedup_saturates_at_task_parallelism() {
        // 4 equal tasks: speedup caps at 4 regardless of rank count.
        let phases = vec![vec![50; 4]];
        let t1 = schedule_phases(&phases, 1, flat_cost());
        let t4 = schedule_phases(&phases, 4, flat_cost());
        let t16 = schedule_phases(&phases, 16, flat_cost());
        assert_eq!(t1 / t4, 4.0);
        assert_eq!(t4, t16);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = SimCluster::new(0, CostModel::default());
    }
}
