//! The simulated cluster: virtual rank clocks, cost model, scheduling, and
//! fault-aware execution (crashes, drops, delays, stragglers) driven by a
//! deterministic [`FaultPlan`].

use crate::error::DistError;
use crate::fault::{FaultPlan, FaultReport, PhaseId, RetryPolicy};

/// Converts abstract work and message counts into virtual time.
///
/// Units are arbitrary ("virtual microseconds"); every experiment reports
/// ratios (speedup) or relative comparisons, so only the *relative*
/// magnitudes matter. The defaults reflect the regime the paper measures
/// in: per-partition graph work takes seconds while a message takes
/// microseconds, so one work unit (an edge relaxation / gain evaluation /
/// base comparison) costs 1 unit and a message only a few units of latency.
/// Experiments that want to study communication pressure can raise
/// `msg_latency` explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Virtual time per abstract work unit.
    pub per_work_unit: f64,
    /// Virtual time per message (latency).
    pub msg_latency: f64,
    /// Virtual time per transferred byte (inverse bandwidth).
    pub msg_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            per_work_unit: 1.0,
            msg_latency: 5.0,
            msg_per_byte: 0.002,
        }
    }
}

/// Timing of one parallel phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTiming {
    /// Virtual makespan of the phase (time from phase start to last rank
    /// finishing, including message costs).
    pub makespan: f64,
    /// Sum of all ranks' busy time (serial-equivalent work).
    pub total_work_time: f64,
    /// Number of scheduled tasks.
    pub tasks: usize,
}

impl PhaseTiming {
    /// Parallel efficiency: serial time / (ranks × makespan) is not derivable
    /// without rank count, so this exposes the speedup vs. serial execution.
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.makespan <= 0.0 {
            1.0
        } else {
            self.total_work_time / self.makespan
        }
    }
}

impl fc_ckpt::Codec for PhaseTiming {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_f64(self.makespan);
        w.put_f64(self.total_work_time);
        self.tasks.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<PhaseTiming, fc_ckpt::CkptError> {
        Ok(PhaseTiming {
            makespan: r.f64()?,
            total_work_time: r.f64()?,
            tasks: usize::decode(r)?,
        })
    }
}

/// Snapshot of a [`SimCluster`]'s mutable progress: virtual clocks,
/// liveness, message counters and the fault report.
///
/// The cost model, fault plan and retry policy are deliberately *not* part
/// of the snapshot — they are pure functions of the run configuration and
/// are rebuilt from it on resume, which also guarantees that phases skipped
/// on resume never re-consume their fault events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterState {
    /// Virtual clock of every rank.
    pub clocks: Vec<f64>,
    /// Liveness of every rank.
    pub alive: Vec<bool>,
    /// Total messages sent so far.
    pub messages: u64,
    /// Total bytes sent so far.
    pub bytes: u64,
    /// Fault counters accumulated so far.
    pub fault: FaultReport,
}

impl fc_ckpt::Codec for ClusterState {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.clocks.encode(w);
        self.alive.encode(w);
        w.put_u64(self.messages);
        w.put_u64(self.bytes);
        self.fault.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<ClusterState, fc_ckpt::CkptError> {
        let clocks = Vec::<f64>::decode(r)?;
        let alive = Vec::<bool>::decode(r)?;
        if alive.len() != clocks.len() {
            return Err(fc_ckpt::CkptError::Decode {
                detail: format!(
                    "cluster state has {} clocks but {} liveness flags",
                    clocks.len(),
                    alive.len()
                ),
            });
        }
        Ok(ClusterState {
            clocks,
            alive,
            messages: r.u64()?,
            bytes: r.u64()?,
            fault: FaultReport::decode(r)?,
        })
    }
}

/// Typed outcome of one fault-aware parallel phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseOutcome {
    /// Timing of the compute part of the phase.
    pub timing: PhaseTiming,
    /// Indices (into the submitted task list) whose results were lost to a
    /// rank crash and must be re-executed by the recovery layer.
    pub lost: Vec<usize>,
    /// Ranks that died during this phase.
    pub crashed: Vec<usize>,
    /// Ranks whose work was speculatively re-executed on a backup because
    /// they straggled past `straggler_factor ×` the median rank time.
    pub speculated: Vec<usize>,
}

/// Typed outcome of one (possibly retransmitted) result transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The payload reached the master after `attempts` sends.
    Delivered {
        /// Total transmission attempts (1 = no retry needed).
        attempts: u32,
    },
    /// Every attempt up to [`RetryPolicy::max_attempts`] was dropped; the
    /// master presumes the sender dead and the payload lost.
    Lost {
        /// Attempts made (= `max_attempts`).
        attempts: u32,
    },
}

impl SendOutcome {
    /// True when the payload arrived.
    pub fn delivered(&self) -> bool {
        matches!(self, SendOutcome::Delivered { .. })
    }
}

/// A deterministic simulated cluster of `ranks` workers.
///
/// Tasks are list-scheduled in submission order onto the least-loaded rank —
/// the same greedy assignment an MPI master handing out partitions performs.
/// `barrier` synchronises all clocks, modelling a collective.
///
/// A cluster built with [`SimCluster::with_faults`] additionally consumes a
/// [`FaultPlan`]: ranks crash mid-phase, messages drop (and are
/// retransmitted with exponential backoff under the [`RetryPolicy`]), links
/// stall and stragglers get speculatively re-executed. Everything — drops,
/// waits, recovery charges — is charged in virtual time, and the whole run
/// is a pure function of `(plan, policy, inputs)`.
#[derive(Debug, Clone)]
pub struct SimCluster {
    clocks: Vec<f64>,
    alive: Vec<bool>,
    cost: CostModel,
    messages: u64,
    bytes: u64,
    plan: FaultPlan,
    retry: RetryPolicy,
    fault: FaultReport,
}

impl SimCluster {
    /// Creates a fault-free cluster with `ranks` workers (≥ 1).
    pub fn new(ranks: usize, cost: CostModel) -> Result<SimCluster, DistError> {
        SimCluster::with_faults(ranks, cost, FaultPlan::none(), RetryPolicy::default())
    }

    /// Creates a cluster that executes under a fault-injection plan.
    pub fn with_faults(
        ranks: usize,
        cost: CostModel,
        plan: FaultPlan,
        retry: RetryPolicy,
    ) -> Result<SimCluster, DistError> {
        if ranks == 0 {
            return Err(DistError::NoRanks);
        }
        retry.validate()?;
        Ok(SimCluster {
            clocks: vec![0.0; ranks],
            alive: vec![true; ranks],
            cost,
            messages: 0,
            bytes: 0,
            plan,
            retry,
            fault: FaultReport::default(),
        })
    }

    /// Number of ranks (dead ones included).
    pub fn ranks(&self) -> usize {
        self.clocks.len()
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The retry/backoff/speculation policy in use.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The fault-injection plan being consumed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Fault counters accumulated so far.
    pub fn fault_report(&self) -> &FaultReport {
        &self.fault
    }

    /// Total messages sent so far (retransmissions included).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total bytes sent so far (retransmissions included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Is `rank` still alive?
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank]
    }

    /// Number of live ranks.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Live rank ids in ascending order.
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.ranks()).filter(|&r| self.alive[r]).collect()
    }

    /// Marks `rank` dead (idempotent). Its clock freezes; the crash is
    /// counted and the run flagged degraded.
    pub fn kill(&mut self, rank: usize) {
        if self.alive[rank] {
            self.alive[rank] = false;
            self.fault.crashes += 1;
            self.fault.degraded = true;
        }
    }

    /// Virtual clock of one rank.
    pub fn clock(&self, rank: usize) -> f64 {
        self.clocks[rank]
    }

    /// Advances `rank`'s clock to at least `t` (a wait).
    pub fn advance_to(&mut self, rank: usize, t: f64) {
        if self.clocks[rank] < t {
            self.clocks[rank] = t;
        }
    }

    /// Charges `work` abstract units of compute to `rank`.
    pub fn charge_work(&mut self, rank: usize, work: u64) {
        self.clocks[rank] += work as f64 * self.cost.per_work_unit;
    }

    /// Adds recovery-attributed virtual time to the fault counters.
    pub(crate) fn note_recovery_time(&mut self, dt: f64) {
        self.fault.recovery_time += dt;
    }

    /// Current virtual time: the furthest clock among live ranks and the
    /// master (rank 0's clock carries master-side costs even if its worker
    /// process died).
    pub fn now(&self) -> f64 {
        let mut t = self.clocks[0];
        for r in 1..self.ranks() {
            if self.alive[r] {
                t = t.max(self.clocks[r]);
            }
        }
        t
    }

    /// Synchronises live ranks (and the master clock) to the current
    /// virtual time — a collective. Dead ranks stay frozen.
    pub fn barrier(&mut self) {
        let now = self.now();
        for r in 0..self.ranks() {
            if self.alive[r] || r == 0 {
                self.clocks[r] = now;
            }
        }
    }

    /// Runs one fault-free parallel phase: `work[i]` abstract work units per
    /// task, list-scheduled in order onto the least-loaded live rank. A
    /// barrier is implied before the phase starts. Returns the phase timing.
    ///
    /// This is the replay path for pre-recorded task logs (Figs. 4/5); the
    /// distributed pipeline itself goes through [`SimCluster::run_phase_faulty`].
    pub fn run_phase(&mut self, work: &[u64]) -> PhaseTiming {
        self.barrier();
        let start = self.now();
        for &w in work {
            let rank = self.least_loaded_alive(None).unwrap_or(0);
            self.clocks[rank] += w as f64 * self.cost.per_work_unit;
        }
        let makespan = self.now() - start;
        let total: f64 = work
            .iter()
            .map(|&w| w as f64 * self.cost.per_work_unit)
            .sum();
        PhaseTiming {
            makespan,
            total_work_time: total,
            tasks: work.len(),
        }
    }

    /// Runs one parallel phase under the fault plan. `tasks[i] = (rank, w)`
    /// pins task `i` to an executor rank with `w` abstract work units (the
    /// master's partition→rank assignment is made by the recovery layer).
    ///
    /// Injected behaviour, all deterministic:
    /// * a rank scheduled to crash dies midway through its first task of the
    ///   phase — half the task's time is charged, all of the rank's tasks
    ///   this phase are reported in [`PhaseOutcome::lost`];
    /// * a straggling rank (slowdown factor from the plan) whose busy time
    ///   exceeds `straggler_factor ×` the median is speculatively
    ///   re-executed on the least-loaded other live rank; whichever copy
    ///   finishes first wins and the loser is cancelled.
    pub fn run_phase_faulty(&mut self, phase: PhaseId, tasks: &[(usize, u64)]) -> PhaseOutcome {
        self.barrier();
        let start = self.now();
        let mut total_work_time = 0.0;
        let mut lost = Vec::new();
        let mut crashed = Vec::new();

        // Nominal (unstraggled) per-rank compute time, for speculation.
        let mut nominal: Vec<f64> = vec![0.0; self.ranks()];
        // Charge compute, applying slowdowns and crashes.
        for (i, &(rank, w)) in tasks.iter().enumerate() {
            if !self.alive[rank] {
                lost.push(i);
                continue;
            }
            let slow = self.plan.straggle_factor_at(phase, rank);
            let t = w as f64 * self.cost.per_work_unit * slow;
            if self.plan.crash_at(phase, rank) {
                // Dies midway through its first task; everything the rank
                // computed this phase is lost with its memory.
                self.clocks[rank] += 0.5 * t;
                total_work_time += 0.5 * t;
                self.kill(rank);
                crashed.push(rank);
                lost.push(i);
                // Later tasks pinned to this rank fall into the `!alive`
                // arm above and are reported lost without being charged.
                continue;
            }
            self.clocks[rank] += t;
            nominal[rank] += w as f64 * self.cost.per_work_unit;
            total_work_time += t;
        }

        // Straggler speculation: compare live ranks' busy times against the
        // median; launch a backup copy for anyone beyond the threshold.
        let mut speculated = Vec::new();
        let mut busy: Vec<(usize, f64)> = (0..self.ranks())
            .filter(|&r| self.alive[r] && self.clocks[r] > start)
            .map(|r| (r, self.clocks[r] - start))
            .collect();
        if busy.len() >= 2 {
            let mut times: Vec<f64> = busy.iter().map(|&(_, t)| t).collect();
            times.sort_by(|a, b| a.total_cmp(b));
            let median = times[(times.len() - 1) / 2];
            let threshold = self.retry.straggler_factor * median;
            busy.sort_by_key(|&(r, _)| r);
            for (rank, t) in busy {
                if median <= 0.0 || t <= threshold {
                    continue;
                }
                let Some(backup) = self.least_loaded_alive(Some(rank)) else {
                    continue;
                };
                // The master notices the straggler at the threshold and
                // relaunches its tasks, at nominal speed, on the backup.
                let backup_start = self.clocks[backup].max(start + threshold);
                let backup_finish = backup_start + nominal[rank];
                if backup_finish < self.clocks[rank] {
                    self.clocks[backup] = backup_finish;
                    // The straggler's copy is cancelled: it stops burning
                    // virtual time the moment the backup's result lands.
                    self.clocks[rank] = backup_finish;
                    self.fault.speculative_reexecutions += 1;
                    self.fault.recovery_time += nominal[rank];
                    total_work_time += nominal[rank];
                    speculated.push(rank);
                }
            }
        }

        let makespan = self.now() - start;
        PhaseOutcome {
            timing: PhaseTiming {
                makespan,
                total_work_time,
                tasks: tasks.len(),
            },
            lost,
            crashed,
            speculated,
        }
    }

    /// Transmits a result payload from `sender` to the master under the
    /// fault plan: scheduled drops consume transmission attempts, each
    /// failed attempt waits an exponential-backoff delay, and link delays
    /// multiply the per-message cost. Every attempt (delivered or not) is
    /// charged to the sender's clock and counted in `messages`/`bytes`;
    /// only a delivered attempt advances the master.
    pub fn transmit_to_master(
        &mut self,
        phase: PhaseId,
        sender: usize,
        payload: u64,
    ) -> SendOutcome {
        let drops = self.plan.drops_at(phase, sender);
        let delay = self.plan.delay_factor_at(phase, sender);
        let per_attempt = (self.cost.msg_latency + payload as f64 * self.cost.msg_per_byte) * delay;
        let max_attempts = self.retry.max_attempts;
        for attempt in 1..=max_attempts {
            self.clocks[sender] += per_attempt;
            self.messages += 1;
            self.bytes += payload;
            if attempt <= drops {
                // Dropped in flight: back off, then retransmit.
                self.fault.retries += 1;
                self.fault.retransmitted_bytes += payload;
                let wait = self.retry.backoff_delay(attempt);
                self.clocks[sender] += wait;
                self.fault.recovery_time += wait;
                continue;
            }
            self.clocks[0] = f64::max(self.clocks[0] + per_attempt, self.clocks[sender]);
            return SendOutcome::Delivered { attempts: attempt };
        }
        SendOutcome::Lost {
            attempts: max_attempts,
        }
    }

    /// Charges a message of `bytes` payload from `from`; the receiving side
    /// is the master (rank 0 convention), whose clock also advances.
    pub fn send_to_master(&mut self, from: usize, bytes: u64) {
        assert!(from < self.clocks.len());
        let cost = self.cost.msg_latency + bytes as f64 * self.cost.msg_per_byte;
        self.clocks[from] += cost;
        // The master cannot finish receiving before the sender finished
        // sending.
        self.clocks[0] = f64::max(self.clocks[0] + cost, self.clocks[from]);
        self.messages += 1;
        self.bytes += bytes;
    }

    /// Charges serial master-side work (e.g. applying recorded removals).
    pub fn master_work(&mut self, work: u64) {
        self.clocks[0] += work as f64 * self.cost.per_work_unit;
    }

    /// Charges a tree-structured gather of one payload per rank to the
    /// master (how MPI implements `MPI_Gatherv`): every rank pays one
    /// message latency plus its payload; the master pays `⌈log2(ranks)⌉`
    /// latencies plus the total payload, and cannot finish before the
    /// slowest sender.
    pub fn gather_to_master(&mut self, payloads: &[u64]) {
        assert_eq!(payloads.len(), self.clocks.len(), "one payload per rank");
        let mut slowest_sender: f64 = 0.0;
        let mut total_bytes = 0u64;
        for (rank, &bytes) in payloads.iter().enumerate() {
            let cost = self.cost.msg_latency + bytes as f64 * self.cost.msg_per_byte;
            self.clocks[rank] += cost;
            slowest_sender = slowest_sender.max(self.clocks[rank]);
            total_bytes += bytes;
            self.messages += 1;
            self.bytes += bytes;
        }
        let depth = (self.clocks.len().max(2) as f64).log2().ceil();
        let master_cost =
            depth * self.cost.msg_latency + total_bytes as f64 * self.cost.msg_per_byte;
        self.clocks[0] = f64::max(self.clocks[0] + master_cost, slowest_sender);
    }

    /// Snapshots the cluster's mutable progress for a checkpoint. See
    /// [`ClusterState`] for what is (and is not) captured.
    pub fn export_state(&self) -> ClusterState {
        ClusterState {
            clocks: self.clocks.clone(),
            alive: self.alive.clone(),
            messages: self.messages,
            bytes: self.bytes,
            fault: self.fault.clone(),
        }
    }

    /// Restores progress captured by [`SimCluster::export_state`] into a
    /// freshly constructed cluster (same rank count). Returns an error when
    /// the snapshot's rank count disagrees with this cluster's.
    pub fn restore_state(&mut self, state: &ClusterState) -> Result<(), DistError> {
        if state.clocks.len() != self.ranks() {
            return Err(DistError::InvalidCheckpoint(format!(
                "snapshot has {} ranks, cluster has {}",
                state.clocks.len(),
                self.ranks()
            )));
        }
        self.clocks = state.clocks.clone();
        self.alive = state.alive.clone();
        self.messages = state.messages;
        self.bytes = state.bytes;
        self.fault = state.fault.clone();
        Ok(())
    }

    /// Least-loaded live rank, optionally excluding one; ties break toward
    /// the lowest rank id. `None` when no live rank qualifies.
    pub fn least_loaded_alive(&self, exclude: Option<usize>) -> Option<usize> {
        let mut best: Option<usize> = None;
        for r in 0..self.ranks() {
            if !self.alive[r] || Some(r) == exclude {
                continue;
            }
            match best {
                Some(b) if self.clocks[r] >= self.clocks[b] => {}
                _ => best = Some(r),
            }
        }
        best
    }
}

/// List-schedules a sequence of barrier-separated phases (each a slice of
/// task works) onto `ranks` processors and returns the total virtual
/// makespan. Used to replay the partitioner's task log (Fig. 4/5). Zero
/// ranks means the work can never finish, reported as an infinite makespan.
pub fn schedule_phases(phases: &[Vec<u64>], ranks: usize, cost: CostModel) -> f64 {
    let Ok(mut cluster) = SimCluster::new(ranks, cost) else {
        return f64::INFINITY;
    };
    for phase in phases {
        cluster.run_phase(phase);
    }
    cluster.barrier();
    cluster.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_cost() -> CostModel {
        CostModel {
            per_work_unit: 1.0,
            msg_latency: 0.0,
            msg_per_byte: 0.0,
        }
    }

    #[test]
    fn single_rank_serialises_everything() {
        let mut c = SimCluster::new(1, flat_cost()).unwrap();
        let t = c.run_phase(&[10, 20, 30]);
        assert_eq!(t.makespan, 60.0);
        assert_eq!(t.total_work_time, 60.0);
        assert_eq!(c.now(), 60.0);
    }

    #[test]
    fn equal_tasks_split_perfectly() {
        let mut c = SimCluster::new(4, flat_cost()).unwrap();
        let t = c.run_phase(&[10; 8]);
        assert_eq!(t.makespan, 20.0);
        assert!((t.speedup_vs_serial() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_bounded_by_longest_task() {
        let mut c = SimCluster::new(8, flat_cost()).unwrap();
        let t = c.run_phase(&[100, 1, 1, 1]);
        assert_eq!(t.makespan, 100.0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let mut c = SimCluster::new(2, flat_cost()).unwrap();
        c.run_phase(&[10]);
        c.barrier();
        let t = c.run_phase(&[5]);
        assert_eq!(t.makespan, 5.0);
        assert_eq!(c.now(), 15.0);
    }

    #[test]
    fn messages_charge_latency_and_bandwidth() {
        let cost = CostModel {
            per_work_unit: 1.0,
            msg_latency: 100.0,
            msg_per_byte: 0.5,
        };
        let mut c = SimCluster::new(2, cost).unwrap();
        c.send_to_master(1, 200);
        assert_eq!(c.messages(), 1);
        assert_eq!(c.bytes(), 200);
        assert_eq!(c.now(), 200.0); // 100 + 200*0.5
    }

    #[test]
    fn more_ranks_never_slower() {
        let phases = vec![vec![7, 13, 4, 9, 22, 5, 16, 8]];
        let mut last = f64::INFINITY;
        for ranks in 1..=8 {
            let t = schedule_phases(&phases, ranks, flat_cost());
            assert!(t <= last + 1e-9, "ranks {ranks} slower: {t} > {last}");
            last = t;
        }
    }

    #[test]
    fn speedup_saturates_at_task_parallelism() {
        // 4 equal tasks: speedup caps at 4 regardless of rank count.
        let phases = vec![vec![50; 4]];
        let t1 = schedule_phases(&phases, 1, flat_cost());
        let t4 = schedule_phases(&phases, 4, flat_cost());
        let t16 = schedule_phases(&phases, 16, flat_cost());
        assert_eq!(t1 / t4, 4.0);
        assert_eq!(t4, t16);
    }

    #[test]
    fn zero_ranks_rejected_with_typed_error() {
        assert_eq!(
            SimCluster::new(0, CostModel::default()).unwrap_err(),
            DistError::NoRanks
        );
    }

    #[test]
    fn invalid_retry_policy_rejected() {
        let bad = RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        };
        assert!(matches!(
            SimCluster::with_faults(2, CostModel::default(), FaultPlan::none(), bad),
            Err(DistError::InvalidRetryPolicy(_))
        ));
    }

    #[test]
    fn crash_loses_rank_tasks_and_freezes_clock() {
        let plan = FaultPlan::single_crash(PhaseId::TransitiveReduction, 1);
        let mut c = SimCluster::with_faults(2, flat_cost(), plan, RetryPolicy::default()).unwrap();
        let out = c.run_phase_faulty(PhaseId::TransitiveReduction, &[(0, 10), (1, 20)]);
        assert_eq!(out.lost, vec![1]);
        assert_eq!(out.crashed, vec![1]);
        assert!(!c.is_alive(1));
        assert_eq!(c.alive_count(), 1);
        // The crashed rank burned half its task before dying.
        assert_eq!(c.clock(1), 10.0);
        assert_eq!(c.fault_report().crashes, 1);
        assert!(c.fault_report().degraded);
        // A second phase never schedules on the corpse.
        let out = c.run_phase_faulty(PhaseId::ContainmentRemoval, &[(1, 5)]);
        assert_eq!(out.lost, vec![0]);
        assert!(out.crashed.is_empty(), "a dead rank cannot crash again");
        assert_eq!(c.fault_report().crashes, 1);
    }

    #[test]
    fn retransmissions_match_drop_count_and_backoff_charges_time() {
        // Hand-computed expectation: latency 100, no bandwidth cost, two
        // drops, backoff base 50 doubling uncapped. Sender timeline:
        //   attempt 1 (100) + backoff 50 + attempt 2 (100) + backoff 100
        //   + attempt 3 (100) = 450.
        let cost = CostModel {
            per_work_unit: 1.0,
            msg_latency: 100.0,
            msg_per_byte: 0.0,
        };
        let plan = FaultPlan::message_drops(PhaseId::Traversal, 1, 2);
        let retry = RetryPolicy {
            max_attempts: 4,
            backoff_base: 50.0,
            backoff_cap: 1000.0,
            ..Default::default()
        };
        let mut c = SimCluster::with_faults(2, cost, plan, retry).unwrap();
        let out = c.transmit_to_master(PhaseId::Traversal, 1, 0);
        assert_eq!(out, SendOutcome::Delivered { attempts: 3 });
        assert_eq!(c.fault_report().retries, 2);
        assert_eq!(c.clock(1), 450.0);
        assert_eq!(c.now(), 450.0); // master waits for the sender
        assert_eq!(c.messages(), 3);
        // Backoff waits are attributed to recovery time.
        assert_eq!(c.fault_report().recovery_time, 150.0);
    }

    #[test]
    fn drop_exhaustion_reports_lost_send() {
        let plan = FaultPlan::message_drops(PhaseId::Traversal, 0, 99);
        let retry = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        let mut c = SimCluster::with_faults(1, CostModel::default(), plan, retry).unwrap();
        let out = c.transmit_to_master(PhaseId::Traversal, 0, 8);
        assert_eq!(out, SendOutcome::Lost { attempts: 3 });
        // retries = min(N, max_attempts): every attempt was dropped.
        assert_eq!(c.fault_report().retries, 3);
        assert_eq!(c.fault_report().retransmitted_bytes, 24);
    }

    #[test]
    fn retransmitted_bytes_counted_per_drop() {
        let plan = FaultPlan::message_drops(PhaseId::ErrorRemoval, 1, 1);
        let mut c =
            SimCluster::with_faults(2, CostModel::default(), plan, RetryPolicy::default()).unwrap();
        let out = c.transmit_to_master(PhaseId::ErrorRemoval, 1, 100);
        assert_eq!(out, SendOutcome::Delivered { attempts: 2 });
        assert_eq!(c.fault_report().retransmitted_bytes, 100);
        assert_eq!(c.bytes(), 200); // both attempts hit the wire
    }

    #[test]
    fn straggler_is_speculatively_reexecuted() {
        use crate::fault::{FaultEvent, FaultKind};
        // Rank 1 is slowed 16×: 10 units of work become 160. The median
        // rank time is 10, the threshold 4 × 10 = 40, so the master starts
        // a backup at t = 40 on the least-loaded other rank, which finishes
        // the nominal 10 units at t = 50 < 160 and wins.
        let plan = FaultPlan::new(vec![FaultEvent {
            phase: PhaseId::ErrorRemoval,
            rank: 1,
            kind: FaultKind::Straggle { factor: 16.0 },
        }]);
        let retry = RetryPolicy {
            straggler_factor: 4.0,
            ..Default::default()
        };
        let mut c = SimCluster::with_faults(3, flat_cost(), plan, retry).unwrap();
        let out = c.run_phase_faulty(PhaseId::ErrorRemoval, &[(0, 10), (1, 10), (2, 10)]);
        assert_eq!(out.speculated, vec![1]);
        assert_eq!(c.fault_report().speculative_reexecutions, 1);
        assert_eq!(out.timing.makespan, 50.0);
        assert_eq!(
            c.clock(1),
            50.0,
            "the cancelled straggler stops at the backup's finish"
        );
    }

    #[test]
    fn mild_straggler_is_left_alone() {
        use crate::fault::{FaultEvent, FaultKind};
        let plan = FaultPlan::new(vec![FaultEvent {
            phase: PhaseId::ErrorRemoval,
            rank: 1,
            kind: FaultKind::Straggle { factor: 2.0 },
        }]);
        let mut c = SimCluster::with_faults(2, flat_cost(), plan, RetryPolicy::default()).unwrap();
        let out = c.run_phase_faulty(PhaseId::ErrorRemoval, &[(0, 10), (1, 10)]);
        assert!(out.speculated.is_empty());
        assert_eq!(out.timing.makespan, 20.0);
    }

    #[test]
    fn delay_events_multiply_message_cost() {
        use crate::fault::{FaultEvent, FaultKind};
        let cost = CostModel {
            per_work_unit: 1.0,
            msg_latency: 10.0,
            msg_per_byte: 0.0,
        };
        let plan = FaultPlan::new(vec![FaultEvent {
            phase: PhaseId::Traversal,
            rank: 1,
            kind: FaultKind::MessageDelay { factor: 4.0 },
        }]);
        let mut c = SimCluster::with_faults(2, cost, plan, RetryPolicy::default()).unwrap();
        c.transmit_to_master(PhaseId::Traversal, 1, 0);
        assert_eq!(c.clock(1), 40.0);
    }

    #[test]
    fn faultless_cluster_has_clean_report() {
        let mut c = SimCluster::new(4, CostModel::default()).unwrap();
        c.run_phase_faulty(
            PhaseId::TransitiveReduction,
            &[(0, 5), (1, 5), (2, 5), (3, 5)],
        );
        for r in 0..4 {
            assert!(c
                .transmit_to_master(PhaseId::TransitiveReduction, r, 16)
                .delivered());
        }
        assert_eq!(*c.fault_report(), FaultReport::default());
    }
}
