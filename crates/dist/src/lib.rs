//! # fc-dist — simulated distributed runtime and distributed graph
//! algorithms (paper §V)
//!
//! The paper runs Focus on an MPI cluster (Crane, 452 nodes). This
//! environment has one physical core, so the distributed substrate is a
//! **deterministic simulated cluster** (see DESIGN.md §2): rank code is the
//! real algorithm, executed rank by rank; every rank carries a virtual clock
//! charged per unit of algorithmic work, and messages are charged
//! latency + bandwidth. Parallel phase times are makespans over the virtual
//! clocks, which preserves exactly what the paper's Figs. 4–6 measure — how
//! work distributes over ranks and where speedup saturates — while being
//! reproducible.
//!
//! * [`cluster`] — virtual clocks, cost model, list scheduling, message
//!   accounting, fault consumption (crashes, drops, delays, stragglers),
//! * [`fault`] — deterministic fault-injection plans and the retry/backoff
//!   policy (seeded, reproducible),
//! * [`error`] — typed errors of the distributed stage,
//! * [`checkpoint`] — phase-boundary checkpoint hooks ([`DistPhaseState`],
//!   the [`DistCheckpoint`] trait) for durable crash/resume,
//! * [`recovery`] — phase-level recovery: reassign dead ranks' partitions
//!   and re-invoke the pure worker scans on survivors,
//! * [`transitive`] — distributed transitive edge reduction (§V-A, Myers),
//! * [`simplify`] — containment removal and false-positive edge removal
//!   (§V-B),
//! * [`error_removal`] — dead-end trimming and bubble popping (§V-C,
//!   Velvet-style),
//! * [`traverse`] — per-partition maximal-path extraction and master-side
//!   sub-path joining (§V-D),
//! * [`driver`] — the full distributed pipeline over a partitioned hybrid
//!   graph, with per-phase virtual timings and a fault report,
//! * [`variants`] — distributed variant detection, the extension the
//!   paper's discussion (§VI-D) proposes as future work.

pub mod checkpoint;
pub mod cluster;
pub mod driver;
pub mod error;
pub mod error_removal;
pub mod fault;
pub mod recovery;
pub mod simplify;
pub mod transitive;
pub mod traverse;
pub mod variants;

/// Deprecated alias of [`error_removal`]. The module was renamed: `errors`
/// collided (up to a plural suffix) with [`error`], the crate's error-type
/// module, and the two were routinely confused in review.
#[deprecated(since = "0.2.0", note = "renamed to `error_removal`")]
pub mod errors {
    pub use crate::error_removal::*;
}

pub use checkpoint::{DistCheckpoint, DistPhaseState, NoCheckpoint};
pub use cluster::{ClusterState, CostModel, PhaseTiming, SimCluster};
pub use driver::{DistributedConfig, DistributedHybrid, DistributedReport};
pub use error::DistError;
pub use recovery::{execute_phase, execute_phase_obs, PhaseExecution};
pub use fault::{FaultKind, FaultPlan, FaultRates, FaultReport, PhaseId, RetryPolicy};
pub use traverse::AssemblyPath;
pub use variants::{detect_variants, Variant, VariantConfig};
