//! Deterministic fault injection for the simulated cluster.
//!
//! Real distributed assemblers treat failure as a first-class concern: ranks
//! crash, messages drop or stall, stragglers dominate makespans. This module
//! describes failures as **data** — a [`FaultPlan`] is a fully deterministic
//! injection schedule keyed by `(phase, rank)` — so every failure scenario is
//! reproducible bit-for-bit in tests and benches. The plan is consumed by
//! [`SimCluster`](crate::cluster::SimCluster) (timing, retries, backoff) and
//! by the [`recovery`](crate::recovery) engine (reassignment and
//! re-execution).
//!
//! The worker algorithms of every pipeline phase are pure functions over
//! `(&graph, nodes)`, so recovery never needs checkpoints: re-running a lost
//! scan on a surviving rank reproduces the lost records exactly. The
//! structural guarantee (asserted by `tests/invariants.rs`) is that any
//! single-rank crash, in any phase, still yields the exact same final path
//! cover as the fault-free run.

use crate::cluster::CostModel;
use crate::error::DistError;

/// The four phases of the distributed pipeline (paper §V), in execution
/// order. Fault events are keyed by phase so a schedule can target e.g. "the
/// trimming phase on rank 2".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseId {
    /// §V-A transitive edge reduction.
    TransitiveReduction,
    /// §V-B containment and false-positive edge removal.
    ContainmentRemoval,
    /// §V-C dead-end trimming and bubble popping.
    ErrorRemoval,
    /// §V-D maximal-path traversal.
    Traversal,
}

impl PhaseId {
    /// All phases in pipeline order.
    pub const ALL: [PhaseId; 4] = [
        PhaseId::TransitiveReduction,
        PhaseId::ContainmentRemoval,
        PhaseId::ErrorRemoval,
        PhaseId::Traversal,
    ];

    /// Stable display name (matches `DistributedReport::phases` labels).
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::TransitiveReduction => "transitive_reduction",
            PhaseId::ContainmentRemoval => "containment_removal",
            PhaseId::ErrorRemoval => "error_removal",
            PhaseId::Traversal => "traversal",
        }
    }

    /// Position in [`PhaseId::ALL`].
    pub fn index(self) -> usize {
        match self {
            PhaseId::TransitiveReduction => 0,
            PhaseId::ContainmentRemoval => 1,
            PhaseId::ErrorRemoval => 2,
            PhaseId::Traversal => 3,
        }
    }
}

/// What goes wrong at a `(phase, rank)` cell of the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The rank dies midway through its first task of the phase. Its
    /// in-memory phase results are lost; the master detects the silence via
    /// the phase timeout and re-runs the lost scans on survivors.
    Crash,
    /// The rank's next `count` result transmissions in this phase are
    /// dropped in flight. Each drop triggers a retransmission after an
    /// exponential-backoff delay, up to [`RetryPolicy::max_attempts`];
    /// exhaustion makes the master presume the sender dead.
    MessageDrop {
        /// Number of consecutive transmissions that vanish.
        count: u32,
    },
    /// Every message the rank sends in this phase costs `factor ×` the
    /// modelled latency + bandwidth time (congested or lossy link).
    MessageDelay {
        /// Multiplier on the per-message virtual cost (≥ 1).
        factor: f64,
    },
    /// The rank computes at `1/factor` speed for this phase (CPU
    /// contention, thermal throttling). Stragglers exceeding
    /// [`RetryPolicy::straggler_factor`] × the median rank time are
    /// speculatively re-executed on the least-loaded survivor.
    Straggle {
        /// Multiplier on the rank's compute time (≥ 1).
        factor: f64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Pipeline phase the fault strikes in.
    pub phase: PhaseId,
    /// Target rank (also the partition it owns at pipeline start).
    pub rank: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault-injection schedule. Identical plans produce
/// bit-identical runs: every injected failure, retry, backoff wait and
/// recovery decision is a pure function of the plan and the input graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: a perfect machine.
    pub fn none() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// A plan from an explicit event list.
    pub fn new(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { events }
    }

    /// Convenience: a single rank crash at `(phase, rank)`.
    pub fn single_crash(phase: PhaseId, rank: usize) -> FaultPlan {
        FaultPlan::new(vec![FaultEvent {
            phase,
            rank,
            kind: FaultKind::Crash,
        }])
    }

    /// Convenience: simultaneous crashes of several ranks in one phase —
    /// the multi-rank failure scenario (correlated power or switch loss
    /// taking out several nodes at once).
    pub fn crashes(phase: PhaseId, ranks: &[usize]) -> FaultPlan {
        FaultPlan::new(
            ranks
                .iter()
                .map(|&rank| FaultEvent {
                    phase,
                    rank,
                    kind: FaultKind::Crash,
                })
                .collect(),
        )
    }

    /// Convenience: `count` consecutive message drops at `(phase, rank)`.
    pub fn message_drops(phase: PhaseId, rank: usize, count: u32) -> FaultPlan {
        FaultPlan::new(vec![FaultEvent {
            phase,
            rank,
            kind: FaultKind::MessageDrop { count },
        }])
    }

    /// Generates a schedule by sampling every `(phase, rank)` cell with the
    /// given per-cell probabilities, using a seeded SplitMix64 stream —
    /// the same `(seed, ranks, rates)` always yields the same plan.
    pub fn random(seed: u64, ranks: usize, rates: &FaultRates) -> FaultPlan {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut events = Vec::new();
        for phase in PhaseId::ALL {
            for rank in 0..ranks {
                if unit(&mut state) < rates.crash {
                    events.push(FaultEvent {
                        phase,
                        rank,
                        kind: FaultKind::Crash,
                    });
                }
                if unit(&mut state) < rates.drop {
                    events.push(FaultEvent {
                        phase,
                        rank,
                        kind: FaultKind::MessageDrop {
                            count: rates.drop_repeats,
                        },
                    });
                }
                if unit(&mut state) < rates.delay {
                    events.push(FaultEvent {
                        phase,
                        rank,
                        kind: FaultKind::MessageDelay {
                            factor: rates.delay_factor,
                        },
                    });
                }
                if unit(&mut state) < rates.straggle {
                    events.push(FaultEvent {
                        phase,
                        rank,
                        kind: FaultKind::Straggle {
                            factor: rates.straggle_factor,
                        },
                    });
                }
            }
        }
        FaultPlan { events }
    }

    /// Appends an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Is a crash scheduled at `(phase, rank)`?
    pub fn crash_at(&self, phase: PhaseId, rank: usize) -> bool {
        self.events
            .iter()
            .any(|e| e.phase == phase && e.rank == rank && matches!(e.kind, FaultKind::Crash))
    }

    /// Scheduled consecutive message drops at `(phase, rank)` (summed over
    /// events targeting the cell).
    pub fn drops_at(&self, phase: PhaseId, rank: usize) -> u32 {
        self.events
            .iter()
            .filter(|e| e.phase == phase && e.rank == rank)
            .map(|e| match e.kind {
                FaultKind::MessageDrop { count } => count,
                _ => 0,
            })
            .sum()
    }

    /// Message-cost multiplier at `(phase, rank)` (product of scheduled
    /// delays; `1.0` when none).
    pub fn delay_factor_at(&self, phase: PhaseId, rank: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.phase == phase && e.rank == rank)
            .map(|e| match e.kind {
                FaultKind::MessageDelay { factor } => factor.max(1.0),
                _ => 1.0,
            })
            .product()
    }

    /// Compute-time multiplier at `(phase, rank)` (product of scheduled
    /// slowdowns; `1.0` when none).
    pub fn straggle_factor_at(&self, phase: PhaseId, rank: usize) -> f64 {
        self.events
            .iter()
            .filter(|e| e.phase == phase && e.rank == rank)
            .map(|e| match e.kind {
                FaultKind::Straggle { factor } => factor.max(1.0),
                _ => 1.0,
            })
            .product()
    }
}

/// Per-cell probabilities for [`FaultPlan::random`]. All probabilities are
/// evaluated independently per `(phase, rank)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a rank crashes in a given phase.
    pub crash: f64,
    /// Probability a rank's result transmission hits a drop burst.
    pub drop: f64,
    /// Length of each drop burst (consecutive lost transmissions).
    pub drop_repeats: u32,
    /// Probability a rank's messages are delayed for a phase.
    pub delay: f64,
    /// Delay multiplier applied when a delay event fires.
    pub delay_factor: f64,
    /// Probability a rank straggles in a given phase.
    pub straggle: f64,
    /// Slowdown multiplier applied when a straggle event fires.
    pub straggle_factor: f64,
}

impl Default for FaultRates {
    fn default() -> FaultRates {
        FaultRates {
            crash: 0.0,
            drop: 0.0,
            drop_repeats: 2,
            delay: 0.0,
            delay_factor: 4.0,
            straggle: 0.0,
            straggle_factor: 8.0,
        }
    }
}

impl FaultRates {
    /// Checks all probabilities lie in `[0, 1]` and factors are ≥ 1.
    pub fn validate(&self) -> Result<(), DistError> {
        for (name, p) in [
            ("crash", self.crash),
            ("drop", self.drop),
            ("delay", self.delay),
            ("straggle", self.straggle),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(DistError::InvalidFaultRates(format!(
                    "{name} probability {p} outside [0, 1]"
                )));
            }
        }
        if self.delay_factor < 1.0 || self.straggle_factor < 1.0 {
            return Err(DistError::InvalidFaultRates(
                "delay/straggle factors must be >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// How the master reacts to failures: retransmission limits, exponential
/// backoff, crash-detection timeouts and straggler speculation. All waits
/// are charged in virtual time, so fault handling shows up in makespans
/// exactly like real latency would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum transmission attempts per message (first send included).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt (virtual time); doubles per
    /// further failure.
    pub backoff_base: f64,
    /// Upper bound on a single backoff wait.
    pub backoff_cap: f64,
    /// Crash-detection timeout as a multiple of the phase's expected
    /// longest rank time (derived from the cost model).
    pub timeout_factor: f64,
    /// A rank is a straggler when its phase time exceeds this multiple of
    /// the median rank time; stragglers are speculatively re-executed.
    pub straggler_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: 10.0,
            backoff_cap: 160.0,
            timeout_factor: 3.0,
            straggler_factor: 4.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff wait after the `attempt`-th failed attempt (1-based):
    /// `min(backoff_base × 2^(attempt-1), backoff_cap)`.
    pub fn backoff_delay(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(62);
        (self.backoff_base * (1u64 << exp) as f64).min(self.backoff_cap)
    }

    /// Virtual time after which the master presumes a silent rank dead,
    /// given the phase's expected longest rank compute time.
    pub fn phase_timeout(&self, expected_rank_time: f64, cost: &CostModel) -> f64 {
        self.timeout_factor * expected_rank_time + cost.msg_latency
    }

    /// Checks the policy is usable.
    pub fn validate(&self) -> Result<(), DistError> {
        let invalid = |m: &str| DistError::InvalidRetryPolicy(m.to_string());
        if self.max_attempts == 0 {
            return Err(invalid("max_attempts must be >= 1"));
        }
        if self.backoff_base < 0.0 || self.backoff_cap < 0.0 {
            return Err(invalid("backoff times must be non-negative"));
        }
        if self.timeout_factor <= 0.0 {
            return Err(invalid("timeout_factor must be positive"));
        }
        if self.straggler_factor <= 1.0 {
            return Err(invalid("straggler_factor must be > 1"));
        }
        Ok(())
    }
}

/// What the fault layer observed during one pipeline run. Deterministic:
/// identical `(plan, policy, input)` triples reproduce identical reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultReport {
    /// Ranks that died (injected crashes plus presumed-dead senders whose
    /// retransmissions were exhausted).
    pub crashes: u32,
    /// Dropped transmissions that triggered a retransmission or exhaustion
    /// (= `min(scheduled drops, max_attempts)` per affected message).
    pub retries: u32,
    /// Payload bytes spent on retransmissions (lost sends).
    pub retransmitted_bytes: u64,
    /// Straggler tasks speculatively re-executed on a backup rank.
    pub speculative_reexecutions: u32,
    /// Virtual time spent on recovery: backoff waits, timeout waits and
    /// re-executed scans.
    pub recovery_time: f64,
    /// True when at least one rank was lost for good — the pipeline
    /// finished on a reduced cluster.
    pub degraded: bool,
}

impl fc_ckpt::Codec for PhaseId {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u32(self.index() as u32);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<PhaseId, fc_ckpt::CkptError> {
        let idx = r.u32()? as usize;
        PhaseId::ALL
            .get(idx)
            .copied()
            .ok_or_else(|| fc_ckpt::CkptError::Decode {
                detail: format!("invalid PhaseId index {idx}"),
            })
    }
}

impl fc_ckpt::Codec for FaultReport {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u32(self.crashes);
        w.put_u32(self.retries);
        w.put_u64(self.retransmitted_bytes);
        w.put_u32(self.speculative_reexecutions);
        w.put_f64(self.recovery_time);
        self.degraded.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<FaultReport, fc_ckpt::CkptError> {
        Ok(FaultReport {
            crashes: r.u32()?,
            retries: r.u32()?,
            retransmitted_bytes: r.u64()?,
            speculative_reexecutions: r.u32()?,
            recovery_time: r.f64()?,
            degraded: bool::decode(r)?,
        })
    }
}

/// SplitMix64 step mapped to `[0, 1)` — the plan generator's only source of
/// randomness, fully determined by the seed.
fn unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_in_seed() {
        let rates = FaultRates {
            crash: 0.3,
            drop: 0.3,
            straggle: 0.2,
            ..Default::default()
        };
        let a = FaultPlan::random(7, 8, &rates);
        let b = FaultPlan::random(7, 8, &rates);
        assert_eq!(a, b);
        let c = FaultPlan::random(8, 8, &rates);
        assert_ne!(a, c, "different seeds should (generically) differ");
    }

    #[test]
    fn rate_zero_yields_empty_plan() {
        let plan = FaultPlan::random(1, 16, &FaultRates::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn rate_one_hits_every_cell() {
        let rates = FaultRates {
            crash: 1.0,
            ..Default::default()
        };
        let plan = FaultPlan::random(3, 4, &rates);
        for phase in PhaseId::ALL {
            for rank in 0..4 {
                assert!(plan.crash_at(phase, rank));
            }
        }
    }

    #[test]
    fn cell_queries_only_match_their_cell() {
        let plan = FaultPlan::message_drops(PhaseId::ErrorRemoval, 2, 3);
        assert_eq!(plan.drops_at(PhaseId::ErrorRemoval, 2), 3);
        assert_eq!(plan.drops_at(PhaseId::ErrorRemoval, 1), 0);
        assert_eq!(plan.drops_at(PhaseId::Traversal, 2), 0);
        assert!(!plan.crash_at(PhaseId::ErrorRemoval, 2));
        assert_eq!(plan.delay_factor_at(PhaseId::ErrorRemoval, 2), 1.0);
    }

    #[test]
    fn factors_compose_multiplicatively() {
        let mut plan = FaultPlan::none();
        plan.push(FaultEvent {
            phase: PhaseId::Traversal,
            rank: 0,
            kind: FaultKind::Straggle { factor: 2.0 },
        });
        plan.push(FaultEvent {
            phase: PhaseId::Traversal,
            rank: 0,
            kind: FaultKind::Straggle { factor: 3.0 },
        });
        assert_eq!(plan.straggle_factor_at(PhaseId::Traversal, 0), 6.0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff_base: 10.0,
            backoff_cap: 35.0,
            ..Default::default()
        };
        assert_eq!(p.backoff_delay(1), 10.0);
        assert_eq!(p.backoff_delay(2), 20.0);
        assert_eq!(p.backoff_delay(3), 35.0); // capped (would be 40)
        assert_eq!(p.backoff_delay(10), 35.0);
    }

    #[test]
    fn policy_and_rates_validation() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RetryPolicy {
            straggler_factor: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FaultRates::default().validate().is_ok());
        assert!(FaultRates {
            crash: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FaultRates {
            delay_factor: 0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(
            PhaseId::ALL.map(PhaseId::name),
            [
                "transitive_reduction",
                "containment_removal",
                "error_removal",
                "traversal",
            ]
        );
        for (i, p) in PhaseId::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
