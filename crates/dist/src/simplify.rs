//! Containment removal and false-positive edge removal (paper §V-B).
//!
//! Workers re-examine their partition's nodes against neighboring contigs:
//! a contig fully contained in a neighbor's contig is redundant and its node
//! is recorded for removal; an edge whose verified contig overlap is shorter
//! than 50 bp is a false positive and is recorded for removal. The master
//! applies both removal sets.

use fc_graph::{DiGraph, NodeId};
use fc_seq::DnaString;

/// Minimum verified contig overlap (bases); below this an edge is a false
/// positive (paper: 50 bp).
pub const MIN_CONTIG_OVERLAP: u32 = 50;

/// Minimum identity of the compared overlap region for an edge to survive.
pub const MIN_OVERLAP_IDENTITY: f64 = 0.85;

/// One worker's simplification scan. `contigs[v]` is the contig sequence of
/// hybrid node `v`. Returns `(nodes to remove, edges to remove)`.
pub fn worker_scan(
    g: &DiGraph,
    nodes: &[NodeId],
    contigs: &[DnaString],
    work: &mut u64,
) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
    let mut drop_nodes = Vec::new();
    let mut drop_edges = Vec::new();
    for &v in nodes {
        if g.is_removed(v) {
            continue;
        }
        let v_len = contigs[v as usize].len() as i64;
        let mut contained = false;

        // Containment against successors: edge v -> t places contig(t) at
        // +shift; v is contained in t when t covers v entirely (shift would
        // have to be <= 0, which dovetail edges exclude) — so only check the
        // incoming side: edge u -> v places v at +shift inside u.
        for &u in g.in_neighbors(v) {
            *work += 1;
            let Some(e) = g.edge(u, v) else { continue };
            let u_len = contigs[u as usize].len() as i64;
            if e.shift as i64 + v_len <= u_len {
                // Verify the claim on actual sequence.
                if overlap_identity(
                    &contigs[u as usize],
                    e.shift as usize,
                    &contigs[v as usize],
                    0,
                    v_len as usize,
                    work,
                ) >= MIN_OVERLAP_IDENTITY
                {
                    contained = true;
                    break;
                }
            }
        }
        if contained {
            drop_nodes.push(v);
            continue;
        }

        // False-positive edges: verify each out-edge's overlap region.
        for e in g.out_edges(v) {
            *work += 1;
            let claimed = (v_len - e.shift as i64)
                .min(contigs[e.to as usize].len() as i64)
                .max(0) as u32;
            if claimed < MIN_CONTIG_OVERLAP {
                drop_edges.push((v, e.to));
                continue;
            }
            let identity = overlap_identity(
                &contigs[v as usize],
                e.shift as usize,
                &contigs[e.to as usize],
                0,
                claimed as usize,
                work,
            );
            if identity < MIN_OVERLAP_IDENTITY {
                drop_edges.push((v, e.to));
            }
        }
    }
    (drop_nodes, drop_edges)
}

/// Fraction of matching bases between `a[a_from..a_from+len]` and
/// `b[b_from..b_from+len]` (positional comparison; the overlap regions were
/// already aligned by shift).
fn overlap_identity(
    a: &DnaString,
    a_from: usize,
    b: &DnaString,
    b_from: usize,
    len: usize,
    work: &mut u64,
) -> f64 {
    let len = len
        .min(a.len().saturating_sub(a_from))
        .min(b.len().saturating_sub(b_from));
    if len == 0 {
        return 0.0;
    }
    *work += len as u64;
    let matches = (0..len)
        .filter(|&i| a.get(a_from + i) == b.get(b_from + i))
        .count();
    matches as f64 / len as f64
}

/// Master-side application of recorded removals. Returns
/// `(nodes removed, edges removed)`.
///
/// # Invariants
///
/// Removals are applied idempotently after deduplication: an edge or node
/// recorded by several workers is removed (and counted) once, nodes already
/// removed are skipped, and no other part of the graph is touched. `work`
/// grows by exactly one unit per deduplicated record.
pub fn master_apply(
    g: &mut DiGraph,
    drop_nodes: impl IntoIterator<Item = NodeId>,
    drop_edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    work: &mut u64,
) -> (usize, usize) {
    let mut edges: Vec<(NodeId, NodeId)> = drop_edges.into_iter().collect();
    edges.sort_unstable();
    edges.dedup();
    let mut edges_removed = 0;
    for (v, w) in edges {
        *work += 1;
        if g.remove_edge(v, w) {
            edges_removed += 1;
        }
    }
    let mut nodes: Vec<NodeId> = drop_nodes.into_iter().collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut nodes_removed = 0;
    for v in nodes {
        *work += 1;
        if !g.is_removed(v) {
            g.remove_node(v);
            nodes_removed += 1;
        }
    }
    (nodes_removed, edges_removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_graph::DiEdge;

    fn seq(s: &str) -> DnaString {
        s.parse().unwrap()
    }

    /// Random-ish 200-base sequence.
    fn long_seq() -> DnaString {
        (0..200)
            .map(|i| fc_seq::Base::from_code(((i * 2654435761usize) >> 9) as u8 & 3))
            .collect()
    }

    #[test]
    fn contained_contig_node_removed() {
        let outer = long_seq();
        let inner = outer.slice(40, 160);
        let contigs = vec![outer, inner];
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(
            0,
            DiEdge {
                to: 1,
                len: 120,
                identity: 1.0,
                shift: 40,
            },
        );
        let mut work = 0;
        let (nodes, edges) = worker_scan(&g, &[0, 1], &contigs, &mut work);
        assert_eq!(nodes, vec![1]);
        assert!(edges.is_empty());
        let (nr, _) = master_apply(&mut g, nodes, edges, &mut work);
        assert_eq!(nr, 1);
        assert!(g.is_removed(1));
    }

    #[test]
    fn short_overlap_edge_removed() {
        let a = long_seq();
        let b = long_seq();
        let contigs = vec![a, b];
        let mut g = DiGraph::with_nodes(2);
        // Claims only 30 bases of overlap (< 50): false positive.
        g.add_edge(
            0,
            DiEdge {
                to: 1,
                len: 30,
                identity: 1.0,
                shift: 170,
            },
        );
        let mut work = 0;
        let (nodes, edges) = worker_scan(&g, &[0, 1], &contigs, &mut work);
        assert!(nodes.is_empty());
        assert_eq!(edges, vec![(0, 1)]);
        let (_, er) = master_apply(&mut g, nodes, edges, &mut work);
        assert_eq!(er, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn genuine_overlap_survives() {
        let genome = long_seq();
        let a = genome.slice(0, 140);
        let b = genome.slice(80, 200);
        let contigs = vec![a, b];
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(
            0,
            DiEdge {
                to: 1,
                len: 60,
                identity: 1.0,
                shift: 80,
            },
        );
        let mut work = 0;
        let (nodes, edges) = worker_scan(&g, &[0, 1], &contigs, &mut work);
        assert!(nodes.is_empty(), "unexpected node removals: {nodes:?}");
        assert!(edges.is_empty(), "unexpected edge removals: {edges:?}");
    }

    #[test]
    fn mismatched_overlap_region_removed() {
        // Edge claims a 100-base overlap but the sequences disagree there.
        let a = long_seq();
        let b = a.reverse_complement(); // very different content
        let contigs = vec![a, b];
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(
            0,
            DiEdge {
                to: 1,
                len: 100,
                identity: 1.0,
                shift: 100,
            },
        );
        let mut work = 0;
        let (_, edges) = worker_scan(&g, &[0, 1], &contigs, &mut work);
        assert_eq!(edges, vec![(0, 1)]);
    }

    #[test]
    fn overlap_identity_basics() {
        let mut work = 0;
        let a = seq("ACGTACGT");
        assert_eq!(overlap_identity(&a, 0, &a, 0, 8, &mut work), 1.0);
        let b = seq("ACGAACGA");
        assert_eq!(overlap_identity(&a, 0, &b, 0, 8, &mut work), 0.75);
        assert_eq!(overlap_identity(&a, 8, &b, 0, 4, &mut work), 0.0); // empty
    }
}
