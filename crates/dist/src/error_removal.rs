//! Dead-end path trimming and bubble popping (paper §V-C; techniques from
//! Velvet).
//!
//! Workers explore their own partitions: a **dead end** is a short chain of
//! nodes hanging off a junction and terminating in a tip; a **bubble** is a
//! pair of short unary chains that diverge at one node and reconverge at
//! another, of which the lighter branch is redundant (a sequencing-error
//! variant). Workers record the victim nodes; the master removes them.

use fc_graph::{DiGraph, NodeId};

/// Limits for what counts as a "short" dead end or bubble branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErrorRemovalConfig {
    /// Maximum nodes in a removable dead-end chain.
    pub max_tip_len: usize,
    /// Maximum nodes in one bubble branch.
    pub max_bubble_len: usize,
}

impl Default for ErrorRemovalConfig {
    fn default() -> ErrorRemovalConfig {
        ErrorRemovalConfig {
            max_tip_len: 3,
            max_bubble_len: 6,
        }
    }
}

/// Node weights used to pick a bubble's survivor (read support per node).
pub type NodeSupport<'a> = &'a [u64];

/// One worker's dead-end scan over its partition. A chain is a dead end
/// when it starts at a tip (no in-edges or no out-edges), is unary, has at
/// most `max_tip_len` nodes, and attaches to a junction that retains other
/// continuations (so removal cannot disconnect a real path).
pub fn worker_dead_ends(
    g: &DiGraph,
    nodes: &[NodeId],
    config: &ErrorRemovalConfig,
    work: &mut u64,
) -> Vec<NodeId> {
    let mut recorded = Vec::new();
    for &v in nodes {
        if g.is_removed(v) {
            continue;
        }
        *work += 1;
        // Forward tip: v has no in-edges; walk forward through unary nodes.
        if g.in_degree(v) == 0 && g.out_degree(v) > 0 {
            if let Some(chain) = tip_chain(g, v, Direction::Forward, config.max_tip_len, work) {
                recorded.extend(chain);
            }
        }
        // Backward tip: v has no out-edges; walk backwards.
        if g.out_degree(v) == 0 && g.in_degree(v) > 0 {
            if let Some(chain) = tip_chain(g, v, Direction::Backward, config.max_tip_len, work) {
                recorded.extend(chain);
            }
        }
    }
    recorded
}

enum Direction {
    Forward,
    Backward,
}

/// Walks from tip `v` along unary nodes up to `max_len`; the chain is
/// removable when it reaches a junction carrying a *strictly deeper*
/// alternative branch (the majority branch wins, as in Velvet's tip
/// clipping — a tip as deep as its alternative could be the true sequence,
/// so ties are conservative and keep both).
fn tip_chain(
    g: &DiGraph,
    v: NodeId,
    dir: Direction,
    max_len: usize,
    work: &mut u64,
) -> Option<Vec<NodeId>> {
    let mut chain = vec![v];
    let mut cur = v;
    loop {
        *work += 1;
        let next = match dir {
            Direction::Forward => {
                if g.out_degree(cur) != 1 {
                    return None; // tip ends in a junction/tip itself: not a simple spur
                }
                g.out_edges(cur)[0].to
            }
            Direction::Backward => {
                if g.in_degree(cur) != 1 {
                    return None;
                }
                g.in_neighbors(cur)[0]
            }
        };
        // Did we reach the junction the spur hangs off?
        let junction_degree = match dir {
            Direction::Forward => g.in_degree(next),
            Direction::Backward => g.out_degree(next),
        };
        if junction_degree >= 2 {
            // Compare against the deepest alternative branch entering the
            // junction from the same side.
            let alt = alternative_depth(g, next, cur, &dir, max_len + 1, work);
            return (alt > chain.len()).then_some(chain);
        }
        chain.push(next);
        if chain.len() > max_len {
            return None; // too long to be an error artifact
        }
        cur = next;
    }
}

/// Depth (in nodes, capped at `cap`) of the deepest branch other than the
/// one through `via` entering `junction` from the tip's side.
fn alternative_depth(
    g: &DiGraph,
    junction: NodeId,
    via: NodeId,
    dir: &Direction,
    cap: usize,
    work: &mut u64,
) -> usize {
    let starts: Vec<NodeId> = match dir {
        Direction::Forward => g
            .in_neighbors(junction)
            .iter()
            .copied()
            .filter(|&u| u != via)
            .collect(),
        Direction::Backward => g
            .out_edges(junction)
            .iter()
            .map(|e| e.to)
            .filter(|&u| u != via)
            .collect(),
    };
    let mut best = 0usize;
    for start in starts {
        let mut depth = 1usize;
        let mut cur = start;
        while depth < cap {
            *work += 1;
            let prev = match dir {
                Direction::Forward => {
                    if g.in_degree(cur) != 1 || g.out_degree(cur) != 1 {
                        break;
                    }
                    g.in_neighbors(cur)[0]
                }
                Direction::Backward => {
                    if g.out_degree(cur) != 1 || g.in_degree(cur) != 1 {
                        break;
                    }
                    g.out_edges(cur)[0].to
                }
            };
            depth += 1;
            cur = prev;
        }
        best = best.max(depth);
    }
    best
}

/// One worker's bubble scan. For each node with out-degree ≥ 2, pairs of
/// branches are followed through unary chains; if two branches reconverge on
/// the same node, the branch with less total support is recorded.
pub fn worker_bubbles(
    g: &DiGraph,
    nodes: &[NodeId],
    support: NodeSupport<'_>,
    config: &ErrorRemovalConfig,
    work: &mut u64,
) -> Vec<NodeId> {
    let mut recorded = Vec::new();
    for &v in nodes {
        if g.is_removed(v) || g.out_degree(v) < 2 {
            continue;
        }
        // Follow each branch through its unary chain.
        let mut branches: Vec<(NodeId, Vec<NodeId>)> = Vec::new(); // (endpoint, interior)
        for e in g.out_edges(v) {
            *work += 1;
            let mut interior = Vec::new();
            let mut cur = e.to;
            let mut steps = 0;
            // Walk while the chain is strictly unary (in-deg 1, out-deg 1).
            while g.in_degree(cur) == 1 && g.out_degree(cur) == 1 && steps < config.max_bubble_len {
                interior.push(cur);
                cur = g.out_edges(cur)[0].to;
                steps += 1;
            }
            branches.push((cur, interior));
        }
        // Reconverging pairs form bubbles; drop the lighter interior.
        for i in 0..branches.len() {
            for j in i + 1..branches.len() {
                *work += 1;
                let (end_i, int_i) = &branches[i];
                let (end_j, int_j) = &branches[j];
                if end_i != end_j || int_i.is_empty() && int_j.is_empty() {
                    continue;
                }
                let weight = |interior: &[NodeId]| -> u64 {
                    interior.iter().map(|&n| support[n as usize]).sum()
                };
                let (wi, wj) = (weight(int_i), weight(int_j));
                let loser = if wi < wj || (wi == wj && int_i.len() <= int_j.len()) {
                    int_i
                } else {
                    int_j
                };
                recorded.extend(loser.iter().copied());
            }
        }
    }
    recorded
}

/// Master-side removal of recorded error nodes. Returns how many were
/// removed.
///
/// # Invariants
///
/// Each recorded node is removed at most once (records are deduplicated and
/// already-removed nodes skipped); removal detaches the node's incident
/// edges but never touches nodes outside the recorded set.
pub fn master_remove(
    g: &mut DiGraph,
    recorded: impl IntoIterator<Item = NodeId>,
    work: &mut u64,
) -> usize {
    let mut unique: Vec<NodeId> = recorded.into_iter().collect();
    unique.sort_unstable();
    unique.dedup();
    let mut removed = 0;
    for v in unique {
        *work += 1;
        if !g.is_removed(v) {
            g.remove_node(v);
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_graph::DiEdge;

    fn edge(to: NodeId) -> DiEdge {
        DiEdge {
            to,
            len: 50,
            identity: 1.0,
            shift: 50,
        }
    }

    /// Backbone 0→1→2→3→4 with a one-node spur 5→2.
    fn spur_graph() -> DiGraph {
        let mut g = DiGraph::with_nodes(6);
        for i in 0..4u32 {
            g.add_edge(i, edge(i + 1));
        }
        g.add_edge(5, edge(2));
        g
    }

    #[test]
    fn forward_spur_trimmed_backbone_kept() {
        let mut g = spur_graph();
        let all: Vec<NodeId> = (0..6).collect();
        let mut work = 0;
        let recorded = worker_dead_ends(&g, &all, &ErrorRemovalConfig::default(), &mut work);
        // The spur [5] loses to the deeper backbone branch [0,1]; the
        // backbone head survives because its alternative (the spur) is
        // shallower.
        assert_eq!(recorded, vec![5]);
        assert_eq!(master_remove(&mut g, recorded, &mut work), 1);
        assert!(g.is_removed(5));
        assert!(g.is_reachable(0, 4));
    }

    #[test]
    fn equal_depth_tips_are_both_kept() {
        // Two one-node branches into the same junction: a tie. Clipping
        // either would be a coin flip on the true sequence, so both stay.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, edge(2));
        g.add_edge(1, edge(2));
        g.add_edge(2, edge(3));
        let mut work = 0;
        let recorded =
            worker_dead_ends(&g, &[0, 1, 2, 3], &ErrorRemovalConfig::default(), &mut work);
        assert!(recorded.is_empty(), "tied tips trimmed: {recorded:?}");
    }

    #[test]
    fn long_dead_end_kept() {
        // A spur of 5 nodes exceeds max_tip_len = 3 and survives; the
        // 2-node branch it out-competes at the junction is clipped instead.
        let mut g = DiGraph::with_nodes(10);
        for i in 0..4u32 {
            g.add_edge(i, edge(i + 1));
        }
        // Spur: 5→6→7→8→9→2.
        for i in 5..9u32 {
            g.add_edge(i, edge(i + 1));
        }
        g.add_edge(9, edge(2));
        let all: Vec<NodeId> = (0..10).collect();
        let mut work = 0;
        let recorded = worker_dead_ends(&g, &all, &ErrorRemovalConfig::default(), &mut work);
        assert!(
            recorded.iter().all(|&v| v < 5),
            "long spur trimmed: {recorded:?}"
        );
        assert_eq!(recorded, vec![0, 1]);
    }

    /// Diamond bubble: 0→{1,2}, 1→3, 2→3, 3→4; support favors branch 1.
    fn bubble_graph() -> (DiGraph, Vec<u64>) {
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(0, edge(1));
        g.add_edge(0, edge(2));
        g.add_edge(1, edge(3));
        g.add_edge(2, edge(3));
        g.add_edge(3, edge(4));
        (g, vec![10, 8, 2, 10, 10])
    }

    #[test]
    fn bubble_pops_lighter_branch() {
        let (mut g, support) = bubble_graph();
        let all: Vec<NodeId> = (0..5).collect();
        let mut work = 0;
        let recorded = worker_bubbles(
            &g,
            &all,
            &support,
            &ErrorRemovalConfig::default(),
            &mut work,
        );
        assert_eq!(recorded, vec![2]);
        master_remove(&mut g, recorded, &mut work);
        assert!(g.is_removed(2));
        assert!(g.is_reachable(0, 4));
    }

    #[test]
    fn non_reconverging_branches_kept() {
        let mut g = DiGraph::with_nodes(5);
        g.add_edge(0, edge(1));
        g.add_edge(0, edge(2));
        g.add_edge(1, edge(3));
        g.add_edge(2, edge(4)); // different endpoints: a real fork
        let support = vec![1u64; 5];
        let mut work = 0;
        let recorded = worker_bubbles(
            &g,
            &[0],
            &support,
            &ErrorRemovalConfig::default(),
            &mut work,
        );
        assert!(recorded.is_empty());
    }

    #[test]
    fn oversized_bubble_kept() {
        // Branch interiors of 7 nodes exceed max_bubble_len = 6.
        let mut g = DiGraph::with_nodes(20);
        g.add_edge(0, edge(1));
        g.add_edge(0, edge(9));
        let mut prev = 1u32;
        for i in 2..9u32 {
            g.add_edge(prev, edge(i));
            prev = i;
        }
        g.add_edge(prev, edge(17));
        let mut prev = 9u32;
        for i in 10..17u32 {
            g.add_edge(prev, edge(i));
            prev = i;
        }
        g.add_edge(prev, edge(17));
        let support = vec![1u64; 20];
        let mut work = 0;
        let recorded = worker_bubbles(
            &g,
            &[0],
            &support,
            &ErrorRemovalConfig::default(),
            &mut work,
        );
        assert!(recorded.is_empty(), "oversized bubble popped: {recorded:?}");
    }
}
