//! Exhaustive model check of the master/worker gather-and-recover protocol.
//!
//! The distributed runtime is a deterministic simulation (DESIGN.md §2), so
//! the protocol's only nondeterminism is the fault schedule: which ranks
//! crash, which messages drop, which links stall. This test enumerates the
//! **full cross-product** of per-rank fault behaviours — a bounded model
//! check in the loom style, where every schedule in the bounded space is
//! executed rather than sampled — and asserts the protocol's safety
//! contract on every one:
//!
//! 1. **Exactly-once, in-order gather** — an `Ok` outcome carries exactly
//!    one result per partition, equal to the pure scan's output; recovery
//!    re-execution is invisible to the master.
//! 2. **No false aliveness** — `Err(AllRanksDead)` is returned iff every
//!    rank has been lost; the protocol never claims success with results
//!    missing and never gives up while a survivor remains.
//! 3. **Determinism** — identical `(plan, policy)` re-runs are
//!    bit-identical, fault report included.
//! 4. **Virtual-time monotonicity** — the cluster clock never runs
//!    backwards across a phase.
//!
//! The tier-1 space uses 3 ranks and one phase (6³ = 216 schedules). The CI
//! `model-check-deep` job builds with `RUSTFLAGS="--cfg loom"`, widening to
//! 4 ranks across all four pipeline phases (4 × 6⁴ = 5184 schedules).

use fc_dist::cluster::{CostModel, SimCluster};
use fc_dist::fault::{FaultEvent, FaultKind, FaultPlan, FaultReport, PhaseId, RetryPolicy};
use fc_dist::recovery::execute_phase;
use fc_dist::DistError;
use fc_exec::Pool;

#[cfg(not(loom))]
const RANKS: usize = 3;
#[cfg(loom)]
const RANKS: usize = 4;

#[cfg(not(loom))]
const PHASES: &[PhaseId] = &[PhaseId::Traversal];
#[cfg(loom)]
const PHASES: &[PhaseId] = &PhaseId::ALL;

/// One more partition than ranks, so the round-robin adoption path (a
/// partition whose owner never existed) is exercised by every schedule.
const PARTITIONS: usize = RANKS + 1;

/// The per-rank behaviour alphabet. `MessageDrop { 64 }` exhausts the
/// default retry budget, so the master presumes the sender dead — the
/// "silent failure" case, distinct from an injected crash.
fn behaviours() -> Vec<Option<FaultKind>> {
    vec![
        None,
        Some(FaultKind::Crash),
        Some(FaultKind::MessageDrop { count: 1 }),
        Some(FaultKind::MessageDrop { count: 64 }),
        Some(FaultKind::MessageDelay { factor: 4.0 }),
        Some(FaultKind::Straggle { factor: 8.0 }),
    ]
}

/// The pure worker scan the protocol gathers: any deterministic function of
/// the partition id works; a vector payload also exercises message sizing.
fn expected(p: usize) -> Vec<u64> {
    (0..=p as u64).map(|i| i * 31 + p as u64).collect()
}

struct RunOutcome {
    result: Result<Vec<Vec<u64>>, DistError>,
    makespan: f64,
    report: FaultReport,
}

fn run_schedule(phase: PhaseId, plan: &FaultPlan) -> RunOutcome {
    run_schedule_pooled(phase, plan, &Pool::serial())
}

fn run_schedule_pooled(phase: PhaseId, plan: &FaultPlan, pool: &Pool) -> RunOutcome {
    let mut cluster = SimCluster::with_faults(
        RANKS,
        CostModel::default(),
        plan.clone(),
        RetryPolicy::default(),
    )
    .unwrap();
    let before = cluster.now();
    let out = execute_phase(
        &mut cluster,
        pool,
        phase,
        PARTITIONS,
        |p, work| {
            *work += 5 * (p as u64 + 1);
            expected(p)
        },
        |r| 8 * r.len() as u64,
    );
    let after = cluster.now();
    assert!(
        after >= before,
        "virtual clock ran backwards: {after} < {before}"
    );
    let alive = cluster.alive_ranks();
    let result = match out {
        Ok(exec) => {
            assert!(
                !alive.is_empty(),
                "protocol returned Ok with every rank dead (plan {:?})",
                plan.events()
            );
            assert_eq!(exec.results.len(), PARTITIONS, "plan {:?}", plan.events());
            for (p, r) in exec.results.iter().enumerate() {
                assert_eq!(
                    *r,
                    expected(p),
                    "partition {p} result corrupted, plan {:?}",
                    plan.events()
                );
            }
            Ok(exec.results)
        }
        Err(e) => {
            assert!(
                matches!(e, DistError::AllRanksDead { .. }),
                "unexpected failure mode {e:?} (plan {:?})",
                plan.events()
            );
            assert!(
                alive.is_empty(),
                "protocol gave up with survivors {alive:?} left (plan {:?})",
                plan.events()
            );
            Err(e)
        }
    };
    RunOutcome {
        result,
        makespan: after,
        report: cluster.fault_report().clone(),
    }
}

/// Enumerates every assignment of one behaviour per rank for `phase`.
fn all_schedules(phase: PhaseId) -> Vec<FaultPlan> {
    let alphabet = behaviours();
    let mut plans = Vec::new();
    let mut digits = vec![0usize; RANKS];
    loop {
        let events: Vec<FaultEvent> = digits
            .iter()
            .enumerate()
            .filter_map(|(rank, &d)| alphabet[d].map(|kind| FaultEvent { phase, rank, kind }))
            .collect();
        plans.push(FaultPlan::new(events));
        // Increment the mixed-radix counter; done on overflow.
        let mut pos = 0;
        loop {
            if pos == RANKS {
                return plans;
            }
            digits[pos] += 1;
            if digits[pos] < alphabet.len() {
                break;
            }
            digits[pos] = 0;
            pos += 1;
        }
    }
}

#[test]
fn every_bounded_schedule_upholds_the_protocol_contract() {
    let mut checked = 0usize;
    let mut survived = 0usize;
    let mut lost = 0usize;
    for &phase in PHASES {
        for plan in all_schedules(phase) {
            let outcome = run_schedule(phase, &plan);
            match outcome.result {
                Ok(_) => survived += 1,
                Err(_) => lost += 1,
            }
            checked += 1;
        }
    }
    let expected_total = PHASES.len() * behaviours().len().pow(RANKS as u32);
    assert_eq!(
        checked, expected_total,
        "schedule space not fully enumerated"
    );
    // The all-crash schedule exists in the space, so both outcomes occur.
    assert!(
        survived > 0 && lost > 0,
        "space too small to be meaningful: {survived}/{lost}"
    );
}

#[test]
fn identical_schedules_replay_bit_identically() {
    for &phase in PHASES {
        // A representative hard schedule: crash, exhausted drops, delay on
        // three ranks (the fourth, if present, stays healthy).
        let mut events = vec![
            FaultEvent {
                phase,
                rank: 0,
                kind: FaultKind::Crash,
            },
            FaultEvent {
                phase,
                rank: 1,
                kind: FaultKind::MessageDrop { count: 64 },
            },
            FaultEvent {
                phase,
                rank: 2,
                kind: FaultKind::MessageDelay { factor: 4.0 },
            },
        ];
        events.truncate(RANKS.saturating_sub(1).max(1));
        let plan = FaultPlan::new(events);
        let a = run_schedule(phase, &plan);
        let b = run_schedule(phase, &plan);
        match (&a.result, &b.result) {
            (Ok(ra), Ok(rb)) => assert_eq!(ra, rb),
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            _ => panic!("replays diverged in outcome kind"),
        }
        assert_eq!(a.makespan, b.makespan, "virtual makespan not reproducible");
        assert_eq!(a.report, b.report, "fault report not reproducible");
    }
}

#[test]
fn pooled_worker_schedules_replay_bit_identically_to_serial() {
    // The initial scan fan-out may run on a work-stealing pool; fault
    // charging and recovery stay on the master's serial schedule, so every
    // schedule in the bounded space — crashes, drops, delays, stragglers —
    // must replay bit-identically (results, virtual makespan, and fault
    // report) at any thread count.
    let pool = Pool::new(4);
    for &phase in PHASES {
        for plan in all_schedules(phase) {
            let serial = run_schedule(phase, &plan);
            let pooled = run_schedule_pooled(phase, &plan, &pool);
            match (&serial.result, &pooled.result) {
                (Ok(ra), Ok(rb)) => assert_eq!(ra, rb, "plan {:?}", plan.events()),
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "plan {:?}", plan.events()),
                _ => panic!(
                    "pooled replay diverged in outcome kind (plan {:?})",
                    plan.events()
                ),
            }
            assert_eq!(
                serial.makespan,
                pooled.makespan,
                "virtual makespan changed under pooled workers (plan {:?})",
                plan.events()
            );
            assert_eq!(
                serial.report,
                pooled.report,
                "fault report changed under pooled workers (plan {:?})",
                plan.events()
            );
        }
    }
}

#[test]
fn fault_free_schedule_is_the_baseline() {
    for &phase in PHASES {
        let outcome = run_schedule(phase, &FaultPlan::none());
        let results = outcome.result.expect("fault-free run cannot fail");
        assert_eq!(results.len(), PARTITIONS);
        assert_eq!(outcome.report.crashes, 0);
        assert_eq!(outcome.report.recovery_time, 0.0);
    }
}

#[test]
fn faulty_schedules_never_change_gathered_results() {
    // Results under every surviving schedule must be bit-identical to the
    // fault-free gather — faults may cost time, never data.
    for &phase in PHASES {
        let baseline = run_schedule(phase, &FaultPlan::none())
            .result
            .expect("fault-free run cannot fail");
        for plan in all_schedules(phase) {
            if let Ok(results) = run_schedule(phase, &plan).result {
                assert_eq!(results, baseline, "plan {:?} corrupted data", plan.events());
            }
        }
    }
}
