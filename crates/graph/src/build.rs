//! Building the level-0 overlap graph `G0` from verified overlaps.

use crate::digraph::{DiEdge, DiGraph};
use crate::level::{LevelGraph, NodeId};
use fc_align::{Overlap, OverlapKind};
use fc_seq::{ReadId, ReadStore};

/// The level-0 overlap graph in both views the assembler needs.
///
/// Node ids coincide with store read ids (each strand is its own node,
/// paper §II-A/C). The undirected view carries alignment lengths as edge
/// weights and is what coarsening/partitioning consume; the directed view
/// drives simplification and traversal. Containment relations are kept
/// separately: the simplification stage (§V-B) removes contained reads.
#[derive(Debug, Clone)]
pub struct OverlapGraph {
    /// Undirected weighted view (edge weight = alignment length).
    pub undirected: LevelGraph,
    /// Directed dovetail view.
    pub directed: DiGraph,
    /// `(outer, inner)` containment pairs discovered during alignment.
    pub containments: Vec<(NodeId, NodeId)>,
}

impl OverlapGraph {
    /// Builds `G0` over all reads of `store` from `overlaps`.
    pub fn build(store: &ReadStore, overlaps: &[Overlap]) -> OverlapGraph {
        let n = store.len();
        let mut undirected = LevelGraph::with_nodes(n);
        let mut directed = DiGraph::with_nodes(n);
        let mut containments = Vec::new();

        for o in overlaps {
            match o.kind {
                OverlapKind::SuffixPrefix => {
                    let (from, to) = (o.a.0, o.b.0);
                    directed.add_edge(
                        from,
                        DiEdge {
                            to,
                            len: o.len,
                            identity: o.identity,
                            shift: o.shift,
                        },
                    );
                }
                OverlapKind::ContainsB => containments.push((o.a.0, o.b.0)),
                OverlapKind::ContainedInB => containments.push((o.b.0, o.a.0)),
            }
        }
        // Undirected weights come from the deduplicated directed edges so a
        // dovetail discovered twice (once per strand pairing) is not double
        // counted.
        for v in 0..n as NodeId {
            for e in directed.out_edges(v) {
                if v < e.to || directed.edge(e.to, v).is_none() {
                    undirected.add_edge(v, e.to, e.len as u64);
                }
            }
        }
        OverlapGraph {
            undirected,
            directed,
            containments,
        }
    }

    /// Node count (= store read count).
    pub fn node_count(&self) -> usize {
        self.undirected.node_count()
    }

    /// Ids of nodes contained in another read (deduplicated).
    pub fn contained_nodes(&self) -> Vec<NodeId> {
        let mut inner: Vec<NodeId> = self.containments.iter().map(|&(_, i)| i).collect();
        inner.sort_unstable();
        inner.dedup();
        inner
    }

    /// The read id a node represents (identity mapping at level 0).
    pub fn read_of(&self, v: NodeId) -> ReadId {
        ReadId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::Read;

    fn store(n: usize) -> ReadStore {
        let reads: Vec<Read> = (0..n)
            .map(|i| Read::new(format!("r{i}"), "ACGTACGTACGTACGT".parse().unwrap()))
            .collect();
        ReadStore::from_reads(reads)
    }

    fn dovetail(a: u32, b: u32, len: u32) -> Overlap {
        Overlap {
            a: ReadId(a),
            b: ReadId(b),
            kind: OverlapKind::SuffixPrefix,
            shift: 4,
            len,
            identity: 0.95,
        }
    }

    #[test]
    fn builds_both_views() {
        let store = store(4);
        let overlaps = vec![
            dovetail(0, 1, 50),
            dovetail(1, 2, 60),
            Overlap {
                a: ReadId(3),
                b: ReadId(2),
                kind: OverlapKind::ContainedInB,
                shift: 2,
                len: 40,
                identity: 0.99,
            },
        ];
        let g = OverlapGraph::build(&store, &overlaps);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.directed.edge_count(), 2);
        assert_eq!(g.undirected.edge_count(), 2);
        assert_eq!(g.undirected.edge_weight(0, 1), Some(50));
        assert_eq!(g.containments, vec![(2, 3)]);
        assert_eq!(g.contained_nodes(), vec![3]);
        g.undirected.check_invariants().unwrap();
        g.directed.check_invariants().unwrap();
    }

    #[test]
    fn antiparallel_dovetails_not_double_counted() {
        // Both directions present (0->1 and 1->0, e.g. via RC symmetry):
        // the undirected view must carry one edge with the single length.
        let store = store(2);
        let overlaps = vec![dovetail(0, 1, 50), dovetail(1, 0, 50)];
        let g = OverlapGraph::build(&store, &overlaps);
        assert_eq!(g.directed.edge_count(), 2);
        assert_eq!(g.undirected.edge_count(), 1);
        assert_eq!(g.undirected.edge_weight(0, 1), Some(50));
    }

    #[test]
    fn empty_overlaps_give_edgeless_graph() {
        let g = OverlapGraph::build(&store(3), &[]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.undirected.edge_count(), 0);
        assert_eq!(g.directed.edge_count(), 0);
        assert!(g.contained_nodes().is_empty());
    }
}
