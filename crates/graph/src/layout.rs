//! Read-cluster layout and the contiguity test.
//!
//! A node of a coarse graph represents a cluster of reads. The hybrid graph
//! (paper §II-D) keeps a coarse node only if its cluster "assembles into a
//! contiguous contig". We operationalise that test by laying the cluster
//! out: dovetail edges carry relative offsets (`shift`), so a BFS over the
//! cluster's induced directed subgraph assigns each read a coordinate. The
//! cluster is contiguous iff
//!
//! 1. the induced subgraph is connected,
//! 2. every edge agrees with the assigned coordinates (within a small indel
//!    tolerance — disagreement means the cluster conflates repeat copies),
//! 3. the reads tile an interval without gaps.
//!
//! The same layout orders the reads for contig-sequence construction.

use crate::digraph::DiGraph;
use crate::level::NodeId;
use fc_obs::Recorder;
use fc_seq::{DnaString, ReadId, ReadStore};
use std::collections::HashMap;

/// Parameters of the layout/contiguity test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutConfig {
    /// Maximum disagreement (bases) between an edge's shift and the layout
    /// coordinates before the cluster is declared non-contiguous.
    pub offset_tolerance: i64,
    /// Two cluster reads whose layout intervals overlap by at least this
    /// many bases must be linked by a verified overlap (a dovetail edge or
    /// a recorded containment); otherwise the cluster stacked different
    /// sequences at the same place — distinct alleles or repeat copies —
    /// and is not contiguous. The default demands linkage only for
    /// near-complete co-location (≥ 95 of 100 bp reads): that is the
    /// signature of an allele stack, while partial co-location without an
    /// edge routinely happens to honest clusters when one read's end grazes
    /// a diverged neighborhood.
    pub min_unlinked_overlap: i64,
    /// Number of unlinked co-located pairs tolerated before the cluster is
    /// declared non-contiguous. The default of 0 is strict — any stacked
    /// pair without a verified overlap splits the cluster — because
    /// tolerance lets allele mixtures assemble piecewise: small conflated
    /// clusters absorb one or two unlinked pairs each and then merge.
    /// Raise only for data whose aligner misses overlaps at a known rate.
    pub max_unlinked_pairs: usize,
}

impl Default for LayoutConfig {
    fn default() -> LayoutConfig {
        LayoutConfig {
            offset_tolerance: 4,
            min_unlinked_overlap: 95,
            max_unlinked_pairs: 0,
        }
    }
}

/// A successful layout: cluster reads with coordinates, sorted by offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterLayout {
    /// `(node, offset)` pairs sorted by offset (ties by node id).
    pub order: Vec<(NodeId, i64)>,
}

impl ClusterLayout {
    /// Number of reads in the layout.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the layout is empty (never produced by [`layout_cluster`]).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Builds the contig sequence by per-column majority vote over all
    /// reads covering each position — the error-correcting construction a
    /// production assembler uses. Ties resolve to the smallest base code
    /// for determinism. Costs one pass over every read base.
    pub fn consensus_sequence(&self, store: &ReadStore) -> DnaString {
        let Some(&(_, base_off)) = self.order.first() else {
            return DnaString::new();
        };
        let span = self
            .order
            .iter()
            .map(|&(v, o)| (o - base_off) + store.get(ReadId(v)).len() as i64)
            .max()
            .unwrap_or(0)
            .max(0) as usize;
        let mut counts = vec![[0u32; 4]; span];
        for &(v, o) in &self.order {
            let rel = (o - base_off) as usize;
            let seq = &store.get(ReadId(v)).seq;
            for (i, b) in seq.iter().enumerate() {
                counts[rel + i][b.code() as usize] += 1;
            }
        }
        counts
            .iter()
            .map(|column| {
                let mut best = 0usize;
                for c in 1..4 {
                    if column[c] > column[best] {
                        best = c;
                    }
                }
                fc_seq::Base::from_code(best as u8)
            })
            .collect()
    }

    /// Builds the contig sequence for this layout: reads are merged in
    /// coordinate order, each read contributing the bases past the current
    /// contig end (first-wins merging; with ≥ 90 % identity overlaps the
    /// differences are single bases and do not affect contig metrics).
    pub fn contig_sequence(&self, store: &ReadStore) -> DnaString {
        let mut contig = DnaString::new();
        let base = self.order.first().map_or(0, |&(_, o)| o);
        let mut covered_to: i64 = 0; // exclusive end, relative to base
        for &(node, offset) in &self.order {
            let read = &store.get(ReadId(node)).seq;
            let rel = offset - base;
            let read_end = rel + read.len() as i64;
            if read_end <= covered_to {
                continue; // contained within what we already emitted
            }
            let from = (covered_to - rel).max(0) as usize;
            contig.extend_from(&read.slice(from, read.len()));
            covered_to = read_end;
        }
        contig
    }
}

/// Lays out the cluster `nodes` over the directed overlap graph `g`.
///
/// Returns the layout if the cluster is contiguous per the module rules,
/// `None` otherwise. `read_len` lookups come from `store`. `containments`
/// holds `(outer, inner)` read pairs whose overlap was verified as a
/// containment (such pairs are linked even without a dovetail edge).
pub fn layout_cluster(
    nodes: &[NodeId],
    g: &DiGraph,
    containments: &HashMap<(NodeId, NodeId), ()>,
    store: &ReadStore,
    config: &LayoutConfig,
) -> Option<ClusterLayout> {
    layout_cluster_obs(nodes, g, containments, store, config, &Recorder::disabled())
}

/// [`layout_cluster`] with contiguity-test metrics recorded into `rec`:
/// `layout.clusters_tested`, `layout.contiguous` / `layout.non_contiguous`,
/// and a cluster-size histogram. The result is identical to the
/// uninstrumented call.
pub fn layout_cluster_obs(
    nodes: &[NodeId],
    g: &DiGraph,
    containments: &HashMap<(NodeId, NodeId), ()>,
    store: &ReadStore,
    config: &LayoutConfig,
    rec: &Recorder,
) -> Option<ClusterLayout> {
    let out = layout_cluster_inner(nodes, g, containments, store, config);
    if rec.is_enabled() {
        rec.add("layout.clusters_tested", 1);
        rec.observe("layout.cluster_size", nodes.len() as u64);
        if out.is_some() {
            rec.add("layout.contiguous", 1);
        } else {
            rec.add("layout.non_contiguous", 1);
        }
    }
    out
}

fn layout_cluster_inner(
    nodes: &[NodeId],
    g: &DiGraph,
    containments: &HashMap<(NodeId, NodeId), ()>,
    store: &ReadStore,
    config: &LayoutConfig,
) -> Option<ClusterLayout> {
    if nodes.is_empty() {
        return None;
    }
    if nodes.len() == 1 {
        return Some(ClusterLayout {
            order: vec![(nodes[0], 0)],
        });
    }
    let in_cluster: HashMap<NodeId, ()> = nodes.iter().map(|&v| (v, ())).collect();
    let mut offset: HashMap<NodeId, i64> = HashMap::with_capacity(nodes.len());

    // BFS from the first node, walking dovetail edges in both directions.
    // The queue is bounded by the cluster's node count: each node enters
    // exactly once, gated by the `offset` visited map.
    let start = nodes[0];
    offset.insert(start, 0);
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let v_off = offset[&v];
        for e in g.out_edges(v) {
            if !in_cluster.contains_key(&e.to) {
                continue;
            }
            let proposed = v_off + e.shift as i64;
            match offset.get(&e.to) {
                Some(&existing) => {
                    if (existing - proposed).abs() > config.offset_tolerance {
                        return None; // inconsistent layout (repeat conflation)
                    }
                }
                None => {
                    offset.insert(e.to, proposed);
                    queue.push_back(e.to);
                }
            }
        }
        for &u in g.in_neighbors(v) {
            if !in_cluster.contains_key(&u) {
                continue;
            }
            let Some(edge) = g.edge(u, v) else { continue };
            let shift = edge.shift as i64;
            let proposed = v_off - shift;
            match offset.get(&u) {
                Some(&existing) => {
                    if (existing - proposed).abs() > config.offset_tolerance {
                        return None;
                    }
                }
                None => {
                    offset.insert(u, proposed);
                    queue.push_back(u);
                }
            }
        }
    }
    if offset.len() != nodes.len() {
        return None; // induced subgraph disconnected
    }

    let mut order: Vec<(NodeId, i64)> = offset.into_iter().collect();
    order.sort_unstable_by_key(|&(v, o)| (o, v));

    // Tiling check: every read must start at or before the current end.
    let mut covered_to = order[0].1 + store.get(ReadId(order[0].0)).len() as i64;
    for &(v, o) in &order[1..] {
        if o > covered_to {
            return None; // gap in coverage
        }
        covered_to = covered_to.max(o + store.get(ReadId(v)).len() as i64);
    }

    // Linkage check: co-located reads must carry a verified overlap.
    // Two reads may legitimately share coordinates without an edge when
    // their overlap is short (below the aligner's threshold); beyond
    // `min_unlinked_overlap`, a missing link means the cluster stacked
    // different sequences at the same place (alleles, repeat copies).
    let linked = |a: NodeId, b: NodeId| -> bool {
        g.edge(a, b).is_some()
            || g.edge(b, a).is_some()
            || containments.contains_key(&(a, b))
            || containments.contains_key(&(b, a))
    };
    let mut unlinked_pairs = 0usize;
    let mut colocated_pairs = 0usize;
    for (i, &(v, ov)) in order.iter().enumerate() {
        let v_end = ov + store.get(ReadId(v)).len() as i64;
        for &(u, ou) in &order[i + 1..] {
            if v_end - ou < config.min_unlinked_overlap {
                break; // later reads start even further right
            }
            let u_end = ou + store.get(ReadId(u)).len() as i64;
            let shared = v_end.min(u_end) - ou;
            if shared >= config.min_unlinked_overlap {
                colocated_pairs += 1;
                if !linked(v, u) {
                    unlinked_pairs += 1;
                }
            }
        }
    }
    // A fixed absolute tolerance: isolated alignment misses are rare even in
    // deep clusters, while an allele stack leaves unlinked pairs in
    // proportion to its coverage — far above any small constant.
    let _ = colocated_pairs;
    if unlinked_pairs > config.max_unlinked_pairs {
        return None;
    }
    Some(ClusterLayout { order })
}

impl fc_ckpt::Codec for ClusterLayout {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u64(self.order.len() as u64);
        for &(v, off) in &self.order {
            w.put_u32(v);
            w.put_i64(off);
        }
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<ClusterLayout, fc_ckpt::CkptError> {
        let n = r.seq_len(12)?;
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            order.push((r.u32()?, r.i64()?));
        }
        Ok(ClusterLayout { order })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiEdge;
    use fc_seq::Read;

    /// Store of `n` reads tiling `genome` every `stride` bases (no RCs, so
    /// node ids equal tile indices).
    fn tiling(genome: &DnaString, read_len: usize, stride: usize) -> (ReadStore, DiGraph) {
        let mut reads = Vec::new();
        let mut start = 0;
        while start + read_len <= genome.len() {
            reads.push(Read::new(
                format!("r{start}"),
                genome.slice(start, start + read_len),
            ));
            start += stride;
        }
        let n = reads.len();
        let store = ReadStore::from_reads(reads);
        let mut g = DiGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(
                i as NodeId,
                DiEdge {
                    to: (i + 1) as NodeId,
                    len: (read_len - stride) as u32,
                    identity: 1.0,
                    shift: stride as u32,
                },
            );
        }
        (store, g)
    }

    fn genome(len: usize) -> DnaString {
        // Deterministic pseudo-random content.
        (0..len)
            .map(|i| fc_seq::Base::from_code(((i * 2654435761usize) >> 8) as u8 & 3))
            .collect()
    }

    #[test]
    fn linear_tiling_is_contiguous_and_reconstructs_genome() {
        let g = genome(300);
        let (store, di) = tiling(&g, 100, 50);
        let nodes: Vec<NodeId> = (0..store.len() as NodeId).collect();
        let layout = layout_cluster(
            &nodes,
            &di,
            &HashMap::new(),
            &store,
            &LayoutConfig::default(),
        )
        .expect("tiling must be contiguous");
        assert_eq!(layout.len(), store.len());
        let contig = layout.contig_sequence(&store);
        // Tiles cover positions 0..(last_start + 100).
        let expected = g.slice(0, 100 + 50 * (store.len() - 1));
        assert_eq!(contig, expected);
    }

    #[test]
    fn single_node_cluster_is_trivially_contiguous() {
        let g = genome(120);
        let (store, di) = tiling(&g, 100, 10);
        let layout =
            layout_cluster(&[1], &di, &HashMap::new(), &store, &LayoutConfig::default()).unwrap();
        assert_eq!(layout.order, vec![(1, 0)]);
        assert_eq!(layout.contig_sequence(&store), store.get(ReadId(1)).seq);
    }

    #[test]
    fn disconnected_cluster_rejected() {
        let g = genome(500);
        let (store, di) = tiling(&g, 100, 50);
        // Nodes 0 and 4 are not connected within the cluster {0, 4}.
        assert!(layout_cluster(
            &[0, 4],
            &di,
            &HashMap::new(),
            &store,
            &LayoutConfig::default()
        )
        .is_none());
    }

    #[test]
    fn gap_in_tiling_rejected() {
        let g = genome(500);
        let (store, mut di) = tiling(&g, 100, 50);
        // Connect 0 -> 4 with a bogus long-range edge (shift 300 creates a
        // consistent offset but a coverage gap between read 0 end (100) and
        // read 4 start (300)).
        di.add_edge(
            0,
            DiEdge {
                to: 4,
                len: 10,
                identity: 1.0,
                shift: 300,
            },
        );
        assert!(layout_cluster(
            &[0, 4],
            &di,
            &HashMap::new(),
            &store,
            &LayoutConfig::default()
        )
        .is_none());
    }

    #[test]
    fn inconsistent_offsets_rejected() {
        let g = genome(300);
        let (store, mut di) = tiling(&g, 100, 50);
        // A conflicting edge claims node 2 is only 10 bases right of node 0,
        // but via node 1 it is 100 bases right.
        di.add_edge(
            0,
            DiEdge {
                to: 2,
                len: 90,
                identity: 1.0,
                shift: 10,
            },
        );
        assert!(layout_cluster(
            &[0, 1, 2],
            &di,
            &HashMap::new(),
            &store,
            &LayoutConfig::default()
        )
        .is_none());
    }

    #[test]
    fn small_offset_disagreement_tolerated() {
        let g = genome(300);
        let (store, mut di) = tiling(&g, 100, 50);
        // Claims shift 102 where the layout says 100 — within tolerance 4.
        di.add_edge(
            0,
            DiEdge {
                to: 2,
                len: 90,
                identity: 1.0,
                shift: 102,
            },
        );
        let layout = layout_cluster(
            &[0, 1, 2],
            &di,
            &HashMap::new(),
            &store,
            &LayoutConfig::default(),
        );
        assert!(layout.is_some());
    }

    #[test]
    fn consensus_outvotes_single_read_errors() {
        let g = genome(200);
        // Three reads covering [0,100), [0,100), [50,150): corrupt one base
        // in the first read; the column has 2:1 votes for the truth.
        let mut r0 = g.slice(0, 100);
        r0.set(70, r0.get(70).complement());
        let r1 = g.slice(0, 100);
        let r2 = g.slice(50, 150);
        let store = ReadStore::from_reads(vec![
            Read::new("r0", r0),
            Read::new("r1", r1),
            Read::new("r2", r2),
        ]);
        let layout = ClusterLayout {
            order: vec![(0, 0), (1, 0), (2, 50)],
        };
        let consensus = layout.consensus_sequence(&store);
        assert_eq!(consensus, g.slice(0, 150));
        // First-wins would have kept the error.
        assert_ne!(layout.contig_sequence(&store), g.slice(0, 150));
    }

    #[test]
    fn consensus_has_same_span_as_first_wins() {
        let g = genome(300);
        let (store, di) = tiling(&g, 100, 40);
        let nodes: Vec<NodeId> = (0..store.len() as NodeId).collect();
        let layout = layout_cluster(
            &nodes,
            &di,
            &HashMap::new(),
            &store,
            &LayoutConfig::default(),
        )
        .expect("tiling is contiguous");
        assert_eq!(
            layout.consensus_sequence(&store).len(),
            layout.contig_sequence(&store).len()
        );
        // Error-free input: both constructions agree exactly.
        assert_eq!(
            layout.consensus_sequence(&store),
            layout.contig_sequence(&store)
        );
    }

    #[test]
    fn contained_read_does_not_break_contig() {
        let g = genome(200);
        let long = Read::new("long", g.slice(0, 150));
        let inner = Read::new("inner", g.slice(20, 120));
        let store = ReadStore::from_reads(vec![long, inner]);
        let mut di = DiGraph::with_nodes(2);
        di.add_edge(
            0,
            DiEdge {
                to: 1,
                len: 100,
                identity: 1.0,
                shift: 20,
            },
        );
        let layout = layout_cluster(
            &[0, 1],
            &di,
            &HashMap::new(),
            &store,
            &LayoutConfig::default(),
        )
        .unwrap();
        assert_eq!(layout.contig_sequence(&store), g.slice(0, 150));
    }
}
