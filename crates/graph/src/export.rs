//! Graphviz (DOT) export for visual inspection of assembly graphs.
//!
//! Not part of the paper's pipeline, but indispensable for debugging graph
//! algorithms: `dot -Tsvg graph.dot -o graph.svg` renders the output of
//! these functions. Partition assignments render as fill colors.

use crate::digraph::DiGraph;
use crate::level::{LevelGraph, NodeId};
use std::fmt::Write as _;

/// A small categorical palette; partition `p` uses `PALETTE[p % len]`.
const PALETTE: &[&str] = &[
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462", "#b3de69", "#fccde5",
    "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
];

/// Renders an undirected level graph as DOT. `parts`, when given, colors
/// nodes by partition; edge pen widths scale with weight.
pub fn level_graph_to_dot(g: &LevelGraph, parts: Option<&[u32]>) -> String {
    let mut out = String::from("graph level {\n  node [shape=circle, style=filled];\n");
    let max_w = g.edges().map(|(_, _, w)| w).max().unwrap_or(1).max(1);
    for v in 0..g.node_count() as NodeId {
        let color = node_color(parts, v);
        let _ = writeln!(
            out,
            "  n{v} [label=\"{v}\\nw={}\", fillcolor=\"{color}\"];",
            g.node_weight(v)
        );
    }
    for (u, v, w) in g.edges() {
        let pen = 1.0 + 3.0 * w as f64 / max_w as f64;
        let _ = writeln!(out, "  n{u} -- n{v} [label=\"{w}\", penwidth={pen:.2}];");
    }
    out.push_str("}\n");
    out
}

/// Renders a directed overlap/hybrid graph as DOT. Removed nodes are
/// omitted; edge labels show overlap length and shift.
pub fn digraph_to_dot(g: &DiGraph, parts: Option<&[u32]>) -> String {
    let mut out =
        String::from("digraph overlap {\n  rankdir=LR;\n  node [shape=box, style=filled];\n");
    for v in g.live_nodes() {
        let color = node_color(parts, v);
        let _ = writeln!(out, "  n{v} [label=\"{v}\", fillcolor=\"{color}\"];");
    }
    for v in g.live_nodes() {
        for e in g.out_edges(v) {
            let _ = writeln!(
                out,
                "  n{v} -> n{} [label=\"len={} shift={}\"];",
                e.to, e.len, e.shift
            );
        }
    }
    out.push_str("}\n");
    out
}

fn node_color(parts: Option<&[u32]>, v: NodeId) -> &'static str {
    match parts {
        Some(p) => PALETTE[p[v as usize] as usize % PALETTE.len()],
        None => "#ffffff",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiEdge;

    #[test]
    fn level_graph_dot_contains_nodes_edges_and_colors() {
        let mut g = LevelGraph::with_nodes(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 10);
        let dot = level_graph_to_dot(&g, Some(&[0, 1, 0]));
        assert!(dot.starts_with("graph level {"));
        assert!(dot.contains("n0 -- n1 [label=\"5\""));
        assert!(dot.contains("n1 -- n2 [label=\"10\""));
        assert!(dot.contains(PALETTE[0]));
        assert!(dot.contains(PALETTE[1]));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn digraph_dot_omits_removed_nodes() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(
            0,
            DiEdge {
                to: 1,
                len: 50,
                identity: 1.0,
                shift: 40,
            },
        );
        g.add_edge(
            1,
            DiEdge {
                to: 2,
                len: 60,
                identity: 1.0,
                shift: 30,
            },
        );
        g.remove_node(2);
        let dot = digraph_to_dot(&g, None);
        assert!(dot.contains("n0 -> n1"));
        assert!(!dot.contains("n2"));
        assert!(dot.contains("len=50 shift=40"));
    }

    #[test]
    fn uncolored_nodes_are_white() {
        let g = LevelGraph::with_nodes(1);
        let dot = level_graph_to_dot(&g, None);
        assert!(dot.contains("#ffffff"));
    }
}

/// Renders a directed hybrid/overlap graph as GFA v1 (the standard
/// assembly-graph interchange format readable by Bandage and friends).
///
/// Each live node becomes an `S` (segment) line whose sequence comes from
/// `segment` (return `None` to emit `*`, sequence omitted). Each edge
/// becomes an `L` (link) line whose overlap is the edge's alignment length
/// as a `<n>M` CIGAR. All segments are emitted on the `+` strand: the
/// assembler's strand-augmented read set made orientation explicit at the
/// node level.
pub fn digraph_to_gfa(g: &DiGraph, segment: impl Fn(NodeId) -> Option<String>) -> String {
    let mut out = String::from("H\tVN:Z:1.0\n");
    for v in g.live_nodes() {
        match segment(v) {
            Some(seq) => {
                let _ = writeln!(out, "S\t{v}\t{seq}\tLN:i:{}", seq.len());
            }
            None => {
                let _ = writeln!(out, "S\t{v}\t*");
            }
        }
    }
    for v in g.live_nodes() {
        for e in g.out_edges(v) {
            let _ = writeln!(out, "L\t{v}\t+\t{}\t+\t{}M", e.to, e.len);
        }
    }
    out
}

#[cfg(test)]
mod gfa_tests {
    use super::*;
    use crate::digraph::DiEdge;

    #[test]
    fn gfa_has_header_segments_and_links() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(
            0,
            DiEdge {
                to: 1,
                len: 55,
                identity: 1.0,
                shift: 45,
            },
        );
        g.add_edge(
            1,
            DiEdge {
                to: 2,
                len: 60,
                identity: 1.0,
                shift: 40,
            },
        );
        let gfa = digraph_to_gfa(&g, |v| {
            if v == 0 {
                Some("ACGT".to_string())
            } else {
                None
            }
        });
        let lines: Vec<&str> = gfa.lines().collect();
        assert_eq!(lines[0], "H\tVN:Z:1.0");
        assert!(lines.contains(&"S\t0\tACGT\tLN:i:4"));
        assert!(lines.contains(&"S\t1\t*"));
        assert!(lines.contains(&"L\t0\t+\t1\t+\t55M"));
        assert!(lines.contains(&"L\t1\t+\t2\t+\t60M"));
    }

    #[test]
    fn gfa_omits_removed_nodes() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(
            0,
            DiEdge {
                to: 1,
                len: 50,
                identity: 1.0,
                shift: 50,
            },
        );
        g.remove_node(1);
        let gfa = digraph_to_gfa(&g, |_| None);
        assert!(!gfa.contains("S\t1"));
        assert!(!gfa.contains("L\t"));
    }
}
