//! Best-representative selection and the hybrid graph set (paper §II-D, §III).
//!
//! A *best representative* is a node taken from the most reduced graph
//! possible whose read cluster assembles into one contiguous contig
//! ([`crate::layout`]). Selection descends the multilevel hierarchy from the
//! coarsest level: a node whose cluster passes the contiguity test becomes a
//! representative; otherwise its children are examined. Level-0 nodes always
//! pass, so the representatives partition the read set exactly.
//!
//! The hybrid graph `G'0` has one node per representative; the hybrid graph
//! *set* `{G'0 … G'n}` re-uses the multilevel ancestry: at hybrid level `i`,
//! representatives that share a level-`i` ancestor in the multilevel set
//! merge. Partitioning this set only needs to un-coarsen down to `G'0`
//! instead of `G0` — that is the paper's "biological knowledge" saving.

use crate::build::OverlapGraph;
use crate::coarsen::MultilevelSet;
use crate::digraph::{DiEdge, DiGraph};
use crate::layout::{layout_cluster_obs, ClusterLayout, LayoutConfig};
use crate::level::{GraphSet, LevelGraph, NodeId};
use fc_obs::Recorder;
use fc_seq::ReadStore;
use std::collections::HashMap;

/// A selected best-representative node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Representative {
    /// Multilevel level the node was taken from (0 = finest).
    pub level: usize,
    /// Node id within that level.
    pub node: NodeId,
}

/// The hybrid graph set and everything needed to use it downstream.
#[derive(Debug, Clone)]
pub struct HybridSet {
    /// The representatives, in hybrid-node-id order (`G'0` node `i` is
    /// `reps[i]`).
    pub reps: Vec<Representative>,
    /// Level-0 (read) nodes of each representative's cluster.
    pub clusters: Vec<Vec<NodeId>>,
    /// The verified layout of each cluster.
    pub layouts: Vec<ClusterLayout>,
    /// Maps each level-0 node to its representative (hybrid node id).
    pub rep_of_node: Vec<u32>,
    /// The hybrid graph set `{G'0 … G'n}` (finest first).
    pub set: GraphSet,
    /// Directed hybrid graph over `G'0` for simplification and traversal,
    /// with contig-level shifts.
    pub directed: DiGraph,
    /// Length of each representative's contig in bases.
    pub contig_lens: Vec<u32>,
}

impl HybridSet {
    /// Builds the hybrid set from a multilevel set over `g0`.
    pub fn build(
        ml: &MultilevelSet,
        g0: &OverlapGraph,
        store: &ReadStore,
        config: &LayoutConfig,
    ) -> HybridSet {
        HybridSet::build_obs(ml, g0, store, config, &Recorder::disabled())
    }

    /// [`HybridSet::build`] with selection metrics recorded into `rec`:
    /// contiguity-test outcomes (via `layout.*`), the representative count
    /// and level distribution, and hybrid graph sizes. Selection is fully
    /// deterministic, so every metric is thread-count-invariant.
    pub fn build_obs(
        ml: &MultilevelSet,
        g0: &OverlapGraph,
        store: &ReadStore,
        config: &LayoutConfig,
        rec: &Recorder,
    ) -> HybridSet {
        let _span = rec.span_args(
            "graph",
            "hybrid.build",
            &[("levels", ml.level_count() as i64)],
        );
        let set = &ml.set;
        let n_levels = set.level_count();
        let children = children_lists(set);
        let containments: HashMap<(NodeId, NodeId), ()> =
            g0.containments.iter().map(|&(a, b)| ((a, b), ())).collect();

        // --- Representative selection: descend from the coarsest level. ---
        let coarsest_nodes = set.coarsest().node_count();
        let mut reps: Vec<Representative> = Vec::new();
        let mut clusters: Vec<Vec<NodeId>> = Vec::new();
        let mut layouts: Vec<ClusterLayout> = Vec::new();
        let mut stack: Vec<(usize, NodeId)> = (0..coarsest_nodes as NodeId)
            .rev()
            .map(|v| (n_levels - 1, v))
            .collect();
        while let Some((level, node)) = stack.pop() {
            let cluster = expand_to_level0(&children, level, node);
            match layout_cluster_obs(&cluster, &g0.directed, &containments, store, config, rec) {
                Some(layout) => {
                    reps.push(Representative { level, node });
                    clusters.push(cluster);
                    layouts.push(layout);
                }
                None => {
                    debug_assert!(level > 0, "level-0 nodes are always contiguous");
                    for &child in children[level][node as usize].iter().rev() {
                        stack.push((level - 1, child));
                    }
                }
            }
        }

        // --- rep_of_node over G0. ---
        let n0 = set.finest().node_count();
        let mut rep_of_node = vec![u32::MAX; n0];
        for (ri, cluster) in clusters.iter().enumerate() {
            for &v in cluster {
                debug_assert_eq!(
                    rep_of_node[v as usize],
                    u32::MAX,
                    "clusters must be disjoint"
                );
                rep_of_node[v as usize] = ri as u32;
            }
        }
        debug_assert!(
            rep_of_node.iter().all(|&r| r != u32::MAX),
            "clusters must cover G0"
        );

        // --- Hybrid G'0: contract the undirected G0. ---
        let mut g0h =
            LevelGraph::with_node_weights(clusters.iter().map(|c| c.len() as u64).collect());
        let mut acc: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        for (u, v, w) in g0.undirected.edges() {
            let (ru, rv) = (rep_of_node[u as usize], rep_of_node[v as usize]);
            if ru != rv {
                *acc.entry((ru.min(rv), ru.max(rv))).or_insert(0) += w;
            }
        }
        let mut sorted: Vec<_> = acc.into_iter().collect();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        for ((u, v), w) in sorted {
            g0h.add_edge(u, v, w);
        }

        // --- Contig lengths and the directed hybrid graph. ---
        let contig_lens: Vec<u32> = layouts
            .iter()
            .map(|l| {
                let base = l.order.first().map_or(0, |&(_, o)| o);
                l.order
                    .iter()
                    .map(|&(v, o)| (o - base) + store.get(fc_seq::ReadId(v)).len() as i64)
                    .max()
                    .unwrap_or(0) as u32
            })
            .collect();
        // Offset of each read within its rep's contig.
        let mut read_offset = vec![0i64; n0];
        for layout in &layouts {
            let base = layout.order.first().map_or(0, |&(_, o)| o);
            for &(v, o) in &layout.order {
                read_offset[v as usize] = o - base;
            }
        }
        let mut directed = DiGraph::with_nodes(reps.len());
        for u in g0.directed.live_nodes() {
            for e in g0.directed.out_edges(u) {
                let (ru, rv) = (rep_of_node[u as usize], rep_of_node[e.to as usize]);
                if ru == rv {
                    continue;
                }
                // Contig-level shift: where contig(rv) starts relative to
                // contig(ru).
                let shift = read_offset[u as usize] + e.shift as i64 - read_offset[e.to as usize];
                let a_len = contig_lens[ru as usize] as i64;
                if shift <= 0 || shift >= a_len {
                    continue; // not a proper contig dovetail
                }
                let overlap = (a_len - shift).min(contig_lens[rv as usize] as i64) as u32;
                directed.add_edge(
                    ru,
                    DiEdge {
                        to: rv,
                        len: overlap,
                        identity: e.identity,
                        shift: shift as u32,
                    },
                );
            }
        }

        // --- Hybrid levels G'1 … G'n via multilevel ancestry. ---
        let mut levels = vec![g0h];
        let mut maps: Vec<Vec<NodeId>> = Vec::new();
        // Group key of rep r at hybrid level i.
        let key_at = |r: &Representative, i: usize| -> (usize, NodeId) {
            if i <= r.level {
                (r.level, r.node)
            } else {
                (i, set.ancestor(r.level, r.node, i))
            }
        };
        let mut prev_assign: Vec<NodeId> = (0..reps.len() as NodeId).collect();
        for i in 1..n_levels {
            let mut group_ids: HashMap<(usize, NodeId), NodeId> = HashMap::new();
            let mut assign = vec![0 as NodeId; reps.len()];
            let mut weights: Vec<u64> = Vec::new();
            for (ri, r) in reps.iter().enumerate() {
                let key = key_at(r, i);
                let next_id = group_ids.len() as NodeId;
                let id = *group_ids.entry(key).or_insert(next_id);
                if id as usize == weights.len() {
                    weights.push(0);
                }
                weights[id as usize] += clusters[ri].len() as u64;
                assign[ri] = id;
            }
            // fine→coarse between hybrid level i-1 and i.
            let prev_count = levels[i - 1].node_count();
            let mut map = vec![NodeId::MAX; prev_count];
            for ri in 0..reps.len() {
                map[prev_assign[ri] as usize] = assign[ri];
            }
            debug_assert!(map.iter().all(|&m| m != NodeId::MAX));
            // Contract G'0 edges through `assign`.
            let mut acc: HashMap<(NodeId, NodeId), u64> = HashMap::new();
            for (u, v, w) in levels[0].edges() {
                let (cu, cv) = (assign[u as usize], assign[v as usize]);
                if cu != cv {
                    *acc.entry((cu.min(cv), cu.max(cv))).or_insert(0) += w;
                }
            }
            let mut coarse = LevelGraph::with_node_weights(weights);
            let mut sorted: Vec<_> = acc.into_iter().collect();
            sorted.sort_unstable_by_key(|&(k, _)| k);
            for ((u, v), w) in sorted {
                coarse.add_edge(u, v, w);
            }
            levels.push(coarse);
            maps.push(map);
            prev_assign = assign;
        }

        if rec.is_enabled() {
            rec.add("hybrid.reps", reps.len() as u64);
            for r in &reps {
                rec.observe("hybrid.rep_level", r.level as u64);
            }
            rec.gauge("hybrid.g0_nodes", levels[0].node_count() as i64);
            rec.gauge("hybrid.g0_edges", levels[0].edge_count() as i64);
            rec.gauge("hybrid.directed_edges", directed.edge_count() as i64);
        }
        HybridSet {
            reps,
            clusters,
            layouts,
            rep_of_node,
            set: GraphSet {
                levels,
                fine_to_coarse: maps,
            },
            directed,
            contig_lens,
        }
    }

    /// Number of hybrid nodes (representatives).
    pub fn node_count(&self) -> usize {
        self.reps.len()
    }

    /// The contig sequence of a hybrid node (first-wins merging).
    pub fn contig(&self, hybrid_node: NodeId, store: &ReadStore) -> fc_seq::DnaString {
        self.layouts[hybrid_node as usize].contig_sequence(store)
    }

    /// The contig sequence of a hybrid node with per-column majority
    /// consensus (error-corrected; same length as [`HybridSet::contig`]).
    pub fn contig_consensus(&self, hybrid_node: NodeId, store: &ReadStore) -> fc_seq::DnaString {
        self.layouts[hybrid_node as usize].consensus_sequence(store)
    }

    /// Projects a partition assignment on `G'0` down to level-0 nodes
    /// (reads): every read inherits its representative's partition.
    pub fn project_partition_to_reads(&self, hybrid_parts: &[u32]) -> Vec<u32> {
        self.rep_of_node
            .iter()
            .map(|&r| hybrid_parts[r as usize])
            .collect()
    }
}

/// `children[level][node]` = nodes of `level - 1` merging into `node`.
/// `children[0]` is empty.
fn children_lists(set: &GraphSet) -> Vec<Vec<Vec<NodeId>>> {
    let mut out: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(set.level_count());
    out.push(Vec::new());
    for (i, map) in set.fine_to_coarse.iter().enumerate() {
        let coarse_n = set.levels[i + 1].node_count();
        let mut lists = vec![Vec::new(); coarse_n];
        for (fine, &coarse) in map.iter().enumerate() {
            lists[coarse as usize].push(fine as NodeId);
        }
        out.push(lists);
    }
    out
}

/// All level-0 descendants of `node` at `level`.
fn expand_to_level0(children: &[Vec<Vec<NodeId>>], level: usize, node: NodeId) -> Vec<NodeId> {
    if level == 0 {
        return vec![node];
    }
    let mut out = Vec::new();
    let mut stack = vec![(level, node)];
    while let Some((l, v)) = stack.pop() {
        if l == 0 {
            out.push(v);
        } else {
            for &c in &children[l][v as usize] {
                stack.push((l - 1, c));
            }
        }
    }
    out.sort_unstable();
    out
}

impl fc_ckpt::Codec for Representative {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.level.encode(w);
        w.put_u32(self.node);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<Representative, fc_ckpt::CkptError> {
        Ok(Representative {
            level: usize::decode(r)?,
            node: r.u32()?,
        })
    }
}

impl fc_ckpt::Codec for HybridSet {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.reps.encode(w);
        self.clusters.encode(w);
        self.layouts.encode(w);
        self.rep_of_node.encode(w);
        self.set.encode(w);
        self.directed.encode(w);
        self.contig_lens.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<HybridSet, fc_ckpt::CkptError> {
        let decode_err = |detail: String| fc_ckpt::CkptError::Decode { detail };
        let reps = Vec::<Representative>::decode(r)?;
        let clusters = Vec::<Vec<NodeId>>::decode(r)?;
        let layouts = Vec::<ClusterLayout>::decode(r)?;
        let rep_of_node = Vec::<u32>::decode(r)?;
        let set = GraphSet::decode(r)?;
        let directed = DiGraph::decode(r)?;
        let contig_lens = Vec::<u32>::decode(r)?;
        let h = reps.len();
        if clusters.len() != h || layouts.len() != h || contig_lens.len() != h {
            return Err(decode_err(format!(
                "HybridSet per-representative arrays disagree: {h} reps, {} clusters, {} layouts, {} contig lengths",
                clusters.len(),
                layouts.len(),
                contig_lens.len()
            )));
        }
        if rep_of_node.iter().any(|&rep| rep as usize >= h) {
            return Err(decode_err(format!(
                "HybridSet rep_of_node entry out of bounds for {h} representatives"
            )));
        }
        Ok(HybridSet {
            reps,
            clusters,
            layouts,
            rep_of_node,
            set,
            directed,
            contig_lens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::CoarsenConfig;
    use fc_align::{Overlap, OverlapKind};
    use fc_seq::{DnaString, Read, ReadId};

    /// A linear genome tiling: reads every `stride` bases, overlaps between
    /// consecutive reads. Returns (store, overlap graph).
    fn linear_case(n_reads: usize) -> (ReadStore, OverlapGraph) {
        let read_len = 100usize;
        let stride = 50usize;
        let genome: DnaString = (0..(n_reads * stride + read_len))
            .map(|i| fc_seq::Base::from_code(((i * 2654435761usize) >> 7) as u8 & 3))
            .collect();
        let reads: Vec<Read> = (0..n_reads)
            .map(|i| {
                Read::new(
                    format!("r{i}"),
                    genome.slice(i * stride, i * stride + read_len),
                )
            })
            .collect();
        let store = ReadStore::from_reads(reads);
        let overlaps: Vec<Overlap> = (0..n_reads - 1)
            .map(|i| Overlap {
                a: ReadId(i as u32),
                b: ReadId(i as u32 + 1),
                kind: OverlapKind::SuffixPrefix,
                shift: stride as u32,
                len: (read_len - stride) as u32,
                identity: 1.0,
            })
            .collect();
        let g = OverlapGraph::build(&store, &overlaps);
        (store, g)
    }

    fn build_hybrid(n_reads: usize) -> (ReadStore, OverlapGraph, MultilevelSet, HybridSet) {
        let (store, g) = linear_case(n_reads);
        let ml = MultilevelSet::build(
            g.undirected.clone(),
            &CoarsenConfig {
                min_nodes: 4,
                ..Default::default()
            },
        );
        let hs = HybridSet::build(&ml, &g, &store, &LayoutConfig::default());
        (store, g, ml, hs)
    }

    #[test]
    fn linear_graph_collapses_to_few_representatives() {
        let (_, _, ml, hs) = build_hybrid(64);
        assert!(ml.level_count() > 2);
        // A perfectly linear tiling is contiguous at every level, so the
        // representatives should come from the coarsest level.
        assert!(
            hs.node_count() <= ml.set.coarsest().node_count() + 2,
            "expected near-coarsest hybrid size, got {} vs coarsest {}",
            hs.node_count(),
            ml.set.coarsest().node_count()
        );
    }

    #[test]
    fn clusters_partition_the_read_set() {
        let (store, _, _, hs) = build_hybrid(40);
        let mut seen = vec![false; store.len()];
        for cluster in &hs.clusters {
            for &v in cluster {
                assert!(!seen[v as usize], "node {v} in two clusters");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some node in no cluster");
        assert_eq!(hs.rep_of_node.len(), store.len());
    }

    #[test]
    fn hybrid_set_invariants_hold() {
        let (_, _, ml, hs) = build_hybrid(48);
        hs.set.check_invariants().unwrap();
        assert_eq!(hs.set.level_count(), ml.level_count());
        // Hybrid levels never have more nodes than multilevel levels.
        for (h, m) in hs.set.levels.iter().zip(&ml.set.levels) {
            assert!(h.node_count() <= m.node_count());
        }
    }

    #[test]
    fn contigs_reconstruct_genome_pieces() {
        let (store, _, _, hs) = build_hybrid(32);
        // Total contig length must be >= genome span covered (contigs from a
        // perfect tiling reproduce consecutive slices).
        let total: u64 = hs.contig_lens.iter().map(|&l| l as u64).sum();
        assert!(total as usize >= 32 * 50 + 50, "contigs too short: {total}");
        for v in 0..hs.node_count() as NodeId {
            assert_eq!(
                hs.contig(v, &store).len(),
                hs.contig_lens[v as usize] as usize
            );
        }
    }

    #[test]
    fn directed_hybrid_edges_chain_contigs() {
        let (_, _, _, hs) = build_hybrid(32);
        if hs.node_count() > 1 {
            assert!(hs.directed.edge_count() > 0, "hybrid contigs should chain");
            for v in hs.directed.live_nodes() {
                for e in hs.directed.out_edges(v) {
                    assert!(e.shift > 0);
                    assert!((e.shift as i64) < hs.contig_lens[v as usize] as i64);
                    assert!(e.len > 0);
                }
            }
        }
    }

    #[test]
    fn partition_projection_reaches_every_read() {
        let (_, _, _, hs) = build_hybrid(24);
        let parts: Vec<u32> = (0..hs.node_count() as u32).map(|i| i % 4).collect();
        let read_parts = hs.project_partition_to_reads(&parts);
        for (v, &p) in read_parts.iter().enumerate() {
            assert_eq!(p, parts[hs.rep_of_node[v] as usize]);
        }
    }

    #[test]
    fn obs_layout_counters_are_consistent() {
        let (store, g) = linear_case(48);
        let ml = MultilevelSet::build(
            g.undirected.clone(),
            &CoarsenConfig {
                min_nodes: 4,
                ..Default::default()
            },
        );
        let rec = fc_obs::Recorder::new(fc_obs::ObsOptions::logical());
        let hs = HybridSet::build_obs(&ml, &g, &store, &LayoutConfig::default(), &rec);
        let snapshot = rec.snapshot();
        let get = |name| snapshot.counters.get(name).copied().unwrap_or(0);
        assert_eq!(
            get("layout.contiguous") + get("layout.non_contiguous"),
            get("layout.clusters_tested")
        );
        // Every representative passed the contiguity test exactly once.
        assert_eq!(get("layout.contiguous"), hs.node_count() as u64);
        assert_eq!(get("hybrid.reps"), hs.node_count() as u64);
        assert_eq!(
            snapshot.histograms.get("hybrid.rep_level").map(|h| h.count),
            Some(hs.node_count() as u64)
        );
        // Instrumentation does not change the result.
        let plain = HybridSet::build(&ml, &g, &store, &LayoutConfig::default());
        assert_eq!(plain.reps, hs.reps);
        assert_eq!(plain.clusters, hs.clusters);
    }

    #[test]
    fn repeat_conflated_cluster_descends_to_children() {
        // Build a graph where two distant regions get cross-linked by a
        // bogus edge, making coarse clusters non-contiguous: selection must
        // fall back to finer levels and still cover everything.
        let (store, mut g) = linear_case(30);
        // Inconsistent extra edge: claims read 0 overlaps read 20.
        g.directed.add_edge(
            0,
            crate::digraph::DiEdge {
                to: 20,
                len: 50,
                identity: 0.95,
                shift: 50,
            },
        );
        g.undirected.add_edge(0, 20, 50);
        // Coarsen all the way down to one node so the conflated pair is
        // guaranteed to share a coarse cluster.
        let ml = MultilevelSet::build(
            g.undirected.clone(),
            &CoarsenConfig {
                min_nodes: 1,
                max_levels: 16,
                ..Default::default()
            },
        );
        let hs = HybridSet::build(&ml, &g, &store, &LayoutConfig::default());
        let mut covered = vec![false; store.len()];
        for c in &hs.clusters {
            for &v in c {
                covered[v as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // The conflated region forces at least one rep below the coarsest
        // level.
        let max_level = ml.level_count() - 1;
        assert!(
            hs.reps.iter().any(|r| r.level < max_level),
            "expected descent below coarsest level"
        );
    }
}
