//! Error type for graph structural checks.

use std::fmt;

/// Errors produced by graph invariant checks (`check_invariants`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A structural invariant of a graph or level hierarchy failed.
    Invariant {
        /// Which structure failed (`DiGraph`, `LevelGraph`, `GraphSet`).
        structure: &'static str,
        /// Description of the violated invariant.
        message: String,
    },
}

impl GraphError {
    /// Convenience constructor for an invariant failure.
    pub fn invariant(structure: &'static str, message: impl Into<String>) -> GraphError {
        GraphError::Invariant {
            structure,
            message: message.into(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Invariant { structure, message } => {
                write!(f, "{structure} invariant violated: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}
