//! Directed overlap graphs for assembly traversal.

use crate::error::GraphError;
use crate::level::NodeId;

/// A directed overlap edge: the suffix of the source aligns to the prefix of
/// the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiEdge {
    /// Target node.
    pub to: NodeId,
    /// Alignment length in columns (edge weight, paper §II-C).
    pub len: u32,
    /// Alignment identity in `[0, 1]`.
    pub identity: f64,
    /// Offset of the target's first base relative to the source's first base
    /// on the common layout.
    pub shift: u32,
}

/// A directed graph with both out- and in-adjacency, supporting the removals
/// the distributed simplification stage performs (§V).
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    out: Vec<Vec<DiEdge>>,
    inc: Vec<Vec<NodeId>>,
    removed_nodes: Vec<bool>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> DiGraph {
        DiGraph {
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
            removed_nodes: vec![false; n],
        }
    }

    /// Number of nodes ever created (including removed ones).
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of live (not removed) nodes.
    pub fn live_node_count(&self) -> usize {
        self.removed_nodes.iter().filter(|&&r| !r).count()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Adds a directed edge. Duplicate edges (same endpoints) keep the one
    /// with the greater alignment length.
    pub fn add_edge(&mut self, from: NodeId, edge: DiEdge) {
        if from == edge.to {
            return;
        }
        if let Some(existing) = self.out[from as usize].iter_mut().find(|e| e.to == edge.to) {
            if edge.len > existing.len {
                *existing = edge;
            }
            return;
        }
        self.out[from as usize].push(edge);
        self.inc[edge.to as usize].push(from);
    }

    /// Out-edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[DiEdge] {
        &self.out[v as usize]
    }

    /// Sources of in-edges of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.inc[v as usize]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out[v as usize].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.inc[v as usize].len()
    }

    /// True if `v` has been removed.
    pub fn is_removed(&self, v: NodeId) -> bool {
        self.removed_nodes[v as usize]
    }

    /// Live node ids.
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.out.len() as NodeId).filter(move |&v| !self.removed_nodes[v as usize])
    }

    /// Removes the directed edge `from -> to`; returns whether it existed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        let out = &mut self.out[from as usize];
        let before = out.len();
        out.retain(|e| e.to != to);
        if out.len() == before {
            return false;
        }
        self.inc[to as usize].retain(|&s| s != from);
        true
    }

    /// Removes a node and all its incident edges.
    pub fn remove_node(&mut self, v: NodeId) {
        if self.removed_nodes[v as usize] {
            return;
        }
        let outs: Vec<NodeId> = self.out[v as usize].iter().map(|e| e.to).collect();
        for t in outs {
            self.inc[t as usize].retain(|&s| s != v);
        }
        let ins: Vec<NodeId> = self.inc[v as usize].clone();
        for s in ins {
            self.out[s as usize].retain(|e| e.to != v);
        }
        self.out[v as usize].clear();
        self.inc[v as usize].clear();
        self.removed_nodes[v as usize] = true;
    }

    /// The edge `from -> to`, if present.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Option<&DiEdge> {
        self.out[from as usize].iter().find(|e| e.to == to)
    }

    /// Checks out/in adjacency consistency.
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        for (v, edges) in self.out.iter().enumerate() {
            for e in edges {
                if !self.inc[e.to as usize].contains(&(v as NodeId)) {
                    return Err(GraphError::invariant(
                        "DiGraph",
                        format!("missing in-edge record {v}->{}", e.to),
                    ));
                }
                if self.removed_nodes[v] || self.removed_nodes[e.to as usize] {
                    return Err(GraphError::invariant(
                        "DiGraph",
                        format!("edge touches removed node: {v}->{}", e.to),
                    ));
                }
            }
        }
        for (v, sources) in self.inc.iter().enumerate() {
            for &s in sources {
                if !self.out[s as usize].iter().any(|e| e.to as usize == v) {
                    return Err(GraphError::invariant(
                        "DiGraph",
                        format!("missing out-edge record {s}->{v}"),
                    ));
                }
            }
        }
        Ok(())
    }

    /// True if the graph (restricted to live nodes) is reachable from `from`
    /// to `to` along directed edges. Used by transitive-reduction tests.
    pub fn is_reachable(&self, from: NodeId, to: NodeId) -> bool {
        let mut seen = vec![false; self.out.len()];
        let mut stack = vec![from];
        seen[from as usize] = true;
        while let Some(v) = stack.pop() {
            if v == to {
                return true;
            }
            for e in self.out_edges(v) {
                if !seen[e.to as usize] {
                    seen[e.to as usize] = true;
                    stack.push(e.to);
                }
            }
        }
        false
    }
}

impl fc_ckpt::Codec for DiEdge {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u32(self.to);
        w.put_u32(self.len);
        w.put_f64(self.identity);
        w.put_u32(self.shift);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<DiEdge, fc_ckpt::CkptError> {
        Ok(DiEdge {
            to: r.u32()?,
            len: r.u32()?,
            identity: r.f64()?,
            shift: r.u32()?,
        })
    }
}

impl fc_ckpt::Codec for DiGraph {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.out.encode(w);
        self.inc.encode(w);
        self.removed_nodes.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<DiGraph, fc_ckpt::CkptError> {
        let decode_err = |detail: String| fc_ckpt::CkptError::Decode { detail };
        let out = Vec::<Vec<DiEdge>>::decode(r)?;
        let inc = Vec::<Vec<NodeId>>::decode(r)?;
        let removed_nodes = Vec::<bool>::decode(r)?;
        let n = out.len();
        if inc.len() != n || removed_nodes.len() != n {
            return Err(decode_err(format!(
                "DiGraph adjacency sizes disagree: {n} out, {} inc, {} removed flags",
                inc.len(),
                removed_nodes.len()
            )));
        }
        if out.iter().flatten().any(|e| e.to as usize >= n)
            || inc.iter().flatten().any(|&v| v as usize >= n)
        {
            return Err(decode_err(format!(
                "DiGraph edge endpoint out of bounds for {n} nodes"
            )));
        }
        if out.iter().map(Vec::len).sum::<usize>() != inc.iter().map(Vec::len).sum::<usize>() {
            return Err(decode_err(
                "DiGraph out/in edge counts disagree".to_string(),
            ));
        }
        Ok(DiGraph {
            out,
            inc,
            removed_nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(to: NodeId, len: u32) -> DiEdge {
        DiEdge {
            to,
            len,
            identity: 1.0,
            shift: 10,
        }
    }

    fn path_graph() -> DiGraph {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, edge(1, 50));
        g.add_edge(1, edge(2, 60));
        g.add_edge(2, edge(3, 70));
        g
    }

    #[test]
    fn adjacency_bookkeeping() {
        let g = path_graph();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(1), 1);
        assert_eq!(g.in_degree(1), 1);
        assert_eq!(g.in_neighbors(2), &[1]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_edge_keeps_longer() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, edge(1, 50));
        g.add_edge(0, edge(1, 80));
        g.add_edge(0, edge(1, 60));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(0, 1).unwrap().len, 80);
        assert_eq!(g.in_degree(1), 1);
    }

    #[test]
    fn self_edges_ignored() {
        let mut g = DiGraph::with_nodes(1);
        g.add_edge(0, edge(0, 50));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn remove_edge_updates_both_sides() {
        let mut g = path_graph();
        assert!(g.remove_edge(1, 2));
        assert!(!g.remove_edge(1, 2));
        assert_eq!(g.out_degree(1), 0);
        assert_eq!(g.in_degree(2), 0);
        g.check_invariants().unwrap();
    }

    #[test]
    fn remove_node_detaches_everything() {
        let mut g = path_graph();
        g.remove_node(1);
        assert!(g.is_removed(1));
        assert_eq!(g.live_node_count(), 3);
        assert_eq!(g.out_degree(0), 0);
        assert_eq!(g.in_degree(2), 0);
        g.check_invariants().unwrap();
        // Idempotent.
        g.remove_node(1);
        assert_eq!(g.live_node_count(), 3);
    }

    #[test]
    fn reachability() {
        let g = path_graph();
        assert!(g.is_reachable(0, 3));
        assert!(!g.is_reachable(3, 0));
        let mut g2 = g.clone();
        g2.remove_edge(1, 2);
        assert!(!g2.is_reachable(0, 3));
    }
}
