//! Undirected weighted level graphs and graph sets.
//!
//! Every level of the multilevel set `{G0 … Gn}` and of the hybrid set
//! `{G'0 … G'n}` is a [`LevelGraph`]: an undirected graph whose node weights
//! count represented reads and whose edge weights are accumulated alignment
//! lengths (paper §II-C). A [`GraphSet`] bundles the levels with the
//! fine→coarse node maps used by partition projection (§IV-C).

use crate::error::GraphError;

/// Index of a node within one level graph.
pub type NodeId = u32;

/// An undirected weighted graph stored as symmetric adjacency lists.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelGraph {
    /// `adj[v]` holds `(neighbor, edge weight)` pairs; every edge appears in
    /// both endpoint lists with the same weight.
    adj: Vec<Vec<(NodeId, u64)>>,
    /// Node weights (number of reads represented).
    node_weight: Vec<u64>,
}

impl LevelGraph {
    /// Creates a graph with `n` nodes of weight 1 and no edges.
    pub fn with_nodes(n: usize) -> LevelGraph {
        LevelGraph {
            adj: vec![Vec::new(); n],
            node_weight: vec![1; n],
        }
    }

    /// Creates a graph with explicit node weights and no edges.
    pub fn with_node_weights(weights: Vec<u64>) -> LevelGraph {
        LevelGraph {
            adj: vec![Vec::new(); weights.len()],
            node_weight: weights,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Weight of node `v`.
    #[inline]
    pub fn node_weight(&self, v: NodeId) -> u64 {
        self.node_weight[v as usize]
    }

    /// Sum of all node weights.
    pub fn total_node_weight(&self) -> u64 {
        self.node_weight.iter().sum()
    }

    /// Sum of all edge weights (each undirected edge counted once).
    pub fn total_edge_weight(&self) -> u64 {
        self.adj.iter().flatten().map(|&(_, w)| w).sum::<u64>() / 2
    }

    /// Neighbors of `v` with edge weights.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, u64)] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Adds an undirected edge, accumulating weight if it already exists.
    /// Self-loops are ignored (coarsening folds them into node weight).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: u64) {
        if u == v {
            return;
        }
        debug_assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        // Update each endpoint independently: the lists stay symmetric by
        // construction without relying on the back edge being present.
        for (a, b) in [(u, v), (v, u)] {
            match self.adj[a as usize].iter_mut().find(|(n, _)| *n == b) {
                Some(slot) => slot.1 += w,
                None => self.adj[a as usize].push((b, w)),
            }
        }
    }

    /// Weight of the edge `(u, v)`, or `None` if absent.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<u64> {
        self.adj[u as usize]
            .iter()
            .find(|(n, _)| *n == v)
            .map(|&(_, w)| w)
    }

    /// Iterates every undirected edge once as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&(v, _)| (u as NodeId) < v)
                .map(move |&(v, w)| (u as NodeId, v, w))
        })
    }

    /// Checks structural invariants (symmetry, no self-loops, weights > 0);
    /// used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        let fail = |message: String| Err(GraphError::invariant("LevelGraph", message));
        for (u, nbrs) in self.adj.iter().enumerate() {
            let mut seen = std::collections::HashSet::new();
            for &(v, w) in nbrs {
                if v as usize == u {
                    return fail(format!("self-loop at {u}"));
                }
                if !seen.insert(v) {
                    return fail(format!("duplicate edge {u}-{v}"));
                }
                if w == 0 {
                    return fail(format!("zero-weight edge {u}-{v}"));
                }
                let back = self.adj[v as usize].iter().find(|(n, _)| *n as usize == u);
                match back {
                    Some(&(_, bw)) if bw == w => {}
                    Some(_) => return fail(format!("asymmetric weight on {u}-{v}")),
                    None => return fail(format!("missing back edge {v}-{u}")),
                }
            }
        }
        Ok(())
    }

    /// Connected components as a label per node (labels are 0-based and
    /// dense).
    pub fn components(&self) -> Vec<u32> {
        let n = self.node_count();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for start in 0..n {
            if label[start] != u32::MAX {
                continue;
            }
            stack.push(start as NodeId);
            label[start] = next;
            while let Some(v) = stack.pop() {
                for &(u, _) in self.neighbors(v) {
                    if label[u as usize] == u32::MAX {
                        label[u as usize] = next;
                        stack.push(u);
                    }
                }
            }
            next += 1;
        }
        label
    }
}

/// A hierarchy of level graphs with fine→coarse node maps.
///
/// `levels[0]` is the finest graph; `fine_to_coarse[i][v]` is the node of
/// `levels[i + 1]` that `v` of `levels[i]` merges into. Both the multilevel
/// set (§II-C) and the hybrid set (§II-D) are `GraphSet`s, so the
/// partitioner (fc-partition) treats them uniformly.
#[derive(Debug, Clone, Default)]
pub struct GraphSet {
    /// Graphs from finest (`levels[0]`) to coarsest.
    pub levels: Vec<LevelGraph>,
    /// `fine_to_coarse[i]` maps nodes of `levels[i]` to nodes of
    /// `levels[i + 1]`; length is `levels.len() - 1`.
    pub fine_to_coarse: Vec<Vec<NodeId>>,
}

impl GraphSet {
    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The finest graph.
    pub fn finest(&self) -> &LevelGraph {
        &self.levels[0]
    }

    /// The coarsest graph.
    ///
    /// # Panics
    /// Panics on an empty set; every builder ([`crate::MultilevelSet::build`],
    /// [`crate::HybridSet::build`]) produces at least one level.
    pub fn coarsest(&self) -> &LevelGraph {
        self.levels
            .last()
            .expect("graph set has at least one level")
    }

    /// Maps a node of `levels[level]` to its ancestor at `target_level`
    /// (≥ `level`).
    pub fn ancestor(&self, level: usize, node: NodeId, target_level: usize) -> NodeId {
        assert!(target_level >= level && target_level < self.levels.len());
        let mut v = node;
        for maps in &self.fine_to_coarse[level..target_level] {
            v = maps[v as usize];
        }
        v
    }

    /// Checks cross-level invariants: map lengths, weight conservation, and
    /// that edge weight + folded self-loop weight is conserved level to
    /// level (merging can only fold weight inwards, never lose it to
    /// nothing).
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        let fail = |message: String| Err(GraphError::invariant("GraphSet", message));
        if self.fine_to_coarse.len() + 1 != self.levels.len() {
            return fail("map count must be level count - 1".to_string());
        }
        for (i, map) in self.fine_to_coarse.iter().enumerate() {
            let fine = &self.levels[i];
            let coarse = &self.levels[i + 1];
            if map.len() != fine.node_count() {
                return fail(format!("map {i} length mismatch"));
            }
            if map.iter().any(|&c| c as usize >= coarse.node_count()) {
                return fail(format!("map {i} points past coarse graph"));
            }
            // Node weight conservation per coarse node.
            let mut acc = vec![0u64; coarse.node_count()];
            for (v, &c) in map.iter().enumerate() {
                acc[c as usize] += fine.node_weight(v as NodeId);
            }
            for (c, &w) in acc.iter().enumerate() {
                if w != coarse.node_weight(c as NodeId) {
                    return fail(format!(
                        "level {}: node {c} weight {} != accumulated {w}",
                        i + 1,
                        coarse.node_weight(c as NodeId)
                    ));
                }
            }
            fine.check_invariants()?;
            coarse.check_invariants()?;
            if coarse.total_edge_weight() > fine.total_edge_weight() {
                return fail(format!("level {} gained edge weight", i + 1));
            }
        }
        Ok(())
    }
}

impl fc_ckpt::Codec for LevelGraph {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u64(self.adj.len() as u64);
        for nbrs in &self.adj {
            w.put_u64(nbrs.len() as u64);
            for &(v, wt) in nbrs {
                w.put_u32(v);
                w.put_u64(wt);
            }
        }
        self.node_weight.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<LevelGraph, fc_ckpt::CkptError> {
        let decode_err = |detail: String| fc_ckpt::CkptError::Decode { detail };
        let n = r.seq_len(8)?;
        let mut adj = Vec::with_capacity(n);
        for _ in 0..n {
            let deg = r.seq_len(12)?;
            let mut nbrs = Vec::with_capacity(deg);
            for _ in 0..deg {
                nbrs.push((r.u32()?, r.u64()?));
            }
            adj.push(nbrs);
        }
        let node_weight = Vec::<u64>::decode(r)?;
        if node_weight.len() != n {
            return Err(decode_err(format!(
                "LevelGraph has {} node weights for {n} nodes",
                node_weight.len()
            )));
        }
        if adj.iter().flatten().any(|&(v, _)| v as usize >= n) {
            return Err(decode_err(format!(
                "LevelGraph neighbor out of bounds for {n} nodes"
            )));
        }
        Ok(LevelGraph { adj, node_weight })
    }
}

impl fc_ckpt::Codec for GraphSet {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.levels.encode(w);
        self.fine_to_coarse.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<GraphSet, fc_ckpt::CkptError> {
        let levels = Vec::<LevelGraph>::decode(r)?;
        let fine_to_coarse = Vec::<Vec<NodeId>>::decode(r)?;
        let set = GraphSet {
            levels,
            fine_to_coarse,
        };
        set.check_invariants()
            .map_err(|e| fc_ckpt::CkptError::Decode {
                detail: format!("GraphSet invariants violated: {e}"),
            })?;
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> LevelGraph {
        let mut g = LevelGraph::with_nodes(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 7);
        g.add_edge(2, 0, 11);
        g
    }

    #[test]
    fn edge_accounting() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.total_edge_weight(), 23);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.edge_weight(0, 0), None);
        g.check_invariants().unwrap();
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = LevelGraph::with_nodes(2);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 0, 4);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(7));
        g.check_invariants().unwrap();
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = LevelGraph::with_nodes(2);
        g.add_edge(0, 0, 9);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edges_iterator_lists_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.iter().all(|&(u, v, _)| u < v));
    }

    #[test]
    fn components_labelling() {
        let mut g = LevelGraph::with_nodes(5);
        g.add_edge(0, 1, 1);
        g.add_edge(3, 4, 1);
        let labels = g.components();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[2], labels[3]);
    }

    #[test]
    fn graph_set_ancestor_walks_maps() {
        let g0 = LevelGraph::with_nodes(4);
        let g1 = LevelGraph::with_node_weights(vec![2, 2]);
        let g2 = LevelGraph::with_node_weights(vec![4]);
        let set = GraphSet {
            levels: vec![g0, g1, g2],
            fine_to_coarse: vec![vec![0, 0, 1, 1], vec![0, 0]],
        };
        assert_eq!(set.ancestor(0, 3, 2), 0);
        assert_eq!(set.ancestor(0, 3, 1), 1);
        assert_eq!(set.ancestor(1, 1, 1), 1);
        set.check_invariants().unwrap();
    }

    #[test]
    fn graph_set_invariants_catch_weight_mismatch() {
        let g0 = LevelGraph::with_nodes(2);
        let g1 = LevelGraph::with_node_weights(vec![3]); // should be 2
        let set = GraphSet {
            levels: vec![g0, g1],
            fine_to_coarse: vec![vec![0, 0]],
        };
        assert!(set.check_invariants().is_err());
    }
}
