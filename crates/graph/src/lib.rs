//! # fc-graph — assembly graphs for the Focus reproduction
//!
//! The paper's graph-theoretic core (§II-C/D, §III):
//!
//! * [`level`] — the undirected weighted graph type used at every level of
//!   the multilevel and hybrid graph sets (node weight = reads represented,
//!   edge weight = alignment length),
//! * [`digraph`] — the directed overlap graph used by assembly traversal,
//! * [`build`] — constructing the level-0 overlap graph `G0` from verified
//!   overlaps,
//! * [`coarsen`] — heavy-edge matching and node merging producing the
//!   multilevel graph set `G = {G0 … Gn}` (Karypis–Kumar),
//! * [`layout`] — read-cluster layout and the contiguity test behind "best
//!   representative" selection (does this cluster assemble into one contig?),
//! * [`hybrid`] — best-representative selection across levels and the hybrid
//!   graph set `G' = {G'0 … G'n}`, the paper's vehicle for injecting
//!   biological knowledge into partitioning.

pub mod build;
pub mod coarsen;
pub mod digraph;
pub mod error;
pub mod export;
pub mod hybrid;
pub mod layout;
pub mod level;

pub use build::OverlapGraph;
pub use coarsen::{CoarsenConfig, MultilevelSet};
pub use digraph::{DiEdge, DiGraph};
pub use error::GraphError;
pub use export::{digraph_to_dot, digraph_to_gfa, level_graph_to_dot};
pub use hybrid::{HybridSet, Representative};
pub use layout::{ClusterLayout, LayoutConfig};
pub use level::{GraphSet, LevelGraph, NodeId};
