//! Graph coarsening: heavy-edge matching and node merging (paper §II-C,
//! following Karypis & Kumar).

use crate::level::{GraphSet, LevelGraph, NodeId};
use fc_obs::Recorder;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Histogram bounds for ratios expressed in permille (0–1000).
const PERMILLE_BOUNDS: &[u64] = &[100, 200, 300, 400, 500, 600, 700, 800, 900, 950, 1000];

/// Parameters controlling how far the multilevel set is coarsened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarsenConfig {
    /// Stop once the coarsest graph has at most this many nodes.
    pub min_nodes: usize,
    /// Hard cap on produced levels (the paper's data sets coarsened to ten
    /// levels).
    pub max_levels: usize,
    /// Stop when a round shrinks the node count by less than this factor
    /// (e.g. 0.95 = must lose at least 5 % of nodes to continue).
    pub stagnation_ratio: f64,
    /// Seed for the random node visit order of the matching.
    pub seed: u64,
}

impl Default for CoarsenConfig {
    fn default() -> CoarsenConfig {
        CoarsenConfig {
            min_nodes: 64,
            max_levels: 10,
            stagnation_ratio: 0.95,
            seed: 0xF0C5,
        }
    }
}

/// The multilevel graph set `{G0 … Gn}` plus construction statistics.
#[derive(Debug, Clone)]
pub struct MultilevelSet {
    /// The level hierarchy (finest first).
    pub set: GraphSet,
}

impl MultilevelSet {
    /// Iteratively coarsens `g0` with heavy-edge matching until one of the
    /// stopping rules of `config` triggers.
    pub fn build(g0: LevelGraph, config: &CoarsenConfig) -> MultilevelSet {
        MultilevelSet::build_obs(g0, config, &Recorder::disabled())
    }

    /// [`MultilevelSet::build`] with coarsening metrics recorded into
    /// `rec`: per-level node/edge counts, the matching rate of every round
    /// (matched nodes per thousand), and the level count. Coarsening is
    /// seed-deterministic, so all of these are thread-count-invariant.
    pub fn build_obs(g0: LevelGraph, config: &CoarsenConfig, rec: &Recorder) -> MultilevelSet {
        let _span = rec.span_args(
            "graph",
            "coarsen.build",
            &[("nodes", g0.node_count() as i64)],
        );
        let mut levels = vec![g0];
        let mut maps = Vec::new();
        for round in 0..config.max_levels {
            let Some(current) = levels.last() else { break };
            if current.node_count() <= config.min_nodes {
                break;
            }
            let matching = heavy_edge_matching(current, config.seed.wrapping_add(round as u64));
            if rec.is_enabled() {
                let matched = matching
                    .iter()
                    .enumerate()
                    .filter(|&(v, &m)| m != v as NodeId)
                    .count();
                // Integer permille instead of a float ratio: the snapshot
                // format is integer-only to stay byte-deterministic.
                rec.observe_with(
                    "coarsen.matching_rate_permille",
                    (matched as u64 * 1000) / current.node_count().max(1) as u64,
                    PERMILLE_BOUNDS,
                );
            }
            let (coarse, map) = contract(current, &matching);
            if (coarse.node_count() as f64) > config.stagnation_ratio * current.node_count() as f64
            {
                break;
            }
            rec.instant(
                "graph",
                "coarsen.level",
                &[
                    ("round", round as i64),
                    ("nodes", coarse.node_count() as i64),
                    ("edges", coarse.edge_count() as i64),
                ],
            );
            rec.observe("coarsen.level_nodes", coarse.node_count() as u64);
            rec.observe("coarsen.level_edges", coarse.edge_count() as u64);
            levels.push(coarse);
            maps.push(map);
        }
        rec.add("coarsen.levels", levels.len() as u64);
        MultilevelSet {
            set: GraphSet {
                levels,
                fine_to_coarse: maps,
            },
        }
    }

    /// Number of levels (n + 1 for `{G0 … Gn}`).
    pub fn level_count(&self) -> usize {
        self.set.level_count()
    }
}

/// Computes a heavy-edge matching: nodes are visited in random order; an
/// unmatched node matches its unmatched neighbor of maximum edge weight
/// (ties to the smaller id for determinism).
///
/// Returns `mate[v]`: the matched partner, or `v` itself when unmatched.
pub fn heavy_edge_matching(g: &LevelGraph, seed: u64) -> Vec<NodeId> {
    let n = g.node_count();
    let mut mate: Vec<NodeId> = (0..n as NodeId).collect();
    let mut matched = vec![false; n];
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    for &v in &order {
        if matched[v as usize] {
            continue;
        }
        let mut best: Option<(u64, NodeId)> = None;
        for &(u, w) in g.neighbors(v) {
            if matched[u as usize] {
                continue;
            }
            let better = match best {
                None => true,
                Some((bw, bu)) => w > bw || (w == bw && u < bu),
            };
            if better {
                best = Some((w, u));
            }
        }
        if let Some((_, u)) = best {
            matched[v as usize] = true;
            matched[u as usize] = true;
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
    }
    mate
}

/// Contracts a graph along a matching. Matched pairs merge into one coarse
/// node (weights summed); unmatched nodes carry over. Parallel coarse edges
/// accumulate weight; intra-pair edges fold away (self-loops are dropped, as
/// in the paper's model where edge weight inside a cluster is no longer cut).
///
/// Returns the coarse graph and the fine→coarse node map.
pub fn contract(g: &LevelGraph, mate: &[NodeId]) -> (LevelGraph, Vec<NodeId>) {
    let n = g.node_count();
    let mut map = vec![NodeId::MAX; n];
    let mut weights = Vec::new();
    for v in 0..n as NodeId {
        if map[v as usize] != NodeId::MAX {
            continue;
        }
        let m = mate[v as usize];
        let coarse = weights.len() as NodeId;
        map[v as usize] = coarse;
        let mut w = g.node_weight(v);
        if m != v {
            map[m as usize] = coarse;
            w += g.node_weight(m);
        }
        weights.push(w);
    }

    let mut coarse_edges: HashMap<(NodeId, NodeId), u64> = HashMap::new();
    for (u, v, w) in g.edges() {
        let (cu, cv) = (map[u as usize], map[v as usize]);
        if cu == cv {
            continue;
        }
        let key = (cu.min(cv), cu.max(cv));
        *coarse_edges.entry(key).or_insert(0) += w;
    }
    let mut coarse = LevelGraph::with_node_weights(weights);
    // Sorted for deterministic adjacency order.
    let mut edges: Vec<((NodeId, NodeId), u64)> = coarse_edges.into_iter().collect();
    edges.sort_unstable_by_key(|&(k, _)| k);
    for ((u, v), w) in edges {
        coarse.add_edge(u, v, w);
    }
    (coarse, map)
}

impl fc_ckpt::Codec for MultilevelSet {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.set.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<MultilevelSet, fc_ckpt::CkptError> {
        Ok(MultilevelSet {
            set: GraphSet::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path graph with increasing edge weights.
    fn path(n: usize) -> LevelGraph {
        let mut g = LevelGraph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(i as NodeId, (i + 1) as NodeId, (i + 1) as u64);
        }
        g
    }

    #[test]
    fn matching_is_valid() {
        let g = path(10);
        let mate = heavy_edge_matching(&g, 1);
        for v in 0..10u32 {
            let m = mate[v as usize];
            assert_eq!(mate[m as usize], v, "matching not symmetric at {v}");
            if m != v {
                assert!(
                    g.edge_weight(v, m).is_some(),
                    "matched non-neighbors {v},{m}"
                );
            }
        }
    }

    #[test]
    fn matching_prefers_heavy_edges() {
        // Star: center 0, edges to 1 (w=1), 2 (w=100), 3 (w=5).
        let mut g = LevelGraph::with_nodes(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 100);
        g.add_edge(0, 3, 5);
        // Whatever the visit order, if 0 initiates it must pick 2.
        // Force determinism by checking all seeds give a valid matching and
        // that when 0 is matched first its mate is 2.
        let mate = heavy_edge_matching(&g, 0);
        if mate[0] != 0 {
            // 0 got matched to someone; if 2 was still free when 0 chose,
            // it must be 2 unless 2 initiated first and chose 0 (also ok).
            assert!(mate[0] == 2 || mate[2] == 0);
        }
    }

    #[test]
    fn contract_conserves_node_weight_and_shrinks() {
        let g = path(11);
        let mate = heavy_edge_matching(&g, 3);
        let (coarse, map) = contract(&g, &mate);
        assert_eq!(coarse.total_node_weight(), g.total_node_weight());
        assert!(coarse.node_count() < g.node_count());
        assert!(coarse.node_count() >= g.node_count() / 2);
        assert_eq!(map.len(), g.node_count());
        coarse.check_invariants().unwrap();
        // Edge weight can only shrink (folded into merged nodes).
        assert!(coarse.total_edge_weight() <= g.total_edge_weight());
    }

    #[test]
    fn contract_accumulates_parallel_edges() {
        // Square 0-1-2-3-0; match (0,1) and (2,3): coarse graph has 2 nodes
        // joined by the two cross edges 1-2 (w=2) and 3-0 (w=4) -> weight 6.
        let mut g = LevelGraph::with_nodes(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(3, 0, 4);
        let mate = vec![1, 0, 3, 2];
        let (coarse, map) = contract(&g, &mate);
        assert_eq!(coarse.node_count(), 2);
        assert_eq!(map, vec![0, 0, 1, 1]);
        assert_eq!(coarse.edge_weight(0, 1), Some(6));
        assert_eq!(coarse.node_weight(0), 2);
    }

    #[test]
    fn multilevel_set_invariants_hold() {
        let g = path(200);
        let set = MultilevelSet::build(
            g,
            &CoarsenConfig {
                min_nodes: 10,
                ..Default::default()
            },
        );
        assert!(set.level_count() > 2, "expected several levels");
        set.set.check_invariants().unwrap();
        // Strictly decreasing node counts.
        for w in set.set.levels.windows(2) {
            assert!(w[1].node_count() < w[0].node_count());
        }
    }

    #[test]
    fn coarsening_stops_at_min_nodes_or_stagnation() {
        let g = LevelGraph::with_nodes(50); // no edges: nothing can merge
        let set = MultilevelSet::build(g, &CoarsenConfig::default());
        assert_eq!(set.level_count(), 1, "edgeless graph must not coarsen");

        let g = path(1000);
        let config = CoarsenConfig {
            min_nodes: range_min(),
            ..Default::default()
        };
        let set = MultilevelSet::build(g, &config);
        assert!(set.set.coarsest().node_count() <= 1000);
        assert!(set.level_count() <= config.max_levels + 1);
    }

    fn range_min() -> usize {
        8
    }

    #[test]
    fn obs_records_levels_and_matching_rate() {
        let rec = Recorder::new(fc_obs::ObsOptions::logical());
        let set = MultilevelSet::build_obs(
            path(200),
            &CoarsenConfig {
                min_nodes: 10,
                ..Default::default()
            },
            &rec,
        );
        let snapshot = rec.snapshot();
        assert_eq!(
            snapshot.counters.get("coarsen.levels"),
            Some(&(set.level_count() as u64))
        );
        // One nodes/edges observation and one matching-rate observation per
        // produced coarse level.
        let coarse_levels = set.level_count() as u64 - 1;
        assert_eq!(
            snapshot.histograms.get("coarsen.level_nodes").map(|h| h.count),
            Some(coarse_levels)
        );
        assert!(
            snapshot
                .histograms
                .get("coarsen.matching_rate_permille")
                .map(|h| h.count >= coarse_levels)
                .unwrap_or(false)
        );
        // build() and build_obs() agree.
        let plain = MultilevelSet::build(
            path(200),
            &CoarsenConfig {
                min_nodes: 10,
                ..Default::default()
            },
        );
        assert_eq!(set.set.levels, plain.set.levels);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = MultilevelSet::build(path(300), &CoarsenConfig::default());
        let b = MultilevelSet::build(path(300), &CoarsenConfig::default());
        assert_eq!(a.set.levels.len(), b.set.levels.len());
        for (ga, gb) in a.set.levels.iter().zip(&b.set.levels) {
            assert_eq!(ga, gb);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = LevelGraph> {
        (
            2usize..40,
            proptest::collection::vec((0usize..40, 0usize..40, 1u64..100), 0..120),
        )
            .prop_map(|(n, raw_edges)| {
                let mut g = LevelGraph::with_nodes(n);
                for (u, v, w) in raw_edges {
                    let (u, v) = (u % n, v % n);
                    if u != v {
                        g.add_edge(u as NodeId, v as NodeId, w);
                    }
                }
                g
            })
    }

    proptest! {
        /// Matching validity: symmetric, partners are adjacent.
        #[test]
        fn matching_valid(g in arb_graph(), seed in 0u64..1000) {
            let mate = heavy_edge_matching(&g, seed);
            for v in 0..g.node_count() as NodeId {
                let m = mate[v as usize];
                prop_assert_eq!(mate[m as usize], v);
                if m != v {
                    prop_assert!(g.edge_weight(v, m).is_some());
                }
            }
        }

        /// Contraction conserves node weight and never grows edge weight;
        /// cut weight + folded weight equals original edge weight.
        #[test]
        fn contraction_conserves(g in arb_graph(), seed in 0u64..1000) {
            let mate = heavy_edge_matching(&g, seed);
            let (coarse, map) = contract(&g, &mate);
            prop_assert_eq!(coarse.total_node_weight(), g.total_node_weight());
            coarse.check_invariants().map_err(|e| TestCaseError::fail(e.to_string()))?;
            // Edge weight conservation: coarse edges carry exactly the
            // weight of fine edges whose endpoints map apart.
            let crossing: u64 = g
                .edges()
                .filter(|&(u, v, _)| map[u as usize] != map[v as usize])
                .map(|(_, _, w)| w)
                .sum();
            prop_assert_eq!(coarse.total_edge_weight(), crossing);
        }
    }
}
