//! # fc-classify — read classification and community-structure analysis
//! (paper §VI-E, Fig. 7)
//!
//! The paper aligns reads against the HMP gut reference database with BWA
//! and assigns each read the genus of its best hit, then studies how genera
//! distribute over graph partitions. Here the reference database is the
//! simulated taxonomy's genus genomes and the aligner is a k-mer best-hit
//! classifier ([`classifier`]) — equivalent for the purpose of producing
//! best-hit genus labels (see DESIGN.md §2).
//!
//! [`distribution`] builds the genus × partition read-fraction matrix of
//! Fig. 7 and the within/cross-phylum co-clustering summary; [`heatmap`]
//! renders the matrix as text/CSV.

pub mod accuracy;
pub mod classifier;
pub mod distribution;
pub mod error;
pub mod heatmap;

pub use accuracy::ClassifierAccuracy;
pub use classifier::KmerClassifier;
pub use distribution::{GenusDistribution, PhylumCoclustering};
pub use error::ClassifyError;
pub use heatmap::{render_csv, render_text};
