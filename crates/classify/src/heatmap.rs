//! Text and CSV rendering of the genus × partition heat map (Fig. 7).

use crate::distribution::GenusDistribution;
use std::fmt::Write as _;

/// Shade ramp from empty to full (fractions 0 → 1).
const SHADES: &[char] = &[' ', '·', '░', '▒', '▓', '█'];

/// Renders the distribution as a fixed-width text heat map, one row per
/// genus, one column per partition, darker = larger read fraction — the
/// terminal analogue of the paper's Fig. 7.
pub fn render_text(dist: &GenusDistribution) -> String {
    let k = dist.partition_count();
    let name_w = dist
        .genera
        .iter()
        .map(String::len)
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    // Header.
    let _ = write!(out, "{:name_w$} |", "");
    for p in 0..k {
        let _ = write!(out, "{:>3}", p + 1);
    }
    let _ = writeln!(out, " | reads");
    let _ = writeln!(out, "{}-+{}-+------", "-".repeat(name_w), "-".repeat(3 * k));
    for (g, name) in dist.genera.iter().enumerate() {
        let _ = write!(out, "{name:name_w$} |");
        let max = dist.concentration(g).max(f64::EPSILON);
        for p in 0..k {
            let f = dist.fractions[g][p];
            // Shade relative to the row maximum, as heat-map rows are read.
            let level = ((f / max) * (SHADES.len() - 1) as f64).round() as usize;
            let _ = write!(out, "  {}", SHADES[level.min(SHADES.len() - 1)]);
        }
        let _ = writeln!(out, " | {}", dist.genus_counts[g]);
    }
    let _ = writeln!(out, "(unclassified reads: {})", dist.unclassified);
    out
}

/// Renders the distribution as CSV: `genus,partition_1,…,partition_k,reads`.
pub fn render_csv(dist: &GenusDistribution) -> String {
    let k = dist.partition_count();
    let mut out = String::from("genus");
    for p in 0..k {
        let _ = write!(out, ",partition_{}", p + 1);
    }
    out.push_str(",classified_reads\n");
    for (g, name) in dist.genera.iter().enumerate() {
        let _ = write!(out, "{name}");
        for p in 0..k {
            let _ = write!(out, ",{:.4}", dist.fractions[g][p]);
        }
        let _ = writeln!(out, ",{}", dist.genus_counts[g]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GenusDistribution {
        GenusDistribution {
            genera: vec!["Bacteroides".to_string(), "Roseburia".to_string()],
            fractions: vec![vec![0.75, 0.25], vec![0.1, 0.9]],
            genus_counts: vec![40, 10],
            unclassified: 3,
        }
    }

    #[test]
    fn text_render_has_all_rows_and_counts() {
        let text = render_text(&sample());
        assert!(text.contains("Bacteroides"));
        assert!(text.contains("Roseburia"));
        assert!(text.contains("| 40"));
        assert!(text.contains("unclassified reads: 3"));
        // Row maxima render as the darkest shade.
        assert!(text.contains('█'));
    }

    #[test]
    fn csv_round_numbers() {
        let csv = render_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "genus,partition_1,partition_2,classified_reads");
        assert_eq!(lines[1], "Bacteroides,0.7500,0.2500,40");
        assert_eq!(lines[2], "Roseburia,0.1000,0.9000,10");
    }

    #[test]
    fn empty_distribution_renders() {
        let dist = GenusDistribution {
            genera: vec![],
            fractions: vec![],
            genus_counts: vec![],
            unclassified: 0,
        };
        assert!(render_text(&dist).contains("unclassified"));
        assert!(render_csv(&dist).starts_with("genus"));
    }
}
