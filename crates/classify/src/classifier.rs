//! K-mer best-hit read classification against reference genomes.

use crate::error::ClassifyError;
use fc_seq::{DnaString, Read};
use std::collections::HashMap;

/// A k-mer index over reference genomes that classifies reads to the
/// reference with the most k-mer hits (the "best hit", mirroring the
/// paper's BWA best-hit assignment).
#[derive(Debug, Clone)]
pub struct KmerClassifier {
    k: usize,
    /// k-mer → per-reference hit counts (sparse: `(ref index, count)`).
    index: HashMap<u64, Vec<(u32, u32)>>,
    references: usize,
}

impl KmerClassifier {
    /// Builds the index over `genomes` with k-mer length `k` (≤ 32). Both
    /// strands of each genome are indexed, since reads come from either.
    pub fn build(genomes: &[DnaString], k: usize) -> Result<KmerClassifier, ClassifyError> {
        if k == 0 || k > 32 {
            return Err(ClassifyError::Config {
                parameter: "k",
                message: format!("must be in 1..=32, got {k}"),
            });
        }
        if genomes.is_empty() {
            return Err(ClassifyError::Config {
                parameter: "genomes",
                message: "classifier needs at least one reference".to_string(),
            });
        }
        let mut index: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        for (gi, genome) in genomes.iter().enumerate() {
            for strand in [genome.clone(), genome.reverse_complement()] {
                for (_, kmer) in strand.kmers(k) {
                    let entry = index.entry(kmer).or_default();
                    match entry.iter_mut().find(|(r, _)| *r == gi as u32) {
                        Some((_, c)) => *c += 1,
                        None => entry.push((gi as u32, 1)),
                    }
                }
            }
        }
        Ok(KmerClassifier {
            k,
            index,
            references: genomes.len(),
        })
    }

    /// Number of references.
    pub fn reference_count(&self) -> usize {
        self.references
    }

    /// The k-mer length in use.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Classifies one read: the reference collecting the most k-mer hits.
    /// Returns `None` when no k-mer of the read occurs in any reference
    /// (the paper's "unclassified"). Ties resolve to the smaller reference
    /// index for determinism.
    pub fn classify(&self, read: &Read) -> Option<u32> {
        self.classify_seq(&read.seq)
    }

    /// Classifies a raw sequence (used for contigs as well as reads).
    pub fn classify_seq(&self, seq: &DnaString) -> Option<u32> {
        let mut scores = vec![0u64; self.references];
        let mut any = false;
        for (_, kmer) in seq.kmers(self.k) {
            if let Some(entry) = self.index.get(&kmer) {
                any = true;
                for &(r, c) in entry {
                    scores[r as usize] += c as u64;
                }
            }
        }
        if !any {
            return None;
        }
        let mut best = 0usize;
        for (i, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = i;
            }
        }
        Some(best as u32)
    }

    /// Classifies every read, returning one label per read.
    pub fn classify_all(&self, reads: &[Read]) -> Vec<Option<u32>> {
        reads.iter().map(|r| self.classify(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_sim::{GenomeConfig, MutationModel};

    fn genomes() -> Vec<DnaString> {
        (0..3)
            .map(|i| {
                fc_sim::genome::random_genome(
                    &GenomeConfig {
                        length: 2000,
                        ..Default::default()
                    },
                    100 + i,
                )
            })
            .collect()
    }

    #[test]
    fn classifies_exact_slices_to_their_source() {
        let refs = genomes();
        let classifier = KmerClassifier::build(&refs, 21).unwrap();
        for (gi, g) in refs.iter().enumerate() {
            for start in [0usize, 500, 1500] {
                let read = Read::new("r", g.slice(start, start + 100));
                assert_eq!(
                    classifier.classify(&read),
                    Some(gi as u32),
                    "genome {gi} @ {start}"
                );
            }
        }
    }

    #[test]
    fn classifies_reverse_strand_reads() {
        let refs = genomes();
        let classifier = KmerClassifier::build(&refs, 21).unwrap();
        let read = Read::new("r", refs[1].slice(300, 400).reverse_complement());
        assert_eq!(classifier.classify(&read), Some(1));
    }

    #[test]
    fn unrelated_sequence_is_unclassified() {
        let refs = genomes();
        let classifier = KmerClassifier::build(&refs, 21).unwrap();
        let alien = fc_sim::genome::random_genome(
            &GenomeConfig {
                length: 100,
                ..Default::default()
            },
            987654,
        );
        assert_eq!(classifier.classify(&Read::new("r", alien)), None);
    }

    #[test]
    fn tolerates_mutated_reads() {
        let refs = genomes();
        let classifier = KmerClassifier::build(&refs, 15).unwrap();
        // Derive a read from genome 2 with ~2% substitutions.
        let model = MutationModel {
            conserved_fraction: 1.0,
            conserved_divergence: 0.02,
            variable_divergence: 0.02,
            indel_rate: 0.0,
            segment_len: 100,
        };
        let mutated = fc_sim::genome::mutate_genome(&refs[2], &model, 5);
        let read = Read::new("r", mutated.slice(700, 800));
        assert_eq!(classifier.classify(&read), Some(2));
    }

    #[test]
    fn rejects_bad_parameters() {
        let refs = genomes();
        assert!(KmerClassifier::build(&refs, 0).is_err());
        assert!(KmerClassifier::build(&refs, 33).is_err());
        assert!(KmerClassifier::build(&[], 21).is_err());
    }

    #[test]
    fn classify_all_matches_individual_calls() {
        let refs = genomes();
        let classifier = KmerClassifier::build(&refs, 21).unwrap();
        let reads = vec![
            Read::new("a", refs[0].slice(0, 100)),
            Read::new("b", refs[2].slice(50, 150)),
        ];
        let labels = classifier.classify_all(&reads);
        assert_eq!(labels, vec![Some(0), Some(2)]);
    }
}
