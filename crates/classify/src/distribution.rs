//! The genus × partition distribution matrix (Fig. 7) and phylum
//! co-clustering summary.

use crate::error::ClassifyError;
use fc_seq::{ReadId, ReadStore};

/// Per-genus distribution of classified reads over graph partitions.
///
/// Entry `[genus][partition]` is the fraction of the genus's classified
/// reads whose graph nodes were assigned to that partition — exactly the
/// quantity shaded in the paper's Fig. 7 heat maps.
#[derive(Debug, Clone, PartialEq)]
pub struct GenusDistribution {
    /// Genus names (row labels).
    pub genera: Vec<String>,
    /// `fractions[g][p]`: fraction of genus `g`'s reads in partition `p`.
    pub fractions: Vec<Vec<f64>>,
    /// Classified reads per genus (row totals before normalisation).
    pub genus_counts: Vec<u64>,
    /// Reads that no reference matched.
    pub unclassified: u64,
}

impl GenusDistribution {
    /// Builds the matrix.
    ///
    /// * `store` — the preprocessed read store (nodes = strands),
    /// * `node_parts` — partition of every store node (projection of the
    ///   hybrid partition onto reads),
    /// * `labels` — per *original input read* genus labels (classifier
    ///   output; `None` = unclassified),
    /// * `genera` — genus names indexed by label,
    /// * `k` — partition count.
    pub fn build(
        store: &ReadStore,
        node_parts: &[u32],
        labels: &[Option<u32>],
        genera: &[String],
        k: usize,
    ) -> Result<GenusDistribution, ClassifyError> {
        if node_parts.len() != store.len() {
            return Err(ClassifyError::LengthMismatch {
                what: "node partition",
                got: node_parts.len(),
                expected: store.len(),
            });
        }
        let n_genera = genera.len();
        let mut counts = vec![vec![0u64; k]; n_genera];
        let mut genus_counts = vec![0u64; n_genera];
        let mut unclassified = 0u64;
        for id in store.ids() {
            let source = store.source_index(id);
            let label = labels.get(source).ok_or(ClassifyError::OutOfRange {
                what: "label entry",
                index: source,
                bound: labels.len(),
            })?;
            let part = node_parts[id.index()] as usize;
            if part >= k {
                return Err(ClassifyError::OutOfRange {
                    what: "partition",
                    index: part,
                    bound: k,
                });
            }
            match label {
                Some(g) => {
                    let g = *g as usize;
                    if g >= n_genera {
                        return Err(ClassifyError::OutOfRange {
                            what: "label",
                            index: g,
                            bound: n_genera,
                        });
                    }
                    counts[g][part] += 1;
                    genus_counts[g] += 1;
                }
                None => unclassified += 1,
            }
        }
        let fractions = counts
            .iter()
            .zip(&genus_counts)
            .map(|(row, &total)| {
                row.iter()
                    .map(|&c| {
                        if total == 0 {
                            0.0
                        } else {
                            c as f64 / total as f64
                        }
                    })
                    .collect()
            })
            .collect();
        Ok(GenusDistribution {
            genera: genera.to_vec(),
            fractions,
            genus_counts,
            unclassified,
        })
    }

    /// Number of partitions (columns).
    pub fn partition_count(&self) -> usize {
        self.fractions.first().map_or(0, Vec::len)
    }

    /// The partition holding the largest fraction of a genus's reads.
    pub fn dominant_partition(&self, genus: usize) -> usize {
        let row = &self.fractions[genus];
        let mut best = 0usize;
        for (p, &f) in row.iter().enumerate().skip(1) {
            if f > row[best] {
                best = p;
            }
        }
        best
    }

    /// Concentration of a genus: the maximum fraction any single partition
    /// holds. Under a uniform spread this would be `1 / k`; Fig. 7's claim
    /// is that real genera concentrate well above that.
    pub fn concentration(&self, genus: usize) -> f64 {
        self.fractions[genus].iter().cloned().fold(0.0, f64::max)
    }

    /// Cosine similarity between two genera's partition distributions.
    pub fn row_similarity(&self, a: usize, b: usize) -> f64 {
        cosine(&self.fractions[a], &self.fractions[b])
    }
}

/// Within-phylum vs. cross-phylum distribution similarity (Fig. 7's
/// "related genera cluster together" claim, quantified).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhylumCoclustering {
    /// Mean cosine similarity over same-phylum genus pairs.
    pub within_phylum: f64,
    /// Mean cosine similarity over cross-phylum genus pairs.
    pub cross_phylum: f64,
}

impl PhylumCoclustering {
    /// Computes the summary. `phylum_of[g]` assigns each genus a phylum
    /// index. Genera with no classified reads are skipped.
    pub fn compute(dist: &GenusDistribution, phylum_of: &[usize]) -> PhylumCoclustering {
        let mut within = (0.0, 0usize);
        let mut cross = (0.0, 0usize);
        let n = dist.genera.len();
        for a in 0..n {
            if dist.genus_counts[a] == 0 {
                continue;
            }
            for b in a + 1..n {
                if dist.genus_counts[b] == 0 {
                    continue;
                }
                let s = dist.row_similarity(a, b);
                if phylum_of[a] == phylum_of[b] {
                    within.0 += s;
                    within.1 += 1;
                } else {
                    cross.0 += s;
                    cross.1 += 1;
                }
            }
        }
        PhylumCoclustering {
            within_phylum: if within.1 == 0 {
                0.0
            } else {
                within.0 / within.1 as f64
            },
            cross_phylum: if cross.1 == 0 {
                0.0
            } else {
                cross.0 / cross.1 as f64
            },
        }
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Convenience: project a hybrid-graph partition onto store nodes. Thin
/// wrapper around [`fc_graph::HybridSet::project_partition_to_reads`] so
/// classification code does not need fc-graph directly.
pub fn node_partitions(hybrid: &fc_graph::HybridSet, hybrid_parts: &[u32]) -> Vec<u32> {
    hybrid.project_partition_to_reads(hybrid_parts)
}

/// Test/bench helper: store node id for the forward strand of input read
/// `i` in an RC-paired store.
pub fn forward_node_of(store: &ReadStore, kept_index: usize) -> ReadId {
    debug_assert!(kept_index * 2 < store.len());
    ReadId((kept_index * 2) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::{Read, TrimConfig};

    fn store_of(n: usize) -> ReadStore {
        let reads: Vec<Read> = (0..n)
            .map(|i| Read::new(format!("r{i}"), "ACGTACGTACGTACGTACGT".parse().unwrap()))
            .collect();
        ReadStore::preprocess(
            &reads,
            &TrimConfig {
                min_read_len: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn fractions_normalise_per_genus() {
        let store = store_of(4); // 8 nodes
                                 // Nodes of reads 0,1 -> partition 0; reads 2,3 -> partition 1.
        let node_parts = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let labels = vec![Some(0), Some(0), Some(1), None];
        let genera = vec!["A".to_string(), "B".to_string()];
        let dist = GenusDistribution::build(&store, &node_parts, &labels, &genera, 2).unwrap();
        assert_eq!(dist.fractions[0], vec![1.0, 0.0]);
        assert_eq!(dist.fractions[1], vec![0.0, 1.0]);
        assert_eq!(dist.genus_counts, vec![4, 2]);
        assert_eq!(dist.unclassified, 2);
        assert_eq!(dist.dominant_partition(0), 0);
        assert_eq!(dist.dominant_partition(1), 1);
        assert_eq!(dist.concentration(0), 1.0);
    }

    #[test]
    fn split_strands_count_in_their_own_partitions() {
        let store = store_of(1);
        let node_parts = vec![0, 1]; // forward in P0, RC in P1
        let labels = vec![Some(0)];
        let genera = vec!["A".to_string()];
        let dist = GenusDistribution::build(&store, &node_parts, &labels, &genera, 2).unwrap();
        assert_eq!(dist.fractions[0], vec![0.5, 0.5]);
    }

    #[test]
    fn input_validation() {
        let store = store_of(2);
        let genera = vec!["A".to_string()];
        // Wrong partition vector length.
        assert!(
            GenusDistribution::build(&store, &[0, 0], &[Some(0), Some(0)], &genera, 1).is_err()
        );
        // Partition out of range.
        assert!(
            GenusDistribution::build(&store, &[0, 0, 3, 0], &[Some(0), Some(0)], &genera, 2)
                .is_err()
        );
        // Label out of range.
        assert!(
            GenusDistribution::build(&store, &[0, 0, 0, 0], &[Some(5), Some(0)], &genera, 2)
                .is_err()
        );
    }

    #[test]
    fn coclustering_separates_phyla() {
        let store = store_of(4);
        // Genera 0,1 (phylum X) both concentrate in P0; genera 2,3
        // (phylum Y) both in P1.
        let node_parts = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let labels = vec![Some(0), Some(1), Some(2), Some(3)];
        let genera: Vec<String> = (0..4).map(|i| format!("G{i}")).collect();
        let dist = GenusDistribution::build(&store, &node_parts, &labels, &genera, 2).unwrap();
        let phylum_of = vec![0, 0, 1, 1];
        let cc = PhylumCoclustering::compute(&dist, &phylum_of);
        assert!(cc.within_phylum > cc.cross_phylum);
        assert!((cc.within_phylum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }
}
