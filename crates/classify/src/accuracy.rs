//! Classifier validation against simulation ground truth.
//!
//! The paper's Fig. 7 pipeline trusts BWA best-hit labels. Our substitute
//! classifier can be *checked*, because the simulator records every read's
//! true genus. This module computes the confusion matrix and summary rates
//! that justify the substitution (DESIGN.md §2) — and documents where the
//! classifier is expected to confuse genera (reads from shared conserved
//! islands are genuinely ambiguous).

use crate::error::ClassifyError;
use fc_sim::ReadOrigin;

/// Confusion matrix and summary rates of a classification run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierAccuracy {
    /// `confusion[truth][predicted]` read counts.
    pub confusion: Vec<Vec<u64>>,
    /// Reads the classifier declined to label, per true genus.
    pub unclassified: Vec<u64>,
    /// Micro-averaged accuracy over classified reads.
    pub accuracy: f64,
    /// Fraction of all reads left unclassified.
    pub unclassified_rate: f64,
}

impl ClassifierAccuracy {
    /// Builds the matrix from predicted labels and ground-truth origins.
    /// `labels[i]` corresponds to `origins[i]`.
    pub fn assess(
        labels: &[Option<u32>],
        origins: &[ReadOrigin],
        n_genera: usize,
    ) -> Result<ClassifierAccuracy, ClassifyError> {
        if labels.len() != origins.len() {
            return Err(ClassifyError::LengthMismatch {
                what: "labels",
                got: labels.len(),
                expected: origins.len(),
            });
        }
        let mut confusion = vec![vec![0u64; n_genera]; n_genera];
        let mut unclassified = vec![0u64; n_genera];
        let mut correct = 0u64;
        let mut classified = 0u64;
        for (label, origin) in labels.iter().zip(origins) {
            let truth = origin.genus as usize;
            if truth >= n_genera {
                return Err(ClassifyError::OutOfRange {
                    what: "origin genus",
                    index: truth,
                    bound: n_genera,
                });
            }
            match label {
                None => unclassified[truth] += 1,
                Some(p) => {
                    let p = *p as usize;
                    if p >= n_genera {
                        return Err(ClassifyError::OutOfRange {
                            what: "label",
                            index: p,
                            bound: n_genera,
                        });
                    }
                    confusion[truth][p] += 1;
                    classified += 1;
                    if p == truth {
                        correct += 1;
                    }
                }
            }
        }
        let total = labels.len() as u64;
        Ok(ClassifierAccuracy {
            confusion,
            unclassified,
            accuracy: if classified == 0 {
                0.0
            } else {
                correct as f64 / classified as f64
            },
            unclassified_rate: if total == 0 {
                0.0
            } else {
                (total - classified) as f64 / total as f64
            },
        })
    }

    /// Per-genus recall: correctly labelled / total reads of the genus
    /// (unclassified count against recall).
    pub fn recall(&self, genus: usize) -> f64 {
        let row_total: u64 = self.confusion[genus].iter().sum::<u64>() + self.unclassified[genus];
        if row_total == 0 {
            0.0
        } else {
            self.confusion[genus][genus] as f64 / row_total as f64
        }
    }

    /// The most common wrong label for a genus, if any misclassification
    /// occurred.
    pub fn dominant_confusion(&self, genus: usize) -> Option<usize> {
        self.confusion[genus]
            .iter()
            .enumerate()
            .filter(|&(p, &c)| p != genus && c > 0)
            .max_by_key(|&(_, &c)| c)
            .map(|(p, _)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin(genus: u32) -> ReadOrigin {
        ReadOrigin {
            genus,
            position: 0,
            reverse: false,
        }
    }

    #[test]
    fn perfect_classification() {
        let labels = vec![Some(0), Some(1), Some(1)];
        let origins = vec![origin(0), origin(1), origin(1)];
        let acc = ClassifierAccuracy::assess(&labels, &origins, 2).unwrap();
        assert_eq!(acc.accuracy, 1.0);
        assert_eq!(acc.unclassified_rate, 0.0);
        assert_eq!(acc.recall(0), 1.0);
        assert_eq!(acc.recall(1), 1.0);
        assert_eq!(acc.dominant_confusion(0), None);
    }

    #[test]
    fn confusion_and_unclassified_counted() {
        let labels = vec![Some(1), Some(0), None, Some(0)];
        let origins = vec![origin(0), origin(0), origin(1), origin(0)];
        let acc = ClassifierAccuracy::assess(&labels, &origins, 2).unwrap();
        // Classified: 3; correct: 1 (the Some(0) for genus 0 ... two of them
        // are genus-0 labelled 0? labels[1]=0 truth 0 correct, labels[3]=0
        // truth 0 correct, labels[0]=1 truth 0 wrong.
        assert!((acc.accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert!((acc.unclassified_rate - 0.25).abs() < 1e-12);
        assert_eq!(acc.confusion[0][1], 1);
        assert_eq!(acc.unclassified[1], 1);
        assert_eq!(acc.dominant_confusion(0), Some(1));
        assert_eq!(acc.recall(1), 0.0);
    }

    #[test]
    fn validation_errors() {
        assert!(ClassifierAccuracy::assess(&[Some(0)], &[], 1).is_err());
        assert!(ClassifierAccuracy::assess(&[Some(5)], &[origin(0)], 2).is_err());
        assert!(ClassifierAccuracy::assess(&[Some(0)], &[origin(7)], 2).is_err());
    }

    #[test]
    fn classifier_on_simulated_dataset_is_accurate() {
        // End-to-end: the k-mer classifier against its own taxonomy's data.
        let dataset =
            fc_sim::generate_dataset("acc", &fc_sim::DatasetConfig::test_scale(), 17).unwrap();
        let genomes: Vec<fc_seq::DnaString> = dataset
            .taxonomy
            .genera
            .iter()
            .map(|g| g.genome.clone())
            .collect();
        let classifier = crate::KmerClassifier::build(&genomes, 21).unwrap();
        let labels = classifier.classify_all(&dataset.reads);
        let acc =
            ClassifierAccuracy::assess(&labels, &dataset.origins, dataset.taxonomy.genus_count())
                .unwrap();
        assert!(
            acc.accuracy > 0.95,
            "classifier accuracy too low: {}",
            acc.accuracy
        );
        assert!(
            acc.unclassified_rate < 0.05,
            "too many unclassified: {}",
            acc.unclassified_rate
        );
    }
}
