//! Error type for read classification and distribution analysis.

use std::fmt;

/// Errors produced while building classifiers or distribution matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassifyError {
    /// An invalid classifier parameter.
    Config {
        /// Offending parameter name (e.g. `k`).
        parameter: &'static str,
        /// What went wrong, including the offending value.
        message: String,
    },
    /// Two parallel inputs disagree in length.
    LengthMismatch {
        /// What was being compared (e.g. `labels`).
        what: &'static str,
        /// Observed length.
        got: usize,
        /// Required length.
        expected: usize,
    },
    /// An index (genus label, partition id, read) is out of range.
    OutOfRange {
        /// What kind of index (e.g. `label`, `partition`).
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Exclusive upper bound.
        bound: usize,
    },
}

impl fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassifyError::Config { parameter, message } => {
                write!(f, "invalid {parameter}: {message}")
            }
            ClassifyError::LengthMismatch {
                what,
                got,
                expected,
            } => {
                write!(f, "{what} length {got} != expected {expected}")
            }
            ClassifyError::OutOfRange { what, index, bound } => {
                write!(f, "{what} {index} out of range (< {bound} required)")
            }
        }
    }
}

impl std::error::Error for ClassifyError {}
