//! Phred quality scores.

use crate::error::SeqError;

/// FASTQ Phred+33 encoding offset (Sanger / Illumina 1.8+).
pub const PHRED_OFFSET: u8 = 33;

/// Highest Phred score representable in the Sanger encoding.
pub const MAX_PHRED: u8 = 93;

/// Per-base Phred quality scores for one read.
///
/// Scores are stored as raw Phred values (0–93), not ASCII. The paper's
/// preprocessing step (§II-A) trims reads from the 3' end using a sliding
/// window over these values; see [`crate::trim`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QualityScores {
    scores: Vec<u8>,
}

impl QualityScores {
    /// Wraps raw Phred scores, clamping each to [`MAX_PHRED`].
    pub fn from_phred(scores: Vec<u8>) -> QualityScores {
        QualityScores {
            scores: scores.into_iter().map(|q| q.min(MAX_PHRED)).collect(),
        }
    }

    /// Decodes a FASTQ quality line (Phred+33 ASCII).
    pub fn from_fastq_line(line: &[u8]) -> Result<QualityScores, SeqError> {
        let mut scores = Vec::with_capacity(line.len());
        for (i, &c) in line.iter().enumerate() {
            if !(PHRED_OFFSET..=PHRED_OFFSET + MAX_PHRED).contains(&c) {
                return Err(SeqError::InvalidBase {
                    position: i,
                    byte: c,
                });
            }
            scores.push(c - PHRED_OFFSET);
        }
        Ok(QualityScores { scores })
    }

    /// Encodes as a FASTQ quality line (Phred+33 ASCII).
    pub fn to_fastq_line(&self) -> Vec<u8> {
        self.scores.iter().map(|&q| q + PHRED_OFFSET).collect()
    }

    /// Number of scores.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True if there are no scores.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Raw Phred values.
    pub fn as_slice(&self) -> &[u8] {
        &self.scores
    }

    /// Score at position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> u8 {
        self.scores[i]
    }

    /// Mean score over `range`, or `None` for an empty range.
    pub fn window_mean(&self, start: usize, end: usize) -> Option<f64> {
        if start >= end || end > self.scores.len() {
            return None;
        }
        let sum: u32 = self.scores[start..end].iter().map(|&q| q as u32).sum();
        Some(sum as f64 / (end - start) as f64)
    }

    /// Keeps only the scores in `0..new_len` (used when the read is trimmed).
    pub fn truncate(&mut self, new_len: usize) {
        self.scores.truncate(new_len);
    }

    /// Keeps only the scores in `start..`, dropping the prefix.
    pub fn drop_prefix(&mut self, start: usize) {
        self.scores.drain(..start.min(self.scores.len()));
    }

    /// Scores in reverse order (quality of a reverse-complemented read).
    pub fn reversed(&self) -> QualityScores {
        QualityScores {
            scores: self.scores.iter().rev().copied().collect(),
        }
    }
}

impl fc_ckpt::Codec for QualityScores {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_bytes(&self.scores);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<QualityScores, fc_ckpt::CkptError> {
        let scores = r.bytes()?.to_vec();
        if let Some(&bad) = scores.iter().find(|&&q| q > MAX_PHRED) {
            return Err(fc_ckpt::CkptError::Decode {
                detail: format!("Phred score {bad} exceeds the maximum {MAX_PHRED}"),
            });
        }
        Ok(QualityScores { scores })
    }
}

/// Converts a Phred score to its error probability `10^(-q/10)`.
pub fn phred_to_error_probability(q: u8) -> f64 {
    10f64.powf(-(q as f64) / 10.0)
}

/// Converts an error probability to the nearest Phred score, clamped to 0–93.
pub fn error_probability_to_phred(p: f64) -> u8 {
    if p <= 0.0 {
        return MAX_PHRED;
    }
    let q = -10.0 * p.log10();
    q.round().clamp(0.0, MAX_PHRED as f64) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastq_line_round_trip() {
        let line = b"IIIIHHH###";
        let q = QualityScores::from_fastq_line(line).unwrap();
        assert_eq!(q.to_fastq_line(), line.to_vec());
        assert_eq!(q.get(0), b'I' - 33);
    }

    #[test]
    fn rejects_out_of_range_ascii() {
        assert!(QualityScores::from_fastq_line(b"II\x1fII").is_err());
    }

    #[test]
    fn window_mean_basic_and_empty() {
        let q = QualityScores::from_phred(vec![10, 20, 30, 40]);
        assert_eq!(q.window_mean(0, 4), Some(25.0));
        assert_eq!(q.window_mean(1, 3), Some(25.0));
        assert_eq!(q.window_mean(2, 2), None);
        assert_eq!(q.window_mean(0, 5), None);
    }

    #[test]
    fn phred_probability_round_trip() {
        for q in [0u8, 10, 20, 30, 40] {
            let p = phred_to_error_probability(q);
            assert_eq!(error_probability_to_phred(p), q);
        }
        assert_eq!(error_probability_to_phred(0.0), MAX_PHRED);
    }

    #[test]
    fn from_phred_clamps() {
        let q = QualityScores::from_phred(vec![200]);
        assert_eq!(q.get(0), MAX_PHRED);
    }

    #[test]
    fn reversed_reverses() {
        let q = QualityScores::from_phred(vec![1, 2, 3]);
        assert_eq!(q.reversed().as_slice(), &[3, 2, 1]);
    }
}
