//! FASTQ parsing and writing.

use crate::alphabet::Base;
use crate::dna::DnaString;
use crate::error::SeqError;
use crate::quality::QualityScores;
use crate::read::Read;
use std::io::{BufRead, Write};

/// Parses a four-line-per-record FASTQ stream.
///
/// The separator line must start with `+`; its optional repeated name is
/// ignored, as is customary. Quality strings must match the sequence length.
pub fn parse<R: BufRead>(input: R) -> Result<Vec<Read>, SeqError> {
    let mut lines = input.lines();
    let mut reads = Vec::new();
    let mut line_no = 0usize;

    loop {
        let header = match lines.next() {
            None => break,
            Some(l) => {
                line_no += 1;
                l?
            }
        };
        let header = header.trim_end();
        if header.is_empty() {
            continue;
        }
        let name = header.strip_prefix('@').ok_or_else(|| SeqError::Format {
            line: line_no,
            message: "expected '@' header".to_string(),
        })?;
        let name = name.trim().to_string();

        let seq_line = next_line(&mut lines, &mut line_no, "sequence")?;
        let mut seq = DnaString::with_capacity(seq_line.len());
        for (i, c) in seq_line.bytes().enumerate() {
            match Base::from_ascii(c) {
                Some(b) => seq.push(b),
                None => {
                    return Err(SeqError::Format {
                        line: line_no,
                        message: format!("invalid base {:?} at column {}", c as char, i + 1),
                    })
                }
            }
        }

        let sep = next_line(&mut lines, &mut line_no, "separator")?;
        if !sep.starts_with('+') {
            return Err(SeqError::Format {
                line: line_no,
                message: "expected '+' separator".to_string(),
            });
        }

        let qual_line = next_line(&mut lines, &mut line_no, "quality")?;
        let qual = QualityScores::from_fastq_line(qual_line.as_bytes())?;
        if qual.len() != seq.len() {
            return Err(SeqError::QualityLengthMismatch {
                record: name,
                seq_len: seq.len(),
                qual_len: qual.len(),
            });
        }
        reads.push(Read::with_quality(name, seq, qual));
    }
    Ok(reads)
}

fn next_line(
    lines: &mut impl Iterator<Item = std::io::Result<String>>,
    line_no: &mut usize,
    what: &'static str,
) -> Result<String, SeqError> {
    match lines.next() {
        Some(l) => {
            *line_no += 1;
            Ok(l?.trim_end().to_string())
        }
        None => Err(SeqError::Truncated {
            line: *line_no,
            missing: what,
        }),
    }
}

/// Writes reads as FASTQ. Reads without quality scores get a uniform score of
/// `default_phred`.
pub fn write<W: Write>(mut out: W, reads: &[Read], default_phred: u8) -> Result<(), SeqError> {
    for read in reads {
        write_read(&mut out, read, default_phred)?;
    }
    Ok(())
}

/// Writes a single FASTQ record — the exact byte format of [`write`], exposed
/// separately so generators can stream records to a writer one at a time
/// instead of collecting the whole read set first.
pub fn write_read<W: Write>(mut out: W, read: &Read, default_phred: u8) -> Result<(), SeqError> {
    writeln!(out, "@{}", read.name)?;
    out.write_all(&read.seq.to_ascii())?;
    writeln!(out, "\n+")?;
    let qual = match &read.qual {
        Some(q) => q.to_fastq_line(),
        None => QualityScores::from_phred(vec![default_phred; read.len()]).to_fastq_line(),
    };
    out.write_all(&qual)?;
    writeln!(out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "@r1\nACGT\n+\nIIII\n@r2 desc\nTT\n+r2 desc\nAB\n";

    #[test]
    fn parses_records_and_quality() {
        let reads = parse(Cursor::new(SAMPLE)).unwrap();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].name, "r1");
        assert_eq!(reads[0].seq.to_string(), "ACGT");
        assert_eq!(
            reads[0].qual.as_ref().unwrap().as_slice(),
            &[40, 40, 40, 40]
        );
        assert_eq!(reads[1].name, "r2 desc");
        assert_eq!(
            reads[1].qual.as_ref().unwrap().as_slice(),
            &[b'A' - 33, b'B' - 33]
        );
    }

    #[test]
    fn rejects_quality_length_mismatch() {
        let err = parse(Cursor::new("@r\nACGT\n+\nII\n")).unwrap_err();
        assert!(matches!(
            err,
            SeqError::QualityLengthMismatch {
                seq_len: 4,
                qual_len: 2,
                ..
            }
        ));
    }

    #[test]
    fn rejects_missing_separator() {
        let err = parse(Cursor::new("@r\nACGT\nIIII\nIIII\n")).unwrap_err();
        assert!(matches!(err, SeqError::Format { line: 3, .. }));
    }

    #[test]
    fn rejects_truncated_record() {
        let err = parse(Cursor::new("@r\nACGT\n+\n")).unwrap_err();
        assert!(matches!(
            err,
            SeqError::Truncated {
                missing: "quality",
                ..
            }
        ));
        let err = parse(Cursor::new("@r\nACGT\n")).unwrap_err();
        assert!(matches!(
            err,
            SeqError::Truncated {
                missing: "separator",
                ..
            }
        ));
        let err = parse(Cursor::new("@r\n")).unwrap_err();
        assert!(matches!(
            err,
            SeqError::Truncated {
                missing: "sequence",
                ..
            }
        ));
    }

    #[test]
    fn crlf_line_endings_parse_identically() {
        let crlf = SAMPLE.replace('\n', "\r\n");
        assert_eq!(
            parse(Cursor::new(crlf)).unwrap(),
            parse(Cursor::new(SAMPLE)).unwrap()
        );
    }

    /// Regression test for truncated input: cutting a valid two-record file
    /// after any byte must never panic. Both the collecting parser and the
    /// streaming reader either fail with a typed error or return only the
    /// records that are complete in the prefix.
    #[test]
    fn every_truncation_point_is_handled_without_panic() {
        for cut in 0..SAMPLE.len() {
            let prefix = &SAMPLE.as_bytes()[..cut];
            let parsed = parse(Cursor::new(prefix));
            let streamed: Result<Vec<Read>, SeqError> = Reader::new(Cursor::new(prefix)).collect();
            match (&parsed, &streamed) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "cut at byte {cut}");
                    assert!(a.len() <= 2, "cut at byte {cut}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("parse/stream disagree at byte {cut}: {parsed:?} vs {streamed:?}"),
            }
        }
    }

    #[test]
    fn write_parse_round_trip() {
        let reads = parse(Cursor::new(SAMPLE)).unwrap();
        let mut buf = Vec::new();
        write(&mut buf, &reads, 30).unwrap();
        let again = parse(Cursor::new(buf)).unwrap();
        assert_eq!(again, reads);
    }

    #[test]
    fn write_fills_default_quality_for_fasta_reads() {
        let reads = vec![Read::new("a", "ACG".parse().unwrap())];
        let mut buf = Vec::new();
        write(&mut buf, &reads, 25).unwrap();
        let again = parse(Cursor::new(buf)).unwrap();
        assert_eq!(again[0].qual.as_ref().unwrap().as_slice(), &[25, 25, 25]);
    }
}

/// A streaming FASTQ reader yielding one [`Read`] at a time — constant
/// memory regardless of file size.
pub struct Reader<R: BufRead> {
    lines: std::iter::Enumerate<std::io::Lines<R>>,
    done: bool,
}

impl<R: BufRead> Reader<R> {
    /// Wraps a buffered source.
    pub fn new(input: R) -> Reader<R> {
        Reader {
            lines: input.lines().enumerate(),
            done: false,
        }
    }

    fn take_line(&mut self, what: &'static str) -> Result<Option<(usize, String)>, SeqError> {
        match self.lines.next() {
            None if what == "header" => Ok(None),
            None => Err(SeqError::Truncated {
                line: 0,
                missing: what,
            }),
            Some((_, Err(e))) => Err(e.into()),
            Some((i, Ok(line))) => Ok(Some((i + 1, line.trim_end().to_string()))),
        }
    }
}

impl<R: BufRead> Iterator for Reader<R> {
    type Item = Result<Read, SeqError>;

    fn next(&mut self) -> Option<Result<Read, SeqError>> {
        if self.done {
            return None;
        }
        let result = (|| -> Result<Option<Read>, SeqError> {
            // Header (skipping blank lines).
            let (line_no, header) = loop {
                match self.take_line("header")? {
                    None => return Ok(None),
                    Some((_, l)) if l.is_empty() => continue,
                    Some(found) => break found,
                }
            };
            let name = header
                .strip_prefix('@')
                .ok_or_else(|| SeqError::Format {
                    line: line_no,
                    message: "expected '@' header".to_string(),
                })?
                .trim()
                .to_string();
            let (seq_no, seq_line) =
                self.take_line("sequence")?
                    .ok_or(SeqError::Truncated {
                        line: line_no,
                        missing: "sequence",
                    })?;
            let mut seq = DnaString::with_capacity(seq_line.len());
            for (col, c) in seq_line.bytes().enumerate() {
                match Base::from_ascii(c) {
                    Some(b) => seq.push(b),
                    None => {
                        return Err(SeqError::Format {
                            line: seq_no,
                            message: format!("invalid base {:?} at column {}", c as char, col + 1),
                        })
                    }
                }
            }
            let (sep_no, sep) = self
                .take_line("separator")?
                .ok_or(SeqError::Truncated {
                    line: seq_no,
                    missing: "separator",
                })?;
            if !sep.starts_with('+') {
                return Err(SeqError::Format {
                    line: sep_no,
                    message: "expected '+' separator".to_string(),
                });
            }
            let (_, qual_line) = self.take_line("quality")?.ok_or(SeqError::Truncated {
                line: sep_no,
                missing: "quality",
            })?;
            let qual = QualityScores::from_fastq_line(qual_line.as_bytes())?;
            if qual.len() != seq.len() {
                return Err(SeqError::QualityLengthMismatch {
                    record: name,
                    seq_len: seq.len(),
                    qual_len: qual.len(),
                });
            }
            Ok(Some(Read::with_quality(name, seq, qual)))
        })();
        match result {
            Ok(Some(read)) => Some(Ok(read)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Shared helper for the mutilated-input proptests (FASTA and FASTQ): one
/// deterministic mutation of a byte buffer, driven by `(op, pos, byte)`.
#[cfg(test)]
pub(crate) fn mutilate(text: &mut Vec<u8>, op: u8, pos: usize, byte: u8) {
    if text.is_empty() {
        return;
    }
    let pos = pos % text.len();
    match op % 5 {
        0 => text.truncate(pos),
        1 => text[pos] = byte,
        2 => text.insert(pos, byte),
        3 => {
            text.remove(pos);
        }
        _ => {
            // Convert every LF to CRLF.
            let mut out = Vec::with_capacity(text.len() + 8);
            for &b in text.iter() {
                if b == b'\n' {
                    out.push(b'\r');
                }
                out.push(b);
            }
            *text = out;
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::alphabet::Base;
    use proptest::prelude::*;
    use std::io::Cursor;

    /// A syntactically valid FASTQ byte stream built from arbitrary records.
    fn render(records: &[Vec<(u8, u8)>]) -> Vec<u8> {
        let mut text = Vec::new();
        for (i, pairs) in records.iter().enumerate() {
            text.extend_from_slice(format!("@r{i}\n").as_bytes());
            for &(b, _) in pairs {
                text.push(Base::from_code(b % 4).to_ascii());
            }
            text.extend_from_slice(b"\n+\n");
            for &(_, q) in pairs {
                text.push(33 + q % 94);
            }
            text.push(b'\n');
        }
        text
    }

    proptest! {
        /// Corpus of mutilated FASTQ inputs (truncations, byte smashes,
        /// insertions, deletions, CRLF conversion — composed): parsing must
        /// never panic, and the collecting parser and the streaming reader
        /// must agree on success and on the parsed reads.
        #[test]
        fn mutilated_input_never_panics_and_streaming_agrees(
            records in proptest::collection::vec(
                proptest::collection::vec((0u8..4, 0u8..94), 0..20),
                0..5,
            ),
            ops in proptest::collection::vec(
                (0u8..5, 0usize..65536, 0u8..255),
                0..4,
            ),
        ) {
            let mut text = render(&records);
            for &(op, pos, byte) in &ops {
                mutilate(&mut text, op, pos, byte);
            }
            let parsed = parse(Cursor::new(text.clone()));
            let streamed: Result<Vec<Read>, SeqError> =
                Reader::new(Cursor::new(text)).collect();
            match (&parsed, &streamed) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "parse/stream disagree: {:?} vs {:?}",
                    parsed.is_ok(),
                    streamed.is_ok()
                ),
            }
        }
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn streaming_matches_parse() {
        let text = "@r1\nACGT\n+\nIIII\n@r2\nTT\n+\nAB\n";
        let collected: Result<Vec<Read>, SeqError> = Reader::new(Cursor::new(text)).collect();
        assert_eq!(collected.unwrap(), parse(Cursor::new(text)).unwrap());
    }

    #[test]
    fn streaming_stops_after_error() {
        let text = "@r1\nACGT\n+\nII\n@r2\nTT\n+\nAB\n";
        let mut reader = Reader::new(Cursor::new(text));
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none());
    }

    #[test]
    fn streaming_handles_truncation() {
        let mut reader = Reader::new(Cursor::new("@r1\nACGT\n+\n"));
        assert!(reader.next().unwrap().is_err());
    }
}
