//! # fc-seq — sequence substrate for the Focus assembler
//!
//! This crate provides the DNA-sequence foundation used by every other crate
//! in the workspace:
//!
//! * [`Base`] and [`DnaString`] — a 2-bit packed DNA sequence type with
//!   reverse-complement, slicing and k-mer iteration, plus the zero-copy
//!   word-level [`packed::PackedView`] consumed by bit-parallel aligners,
//! * [`QualityScores`] — Phred quality values with FASTQ encoding,
//! * [`Read`] and [`ReadStore`] — sequencing reads and the container the
//!   assembler operates on, including reverse-complement augmentation and
//!   subset splitting (paper §II-A),
//! * FASTA/FASTQ parsing and writing ([`fasta`], [`fastq`]),
//! * read trimming ([`trim`]) — fixed 5'/3' trimming and the paper's
//!   sliding-window 3' quality trimming.

pub mod alphabet;
pub mod dna;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod packed;
pub mod paged;
pub mod quality;
pub mod read;
pub mod store;
pub mod trim;

pub use alphabet::Base;
pub use dna::DnaString;
pub use error::SeqError;
pub use packed::PackedView;
pub use paged::{PagedError, PagedReadStore, PagedStoreWriter};
pub use quality::QualityScores;
pub use read::{Read, ReadId};
pub use store::{Orientation, ReadStore, ReadStoreBuilder};
pub use trim::TrimConfig;
