//! Sequencing reads.

use crate::dna::DnaString;
use crate::quality::QualityScores;

/// Identifier of a read within a [`crate::ReadStore`].
///
/// Read ids are dense indices assigned in insertion order; the overlap graph
/// uses them directly as node ids, so they are kept as a newtype to avoid
/// mixing them up with node or partition indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReadId(pub u32);

impl ReadId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One sequencing read: a name, its bases and (for FASTQ input) per-base
/// quality scores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Read {
    /// Record name (FASTA/FASTQ header without the leading marker).
    pub name: String,
    /// The bases.
    pub seq: DnaString,
    /// Per-base Phred scores; `None` for FASTA input.
    pub qual: Option<QualityScores>,
}

impl Read {
    /// Creates a read without quality scores.
    pub fn new(name: impl Into<String>, seq: DnaString) -> Read {
        Read {
            name: name.into(),
            seq,
            qual: None,
        }
    }

    /// Creates a read with quality scores.
    ///
    /// # Panics
    /// Panics if the quality length differs from the sequence length; callers
    /// parsing untrusted input should validate first (the FASTQ parser does).
    pub fn with_quality(name: impl Into<String>, seq: DnaString, qual: QualityScores) -> Read {
        assert_eq!(seq.len(), qual.len(), "quality/sequence length mismatch");
        Read {
            name: name.into(),
            seq,
            qual: Some(qual),
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the read has no bases left (e.g. trimmed away entirely).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Approximate resident bytes of this read (struct plus heap), rounded
    /// *up*: the memory-budget ledger charges this estimate before the data
    /// exists, so overestimating is safe (spill a little early) while
    /// underestimating would let a capped run overshoot its budget.
    pub fn approx_bytes(&self) -> usize {
        // One Vec header per heap block (name, packed words, qualities).
        const VEC_HEADER: usize = 3 * std::mem::size_of::<usize>();
        let packed_words = self.seq.len().div_ceil(32) * 8;
        std::mem::size_of::<Read>()
            + (self.name.len() + VEC_HEADER)
            + (packed_words + VEC_HEADER)
            + self.qual.as_ref().map_or(0, |q| q.len() + VEC_HEADER)
    }

    /// The reverse complement of this read. Quality scores are reversed, and
    /// the name gets a `/rc` suffix so provenance stays visible in output.
    pub fn reverse_complement(&self) -> Read {
        Read {
            name: format!("{}/rc", self.name),
            seq: self.seq.reverse_complement(),
            qual: self.qual.as_ref().map(QualityScores::reversed),
        }
    }
}

impl fc_ckpt::Codec for Read {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.name.encode(w);
        self.seq.encode(w);
        self.qual.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<Read, fc_ckpt::CkptError> {
        let name = String::decode(r)?;
        let seq = DnaString::decode(r)?;
        let qual = Option::<QualityScores>::decode(r)?;
        if let Some(q) = &qual {
            if q.len() != seq.len() {
                return Err(fc_ckpt::CkptError::Decode {
                    detail: format!(
                        "read {name:?}: {} quality scores for {} bases",
                        q.len(),
                        seq.len()
                    ),
                });
            }
        }
        Ok(Read { name, seq, qual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_codec_round_trips_reads() {
        let seq: DnaString = "AACG".parse().unwrap();
        let qual = QualityScores::from_phred(vec![10, 20, 30, 40]);
        let read = Read::with_quality("r1", seq.clone(), qual);
        let plain = Read::new("r2", seq);
        for r in [&read, &plain] {
            let bytes = fc_ckpt::encode_to_vec(r);
            let back: Read = fc_ckpt::decode_from_slice(&bytes).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn reverse_complement_flips_sequence_and_quality() {
        let seq: DnaString = "AACG".parse().unwrap();
        let qual = QualityScores::from_phred(vec![10, 20, 30, 40]);
        let read = Read::with_quality("r1", seq, qual);
        let rc = read.reverse_complement();
        assert_eq!(rc.name, "r1/rc");
        assert_eq!(rc.seq.to_string(), "CGTT");
        assert_eq!(rc.qual.unwrap().as_slice(), &[40, 30, 20, 10]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn with_quality_rejects_mismatched_lengths() {
        let seq: DnaString = "AACG".parse().unwrap();
        let qual = QualityScores::from_phred(vec![10]);
        let _ = Read::with_quality("r1", seq, qual);
    }

    #[test]
    fn read_id_index() {
        assert_eq!(ReadId(7).index(), 7);
    }
}
