//! The read store: preprocessing output and the substrate the overlap graph
//! is built over (paper §II-A).

use crate::error::SeqError;
use crate::read::{Read, ReadId};
use crate::trim::{trim_read, TrimConfig};

/// Strand of a stored read relative to its source read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The read as sequenced.
    Forward,
    /// The generated reverse complement (paper §II-A adds one per read).
    ReverseComplement,
}

/// A container of preprocessed reads.
///
/// After [`ReadStore::preprocess`], the store holds each surviving input read
/// immediately followed by its reverse complement, so forward reads occupy
/// even indices and their reverse complements the following odd index. Read
/// ids are dense and become overlap-graph node ids downstream.
#[derive(Debug, Clone, Default)]
pub struct ReadStore {
    reads: Vec<Read>,
    /// `true` when the store is forward/RC interleaved (built by `preprocess`
    /// or `from_reads_with_rc`).
    rc_paired: bool,
    /// Index of the source read (pre-trimming) each stored read came from.
    source: Vec<u32>,
}

impl ReadStore {
    /// Wraps reads as-is, without reverse complements.
    pub fn from_reads(reads: Vec<Read>) -> ReadStore {
        let source = (0..reads.len() as u32).collect();
        ReadStore {
            reads,
            rc_paired: false,
            source,
        }
    }

    /// Runs the §II-A preprocessing pipeline: trim every read with `config`,
    /// drop reads shorter than `config.min_read_len`, then append the reverse
    /// complement of each survivor directly after it.
    pub fn preprocess(input: &[Read], config: &TrimConfig) -> Result<ReadStore, SeqError> {
        let mut builder = ReadStoreBuilder::new(config)?;
        for read in input {
            builder.push(read);
        }
        Ok(builder.finish())
    }

    /// Rebuilds an RC-paired store from already-trimmed forward reads and
    /// their source indices (e.g. staged pages); the reverse complements are
    /// regenerated, which is what `preprocess` would have produced.
    pub(crate) fn from_trimmed(pairs: impl IntoIterator<Item = (Read, u32)>) -> ReadStore {
        let mut reads = Vec::new();
        let mut source = Vec::new();
        for (fwd, src) in pairs {
            let rc = fwd.reverse_complement();
            reads.push(fwd);
            source.push(src);
            reads.push(rc);
            source.push(src);
        }
        ReadStore {
            reads,
            rc_paired: true,
            source,
        }
    }

    /// Number of stored reads (forward + reverse complements).
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// True if the store holds no reads.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }

    /// Number of *source* reads that survived preprocessing (half of
    /// [`len`](ReadStore::len) for an RC-paired store).
    pub fn source_read_count(&self) -> usize {
        if self.rc_paired {
            self.reads.len() / 2
        } else {
            self.reads.len()
        }
    }

    /// The read with id `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    pub fn get(&self, id: ReadId) -> &Read {
        &self.reads[id.index()]
    }

    /// All stored reads in id order.
    pub fn reads(&self) -> &[Read] {
        &self.reads
    }

    /// All read ids.
    pub fn ids(&self) -> impl Iterator<Item = ReadId> + 'static {
        (0..self.reads.len() as u32).map(ReadId)
    }

    /// Orientation of a stored read. Meaningful only for RC-paired stores;
    /// plain stores report everything as forward.
    pub fn orientation(&self, id: ReadId) -> Orientation {
        if self.rc_paired && id.0 % 2 == 1 {
            Orientation::ReverseComplement
        } else {
            Orientation::Forward
        }
    }

    /// For an RC-paired store, the id of the other strand of the same source
    /// read; `None` for plain stores.
    pub fn mate(&self, id: ReadId) -> Option<ReadId> {
        if self.rc_paired {
            Some(ReadId(id.0 ^ 1))
        } else {
            None
        }
    }

    /// Index of the original input read a stored read was derived from.
    pub fn source_index(&self, id: ReadId) -> usize {
        self.source[id.index()] as usize
    }

    /// Total number of stored bases.
    pub fn total_bases(&self) -> usize {
        self.reads.iter().map(Read::len).sum()
    }

    /// Approximate heap footprint of the store in bytes (reads plus the
    /// source-index column), for memory-budget accounting. Deliberately
    /// an overestimate, never an underestimate — see
    /// [`Read::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        self.reads.iter().map(Read::approx_bytes).sum::<usize>()
            + self.source.len() * std::mem::size_of::<u32>()
    }

    /// Splits the id space into `n` contiguous subsets of near-equal size for
    /// the parallel aligner (paper §II-A/B). Subset sizes differ by at most
    /// one; empty subsets are produced only when `n > len`.
    pub fn split_subsets(&self, n: usize) -> Vec<Vec<ReadId>> {
        assert!(n > 0, "subset count must be positive");
        let len = self.reads.len();
        let base = len / n;
        let extra = len % n;
        let mut out = Vec::with_capacity(n);
        let mut next = 0u32;
        for s in 0..n {
            let size = base + usize::from(s < extra);
            out.push((next..next + size as u32).map(ReadId).collect());
            next += size as u32;
        }
        out
    }
}

/// Incremental construction of an RC-paired [`ReadStore`], one input read
/// at a time.
///
/// [`ReadStore::preprocess`] is this builder driven over a slice. The
/// builder exists so a streaming ingest (FASTQ reader → store) can apply
/// the exact trim/filter/reverse-complement pipeline without ever holding
/// the raw input in memory: feed each parsed read to [`push`] and drop it.
/// The resulting store is byte-identical to preprocessing the collected
/// input — source indices count every pushed read, kept or not, exactly
/// like `preprocess`'s enumeration does.
///
/// [`push`]: ReadStoreBuilder::push
#[derive(Debug)]
pub struct ReadStoreBuilder {
    config: TrimConfig,
    reads: Vec<Read>,
    source: Vec<u32>,
    next_source: u32,
}

impl ReadStoreBuilder {
    /// Starts a builder with a validated trim configuration.
    pub fn new(config: &TrimConfig) -> Result<ReadStoreBuilder, SeqError> {
        config.validate()?;
        Ok(ReadStoreBuilder {
            config: *config,
            reads: Vec::new(),
            source: Vec::new(),
            next_source: 0,
        })
    }

    /// Trims one input read and, if it survives the length filter, appends
    /// it and its reverse complement to the store under construction.
    ///
    /// Returns the approximate bytes the store grew by ([`Read::approx_bytes`]
    /// of both strands; 0 when the read was dropped) so a memory-budget
    /// ledger can be charged incrementally during streaming ingest.
    pub fn push(&mut self, read: &Read) -> usize {
        let i = self.next_source;
        self.next_source += 1;
        let trimmed = trim_read(read, &self.config);
        if trimmed.len() < self.config.min_read_len.max(1) {
            return 0;
        }
        let rc = trimmed.reverse_complement();
        let grown = trimmed.approx_bytes() + rc.approx_bytes();
        self.reads.push(trimmed);
        self.source.push(i);
        self.reads.push(rc);
        self.source.push(i);
        grown
    }

    /// Input reads seen so far (kept or dropped).
    pub fn reads_in(&self) -> usize {
        self.next_source as usize
    }

    /// The forward strand and source index of the most recently kept read
    /// — what a streaming ingest stages to disk right after a [`push`]
    /// that returned non-zero.
    ///
    /// [`push`]: ReadStoreBuilder::push
    pub fn last_kept(&self) -> Option<(&Read, u32)> {
        let n = self.reads.len();
        (n >= 2).then(|| (&self.reads[n - 2], self.source[n - 2]))
    }

    /// Source reads that survived trimming so far.
    pub fn reads_kept(&self) -> usize {
        self.reads.len() / 2
    }

    /// Approximate resident bytes of the store built so far.
    pub fn approx_bytes(&self) -> usize {
        self.reads.iter().map(Read::approx_bytes).sum::<usize>()
            + self.source.len() * std::mem::size_of::<u32>()
    }

    /// Finishes the RC-paired store.
    pub fn finish(self) -> ReadStore {
        ReadStore {
            reads: self.reads,
            rc_paired: true,
            source: self.source,
        }
    }
}

impl fc_ckpt::Codec for ReadStore {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.reads.encode(w);
        self.rc_paired.encode(w);
        self.source.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<ReadStore, fc_ckpt::CkptError> {
        let reads = Vec::<Read>::decode(r)?;
        let rc_paired = bool::decode(r)?;
        let source = Vec::<u32>::decode(r)?;
        if source.len() != reads.len() {
            return Err(fc_ckpt::CkptError::Decode {
                detail: format!(
                    "ReadStore has {} source indices for {} reads",
                    source.len(),
                    reads.len()
                ),
            });
        }
        if rc_paired && reads.len() % 2 != 0 {
            return Err(fc_ckpt::CkptError::Decode {
                detail: format!("RC-paired ReadStore has odd read count {}", reads.len()),
            });
        }
        Ok(ReadStore {
            reads,
            rc_paired,
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityScores;

    fn input_reads() -> Vec<Read> {
        let mk = |name: &str, seq: &str, q: u8| {
            let seq: crate::DnaString = seq.parse().unwrap();
            let qual = QualityScores::from_phred(vec![q; seq.len()]);
            Read::with_quality(name, seq, qual)
        };
        vec![
            mk("good1", "ACGTACGTAC", 35),
            mk("bad", "ACGTACGTAC", 2),
            mk("good2", "TTTTACGTAC", 35),
        ]
    }

    fn config() -> TrimConfig {
        TrimConfig {
            window_len: 4,
            step: 1,
            min_quality: 20.0,
            min_read_len: 5,
            ..TrimConfig::default()
        }
    }

    #[test]
    fn preprocess_drops_bad_and_pairs_rc() {
        let store = ReadStore::preprocess(&input_reads(), &config()).unwrap();
        assert_eq!(store.source_read_count(), 2);
        assert_eq!(store.len(), 4);
        assert_eq!(store.orientation(ReadId(0)), Orientation::Forward);
        assert_eq!(store.orientation(ReadId(1)), Orientation::ReverseComplement);
        assert_eq!(store.mate(ReadId(0)), Some(ReadId(1)));
        assert_eq!(store.mate(ReadId(3)), Some(ReadId(2)));
        assert_eq!(
            store.get(ReadId(1)).seq.to_string(),
            store.get(ReadId(0)).seq.reverse_complement().to_string()
        );
        // Source tracking skips the dropped read.
        assert_eq!(store.source_index(ReadId(2)), 2);
    }

    #[test]
    fn builder_matches_batch_preprocess() {
        let input = input_reads();
        let batch = ReadStore::preprocess(&input, &config()).unwrap();
        let mut builder = ReadStoreBuilder::new(&config()).unwrap();
        let mut grown = 0usize;
        for read in &input {
            grown += builder.push(read);
        }
        assert_eq!(builder.reads_in(), input.len());
        assert_eq!(builder.reads_kept(), batch.source_read_count());
        assert!(grown <= builder.approx_bytes());
        let streamed = builder.finish();
        assert_eq!(streamed.reads(), batch.reads());
        for id in batch.ids() {
            assert_eq!(streamed.source_index(id), batch.source_index(id));
        }
    }

    #[test]
    fn from_trimmed_regenerates_reverse_complements() {
        let batch = ReadStore::preprocess(&input_reads(), &config()).unwrap();
        let pairs: Vec<(Read, u32)> = (0..batch.len())
            .step_by(2)
            .map(|i| {
                let id = ReadId(i as u32);
                (batch.get(id).clone(), batch.source_index(id) as u32)
            })
            .collect();
        let rebuilt = ReadStore::from_trimmed(pairs);
        assert_eq!(rebuilt.reads(), batch.reads());
    }

    #[test]
    fn plain_store_has_no_mates() {
        let store = ReadStore::from_reads(input_reads());
        assert_eq!(store.mate(ReadId(0)), None);
        assert_eq!(store.orientation(ReadId(1)), Orientation::Forward);
        assert_eq!(store.source_read_count(), 3);
    }

    #[test]
    fn split_subsets_cover_all_ids_disjointly() {
        let store = ReadStore::preprocess(&input_reads(), &config()).unwrap();
        for n in 1..=6 {
            let subsets = store.split_subsets(n);
            assert_eq!(subsets.len(), n);
            let mut all: Vec<u32> = subsets.iter().flatten().map(|id| id.0).collect();
            all.sort_unstable();
            assert_eq!(all, (0..store.len() as u32).collect::<Vec<_>>(), "n={n}");
            let sizes: Vec<usize> = subsets.iter().map(Vec::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "n={n} sizes={sizes:?}");
        }
    }

    #[test]
    fn total_bases_sums_reads() {
        let store = ReadStore::from_reads(input_reads());
        assert_eq!(store.total_bases(), 30);
    }

    #[test]
    fn checkpoint_codec_round_trips_both_store_kinds() {
        let paired = ReadStore::preprocess(&input_reads(), &config()).unwrap();
        let plain = ReadStore::from_reads(input_reads());
        for store in [&paired, &plain] {
            let bytes = fc_ckpt::encode_to_vec(store);
            let back: ReadStore = fc_ckpt::decode_from_slice(&bytes).unwrap();
            assert_eq!(back.reads(), store.reads());
            assert_eq!(back.source_read_count(), store.source_read_count());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::quality::QualityScores;
    use proptest::prelude::*;

    fn arb_reads() -> impl Strategy<Value = Vec<Read>> {
        proptest::collection::vec(proptest::collection::vec((0u8..4, 10u8..40), 1..80), 0..12)
            .prop_map(|reads| {
                reads
                    .into_iter()
                    .enumerate()
                    .map(|(i, pairs)| {
                        let seq: crate::DnaString = pairs
                            .iter()
                            .map(|&(b, _)| crate::Base::from_code(b))
                            .collect();
                        let quals =
                            QualityScores::from_phred(pairs.iter().map(|&(_, q)| q).collect());
                        Read::with_quality(format!("r{i}"), seq, quals)
                    })
                    .collect()
            })
    }

    proptest! {
        /// Preprocessing invariants: even/odd strand pairing, RC mates are
        /// exact reverse complements, sources are monotone.
        #[test]
        fn preprocess_invariants(reads in arb_reads()) {
            let config = TrimConfig { min_read_len: 1, ..TrimConfig::default() };
            let store = ReadStore::preprocess(&reads, &config).unwrap();
            prop_assert_eq!(store.len() % 2, 0);
            let mut last_source = 0usize;
            for i in (0..store.len()).step_by(2) {
                let fwd = ReadId(i as u32);
                let rc = ReadId(i as u32 + 1);
                prop_assert_eq!(store.mate(fwd), Some(rc));
                prop_assert_eq!(
                    store.get(rc).seq.to_string(),
                    store.get(fwd).seq.reverse_complement().to_string()
                );
                let src = store.source_index(fwd);
                prop_assert_eq!(store.source_index(rc), src);
                prop_assert!(src >= last_source);
                last_source = src;
            }
        }

        /// Subset splitting is a disjoint near-even cover for any n.
        #[test]
        fn subsets_cover(reads in arb_reads(), n in 1usize..9) {
            let store = ReadStore::from_reads(reads);
            let subsets = store.split_subsets(n);
            let mut all: Vec<u32> = subsets.iter().flatten().map(|id| id.0).collect();
            all.sort_unstable();
            let expect: Vec<u32> = (0..store.len() as u32).collect();
            prop_assert_eq!(all, expect);
            let sizes: Vec<usize> = subsets.iter().map(Vec::len).collect();
            prop_assert!(sizes.iter().max().unwrap_or(&0) - sizes.iter().min().unwrap_or(&0) <= 1);
        }
    }
}
