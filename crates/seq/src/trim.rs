//! Read trimming (paper §II-A).
//!
//! Two trimming stages run on every read before alignment:
//!
//! 1. **Fixed trimming** removes a user-specified number of bases from the 5'
//!    and 3' ends (tags/adaptors).
//! 2. **Quality trimming** slides a window of length `window_len` from the 3'
//!    end towards the 5' end in steps of `step`; at each position the mean
//!    Phred score of the window is computed. The first time the mean exceeds
//!    `min_quality`, everything from the right end of that window to the 3'
//!    end of the read is cut off. If no window qualifies, the whole read is
//!    discarded (trimmed to zero length).

use crate::error::SeqError;
use crate::read::Read;

/// Parameters for the two-stage trimming of §II-A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrimConfig {
    /// Bases removed unconditionally from the 5' end.
    pub trim_5prime: usize,
    /// Bases removed unconditionally from the 3' end.
    pub trim_3prime: usize,
    /// Sliding-window length `l`.
    pub window_len: usize,
    /// Window step size `k` (towards the 5' end).
    pub step: usize,
    /// Minimum mean Phred score `q` for a window to stop the trimming scan.
    pub min_quality: f64,
    /// Reads shorter than this after trimming are dropped by the store.
    pub min_read_len: usize,
}

impl Default for TrimConfig {
    fn default() -> TrimConfig {
        TrimConfig {
            trim_5prime: 0,
            trim_3prime: 0,
            window_len: 10,
            step: 1,
            min_quality: 20.0,
            min_read_len: 40,
        }
    }
}

impl TrimConfig {
    /// Validates parameter sanity (non-zero window and step).
    pub fn validate(&self) -> Result<(), SeqError> {
        if self.window_len == 0 {
            return Err(SeqError::Config {
                parameter: "window_len",
                message: "must be > 0",
            });
        }
        if self.step == 0 {
            return Err(SeqError::Config {
                parameter: "step",
                message: "must be > 0",
            });
        }
        Ok(())
    }
}

/// Applies fixed 5'/3' trimming followed by sliding-window quality trimming.
///
/// Reads without quality scores (FASTA input) only receive the fixed
/// trimming. Returns the trimmed read; the caller decides whether the result
/// is long enough to keep (see [`TrimConfig::min_read_len`]).
pub fn trim_read(read: &Read, config: &TrimConfig) -> Read {
    let len = read.len();
    let start = config.trim_5prime.min(len);
    let end = len.saturating_sub(config.trim_3prime).max(start);

    let mut seq = read.seq.slice(start, end);
    let mut qual = read.qual.clone().map(|mut q| {
        q.truncate(end);
        q.drop_prefix(start);
        q
    });

    if let Some(q) = &qual {
        let keep = quality_keep_len(q.as_slice(), config);
        seq = seq.slice(0, keep);
        if let Some(q) = &mut qual {
            q.truncate(keep);
        }
    }

    Read {
        name: read.name.clone(),
        seq,
        qual,
    }
}

/// Returns how many 5'-side bases survive the sliding-window scan.
///
/// Windows are anchored at the 3' end and move towards the 5' end in `step`
/// increments. The first window whose mean quality exceeds `min_quality`
/// determines the cut: the read keeps bases `0..right_end_of_window`.
fn quality_keep_len(scores: &[u8], config: &TrimConfig) -> usize {
    let n = scores.len();
    if n < config.window_len {
        // Too short for a full window: keep iff the whole read qualifies.
        let sum: u32 = scores.iter().map(|&q| q as u32).sum();
        if n > 0 && sum as f64 / n as f64 > config.min_quality {
            return n;
        }
        return 0;
    }
    let mut window_end = n;
    loop {
        let window_start = window_end - config.window_len;
        let sum: u32 = scores[window_start..window_end]
            .iter()
            .map(|&q| q as u32)
            .sum();
        let mean = sum as f64 / config.window_len as f64;
        if mean > config.min_quality {
            return window_end;
        }
        if window_start < config.step {
            // The next slide would run past the 5' end: no window qualified.
            return 0;
        }
        window_end -= config.step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityScores;

    fn read_with_quals(seq: &str, quals: Vec<u8>) -> Read {
        Read::with_quality("r", seq.parse().unwrap(), QualityScores::from_phred(quals))
    }

    #[test]
    fn fixed_trim_both_ends() {
        let read = Read::new("r", "AACCGGTT".parse().unwrap());
        let config = TrimConfig {
            trim_5prime: 2,
            trim_3prime: 3,
            ..TrimConfig::default()
        };
        let out = trim_read(&read, &config);
        assert_eq!(out.seq.to_string(), "CCG");
    }

    #[test]
    fn fixed_trim_larger_than_read_empties_it() {
        let read = Read::new("r", "ACGT".parse().unwrap());
        let config = TrimConfig {
            trim_5prime: 3,
            trim_3prime: 3,
            ..TrimConfig::default()
        };
        assert!(trim_read(&read, &config).is_empty());
    }

    #[test]
    fn quality_trim_cuts_low_quality_tail() {
        // 6 good bases (q=30) then 4 bad ones (q=2); window 4, step 1, q>20.
        let read = read_with_quals("ACGTACGTAC", vec![30, 30, 30, 30, 30, 30, 2, 2, 2, 2]);
        let config = TrimConfig {
            window_len: 4,
            step: 1,
            min_quality: 20.0,
            ..TrimConfig::default()
        };
        let out = trim_read(&read, &config);
        // The first (rightmost) window whose mean exceeds 20 is scores[3..7]
        // = (30+30+30+2)/4 = 23 -> keep 0..7.
        assert_eq!(out.len(), 7);
        assert_eq!(out.qual.unwrap().len(), 7);
    }

    #[test]
    fn quality_trim_keeps_whole_good_read() {
        let read = read_with_quals("ACGTACGT", vec![35; 8]);
        let config = TrimConfig {
            window_len: 4,
            step: 2,
            min_quality: 20.0,
            ..TrimConfig::default()
        };
        assert_eq!(trim_read(&read, &config).len(), 8);
    }

    #[test]
    fn quality_trim_discards_hopeless_read() {
        let read = read_with_quals("ACGTACGT", vec![2; 8]);
        let config = TrimConfig {
            window_len: 4,
            step: 1,
            min_quality: 20.0,
            ..TrimConfig::default()
        };
        assert!(trim_read(&read, &config).is_empty());
    }

    #[test]
    fn short_read_handled_without_full_window() {
        let good = read_with_quals("ACG", vec![30, 30, 30]);
        let bad = read_with_quals("ACG", vec![2, 2, 2]);
        let config = TrimConfig {
            window_len: 10,
            step: 1,
            min_quality: 20.0,
            ..TrimConfig::default()
        };
        assert_eq!(trim_read(&good, &config).len(), 3);
        assert!(trim_read(&bad, &config).is_empty());
    }

    #[test]
    fn fasta_read_only_gets_fixed_trim() {
        let read = Read::new("r", "AACCGGTT".parse().unwrap());
        let config = TrimConfig {
            trim_5prime: 1,
            ..TrimConfig::default()
        };
        assert_eq!(trim_read(&read, &config).seq.to_string(), "ACCGGTT");
    }

    #[test]
    fn validate_rejects_zero_window_or_step() {
        assert!(TrimConfig {
            window_len: 0,
            ..TrimConfig::default()
        }
        .validate()
        .is_err());
        assert!(TrimConfig {
            step: 0,
            ..TrimConfig::default()
        }
        .validate()
        .is_err());
        assert!(TrimConfig::default().validate().is_ok());
    }

    #[test]
    fn step_larger_than_one_respected() {
        // 12 scores: last 6 bad, first 6 good. window 4, step 3.
        let read = read_with_quals(
            "ACGTACGTACGT",
            vec![30, 30, 30, 30, 30, 30, 2, 2, 2, 2, 2, 2],
        );
        let config = TrimConfig {
            window_len: 4,
            step: 3,
            min_quality: 20.0,
            ..TrimConfig::default()
        };
        let out = trim_read(&read, &config);
        // Windows end at 12 (mean 2), 9 (mean (30+2+2+2)/4=9), 6 (mean 30) -> keep 6.
        assert_eq!(out.len(), 6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::quality::QualityScores;
    use proptest::prelude::*;

    fn arb_read() -> impl Strategy<Value = Read> {
        proptest::collection::vec((0u8..4, 0u8..42), 0..150).prop_map(|pairs| {
            let seq: crate::DnaString = pairs
                .iter()
                .map(|&(b, _)| crate::Base::from_code(b))
                .collect();
            let quals = QualityScores::from_phred(pairs.iter().map(|&(_, q)| q).collect());
            Read::with_quality("p", seq, quals)
        })
    }

    fn arb_config() -> impl Strategy<Value = TrimConfig> {
        (0usize..20, 0usize..20, 1usize..15, 1usize..6, 0.0f64..40.0).prop_map(
            |(t5, t3, window_len, step, min_quality)| TrimConfig {
                trim_5prime: t5,
                trim_3prime: t3,
                window_len,
                step,
                min_quality,
                min_read_len: 0,
            },
        )
    }

    proptest! {
        /// Trimming never grows a read and keeps quality aligned with
        /// sequence.
        #[test]
        fn trim_shrinks_and_stays_aligned(read in arb_read(), config in arb_config()) {
            let out = trim_read(&read, &config);
            prop_assert!(out.len() <= read.len());
            if let Some(q) = &out.qual {
                prop_assert_eq!(q.len(), out.len());
            }
            // The surviving sequence is a contiguous slice of the original.
            if !out.is_empty() {
                let start = config.trim_5prime.min(read.len());
                for i in 0..out.len() {
                    prop_assert_eq!(out.seq.get(i), read.seq.get(start + i));
                }
            }
        }

        /// Trimming is idempotent for pure quality trimming (no fixed
        /// trim): re-trimming the output changes nothing, because the
        /// surviving window already passed the threshold.
        #[test]
        fn quality_trim_idempotent(read in arb_read(), config in arb_config()) {
            let config = TrimConfig { trim_5prime: 0, trim_3prime: 0, ..config };
            let once = trim_read(&read, &config);
            let twice = trim_read(&once, &config);
            prop_assert_eq!(once, twice);
        }
    }
}
