//! Zero-copy word-level access to 2-bit packed DNA.
//!
//! The alignment kernels (fc-align) consume sequences word-at-a-time: the
//! Myers bit-parallel kernel builds its `Peq` match tables from 32-base
//! windows, and the exact-overlap shortcut compares candidate ranges 32
//! bases per machine word. [`PackedView`] exposes the packed words of a
//! [`DnaString`](crate::DnaString) read-only, so those kernels run without
//! per-call decoding into byte buffers and without copying sequence data —
//! views are freely shared across fc-exec worker threads.
//!
//! Layout contract (shared with [`crate::dna`]): two bits per base, code
//! `base.code()`, 32 bases per `u64`, the first base in the lowest bits,
//! and all padding bits past the logical length are zero (enforced by the
//! `DnaString` constructors and its checkpoint decoder).

/// Number of bases packed into one `u64` word.
pub const BASES_PER_WORD: usize = 32;

/// A read-only, zero-copy view of a 2-bit packed DNA sequence.
///
/// Obtained from [`DnaString::packed`](crate::DnaString::packed). The view
/// borrows the underlying words; it is `Copy` and cheap to pass by value.
#[derive(Debug, Clone, Copy)]
pub struct PackedView<'a> {
    words: &'a [u64],
    len: usize,
}

impl<'a> PackedView<'a> {
    /// Creates a view over `words` holding `len` bases. Padding bits past
    /// `len` must be zero (the `DnaString` representation guarantees this).
    pub(crate) fn new(words: &'a [u64], len: usize) -> PackedView<'a> {
        debug_assert!(words.len() == len.div_ceil(BASES_PER_WORD));
        PackedView { words, len }
    }

    /// Number of bases in the viewed sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the viewed sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw packed words (first base in the lowest bits of `words[0]`).
    #[inline]
    pub fn words(&self) -> &'a [u64] {
        self.words
    }

    /// 2-bit code of the base at `i` (same value as `get(i).code()`).
    ///
    /// # Panics
    /// Panics in debug builds if `i >= self.len()`.
    #[inline]
    pub fn code(&self, i: usize) -> u8 {
        debug_assert!(i < self.len, "index {i} out of bounds for length {}", self.len);
        ((self.words[i / BASES_PER_WORD] >> ((i % BASES_PER_WORD) * 2)) & 0b11) as u8
    }

    /// A 64-bit window holding the 32 bases starting at `start` (first base
    /// in the lowest two bits). Bases past the end of the sequence read as
    /// zero — callers that care about the tail mask it themselves.
    ///
    /// # Panics
    /// Panics in debug builds if `start > self.len()`.
    #[inline]
    pub fn window(&self, start: usize) -> u64 {
        debug_assert!(start <= self.len, "window start {start} past length {}", self.len);
        let bit = start * 2;
        let (w, sh) = (bit / 64, bit % 64);
        let lo = self.words.get(w).copied().unwrap_or(0) >> sh;
        if sh == 0 {
            lo
        } else {
            lo | (self.words.get(w + 1).copied().unwrap_or(0) << (64 - sh))
        }
    }

    /// True if `self[start..start + count]` equals `other[ostart..ostart +
    /// count]`, compared 32 bases per step through the packed words.
    ///
    /// # Panics
    /// Panics in debug builds if either range is out of bounds.
    pub fn range_eq(&self, start: usize, other: &PackedView<'_>, ostart: usize, count: usize) -> bool {
        debug_assert!(start + count <= self.len, "left range out of bounds");
        debug_assert!(ostart + count <= other.len, "right range out of bounds");
        let mut off = 0;
        while off + BASES_PER_WORD <= count {
            if self.window(start + off) != other.window(ostart + off) {
                return false;
            }
            off += BASES_PER_WORD;
        }
        let tail = count - off;
        if tail == 0 {
            return true;
        }
        let mask = (1u64 << (2 * tail)) - 1;
        (self.window(start + off) ^ other.window(ostart + off)) & mask == 0
    }

    /// Appends the 2-bit codes of `self[start..end]` to `out` (which is
    /// cleared first), 32 bases per packed-word read.
    ///
    /// # Panics
    /// Panics in debug builds if the range is out of bounds.
    pub fn fill_codes(&self, start: usize, end: usize, out: &mut Vec<u8>) {
        debug_assert!(start <= end && end <= self.len, "range out of bounds");
        out.clear();
        out.reserve(end - start);
        let mut pos = start;
        while pos < end {
            let chunk = (end - pos).min(BASES_PER_WORD);
            let mut window = self.window(pos);
            for _ in 0..chunk {
                out.push((window & 0b11) as u8);
                window >>= 2;
            }
            pos += chunk;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::DnaString;

    fn seq(pattern: &str, repeat: usize) -> DnaString {
        pattern.repeat(repeat).parse().unwrap()
    }

    /// Deterministic xorshift generator for irregular test sequences.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }

    fn random_seq(len: usize, seed: u64) -> DnaString {
        let mut rng = Rng(seed.max(1));
        (0..len)
            .map(|_| crate::Base::from_code((rng.next() % 4) as u8))
            .collect()
    }

    #[test]
    fn codes_match_get_across_word_boundaries() {
        for len in [0usize, 1, 31, 32, 33, 63, 64, 65, 100] {
            let s = random_seq(len, len as u64 + 1);
            let v = s.packed();
            assert_eq!(v.len(), len);
            assert_eq!(v.is_empty(), len == 0);
            for i in 0..len {
                assert_eq!(v.code(i), s.get(i).code(), "len {len} index {i}");
            }
        }
    }

    #[test]
    fn window_reads_32_bases_at_any_offset() {
        let s = random_seq(100, 7);
        let v = s.packed();
        for start in 0..=s.len() {
            let window = v.window(start);
            for i in 0..32.min(s.len() - start) {
                assert_eq!(
                    ((window >> (2 * i)) & 0b11) as u8,
                    v.code(start + i),
                    "start {start} offset {i}"
                );
            }
            // Bases past the end read as zero.
            for i in s.len().saturating_sub(start)..32 {
                assert_eq!((window >> (2 * i)) & 0b11, 0, "start {start} offset {i}");
            }
        }
    }

    #[test]
    fn range_eq_agrees_with_base_comparison() {
        let a = seq("ACGTTGCA", 16); // 128 bases
        let b = random_seq(128, 3);
        let mut rng = Rng(99);
        let (va, vb) = (a.packed(), b.packed());
        for _ in 0..500 {
            let count = (rng.next() % 90) as usize;
            let sa = (rng.next() as usize) % (a.len() - count + 1);
            let sb = (rng.next() as usize) % (b.len() - count + 1);
            let naive = (0..count).all(|i| a.get(sa + i) == b.get(sb + i));
            assert_eq!(va.range_eq(sa, &vb, sb, count), naive, "a[{sa}..] vs b[{sb}..] x{count}");
            // A sequence always equals itself on the same range.
            assert!(va.range_eq(sa, &va, sa, count));
        }
    }

    #[test]
    fn range_eq_detects_single_base_difference_in_tail() {
        let a = seq("ACGT", 20); // 80 bases
        let mut b = a.clone();
        b.set(79, b.get(79).complement());
        assert!(a.packed().range_eq(0, &b.packed(), 0, 79));
        assert!(!a.packed().range_eq(0, &b.packed(), 0, 80));
    }

    #[test]
    fn fill_codes_round_trips() {
        let s = random_seq(90, 11);
        let v = s.packed();
        let mut out = vec![9u8; 4]; // stale contents must be cleared
        v.fill_codes(5, 77, &mut out);
        assert_eq!(out.len(), 72);
        for (i, &c) in out.iter().enumerate() {
            assert_eq!(c, s.get(5 + i).code());
        }
        v.fill_codes(0, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_ranges_compare_equal() {
        let a = random_seq(10, 1);
        let b = random_seq(10, 2);
        assert!(a.packed().range_eq(3, &b.packed(), 7, 0));
        assert!(a.packed().range_eq(10, &b.packed(), 10, 0));
    }
}
