//! FASTA parsing and writing.

use crate::dna::DnaString;
use crate::error::SeqError;
use crate::read::Read;
use std::io::{BufRead, Write};

/// Parses a FASTA stream into reads.
///
/// Multi-line sequences are supported; blank lines between records are
/// ignored. Sequence characters outside `ACGTacgt` are an error — the
/// assembler's 2-bit alphabet has no ambiguity codes, and the simulator never
/// produces them (see DESIGN.md).
pub fn parse<R: BufRead>(input: R) -> Result<Vec<Read>, SeqError> {
    let mut reads = Vec::new();
    let mut name: Option<String> = None;
    let mut seq = DnaString::new();
    let mut line_no = 0usize;

    for line in input.lines() {
        line_no += 1;
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(prev) = name.take() {
                reads.push(Read::new(prev, std::mem::take(&mut seq)));
            }
            name = Some(header.trim().to_string());
        } else {
            if name.is_none() {
                return Err(SeqError::Format {
                    line: line_no,
                    message: "sequence data before first '>' header".to_string(),
                });
            }
            append_bases(&mut seq, line.as_bytes(), line_no)?;
        }
    }
    if let Some(prev) = name {
        reads.push(Read::new(prev, seq));
    }
    Ok(reads)
}

fn append_bases(seq: &mut DnaString, bytes: &[u8], line_no: usize) -> Result<(), SeqError> {
    for (i, &c) in bytes.iter().enumerate() {
        match crate::alphabet::Base::from_ascii(c) {
            Some(b) => seq.push(b),
            None => {
                return Err(SeqError::Format {
                    line: line_no,
                    message: format!("invalid base {:?} at column {}", c as char, i + 1),
                })
            }
        }
    }
    Ok(())
}

/// Writes reads as FASTA with lines wrapped at `width` bases (0 = no wrap).
pub fn write<W: Write>(mut out: W, reads: &[Read], width: usize) -> Result<(), SeqError> {
    for read in reads {
        writeln!(out, ">{}", read.name)?;
        let ascii = read.seq.to_ascii();
        if width == 0 {
            out.write_all(&ascii)?;
            writeln!(out)?;
        } else {
            for chunk in ascii.chunks(width) {
                out.write_all(chunk)?;
                writeln!(out)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_multi_record_multi_line() {
        let text = ">r1 first\nACGT\nACGT\n\n>r2\nTTTT\n";
        let reads = parse(Cursor::new(text)).unwrap();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].name, "r1 first");
        assert_eq!(reads[0].seq.to_string(), "ACGTACGT");
        assert_eq!(reads[1].seq.to_string(), "TTTT");
    }

    #[test]
    fn rejects_leading_sequence() {
        let err = parse(Cursor::new("ACGT\n>r1\nACGT\n")).unwrap_err();
        assert!(matches!(err, SeqError::Format { line: 1, .. }));
    }

    #[test]
    fn rejects_invalid_base_with_line_number() {
        let err = parse(Cursor::new(">r1\nACGT\nACNT\n")).unwrap_err();
        assert!(matches!(err, SeqError::Format { line: 3, .. }));
    }

    #[test]
    fn write_parse_round_trip_wrapped() {
        let reads = vec![
            Read::new("a", "ACGTACGTACGT".parse().unwrap()),
            Read::new("b", "TT".parse().unwrap()),
        ];
        let mut buf = Vec::new();
        write(&mut buf, &reads, 5).unwrap();
        let parsed = parse(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, reads);
    }

    #[test]
    fn write_unwrapped() {
        let reads = vec![Read::new("a", "ACGT".parse().unwrap())];
        let mut buf = Vec::new();
        write(&mut buf, &reads, 0).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), ">a\nACGT\n");
    }

    #[test]
    fn empty_input_yields_no_reads() {
        assert!(parse(Cursor::new("")).unwrap().is_empty());
    }
}

/// A streaming FASTA reader yielding one [`Read`] at a time — constant
/// memory regardless of file size, for production-sized inputs where
/// [`parse`] (which collects) is inappropriate.
pub struct Reader<R: BufRead> {
    lines: std::iter::Enumerate<std::io::Lines<R>>,
    pending_header: Option<(usize, String)>,
    done: bool,
}

impl<R: BufRead> Reader<R> {
    /// Wraps a buffered source.
    pub fn new(input: R) -> Reader<R> {
        Reader {
            lines: input.lines().enumerate(),
            pending_header: None,
            done: false,
        }
    }
}

impl<R: BufRead> Iterator for Reader<R> {
    type Item = Result<Read, SeqError>;

    fn next(&mut self) -> Option<Result<Read, SeqError>> {
        if self.done {
            return None;
        }
        // Find this record's header (either pending from the previous
        // record or the next '>' line).
        let header = match self.pending_header.take() {
            Some(h) => h,
            None => loop {
                match self.lines.next() {
                    None => {
                        self.done = true;
                        return None;
                    }
                    Some((i, Err(e))) => {
                        let _ = i;
                        self.done = true;
                        return Some(Err(e.into()));
                    }
                    Some((i, Ok(line))) => {
                        let line = line.trim_end().to_string();
                        if line.is_empty() {
                            continue;
                        }
                        match line.strip_prefix('>') {
                            Some(h) => break (i + 1, h.trim().to_string()),
                            None => {
                                self.done = true;
                                return Some(Err(SeqError::Format {
                                    line: i + 1,
                                    message: "sequence data before first '>' header".to_string(),
                                }));
                            }
                        }
                    }
                }
            },
        };
        // Accumulate sequence lines until the next header or EOF.
        let mut seq = DnaString::new();
        loop {
            match self.lines.next() {
                None => {
                    self.done = true;
                    return Some(Ok(Read::new(header.1, seq)));
                }
                Some((_, Err(e))) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
                Some((i, Ok(line))) => {
                    let line = line.trim_end();
                    if line.is_empty() {
                        continue;
                    }
                    if let Some(next_header) = line.strip_prefix('>') {
                        self.pending_header = Some((i + 1, next_header.trim().to_string()));
                        return Some(Ok(Read::new(header.1, seq)));
                    }
                    if let Err(e) = append_bases(&mut seq, line.as_bytes(), i + 1) {
                        self.done = true;
                        return Some(Err(e));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::alphabet::Base;
    use proptest::prelude::*;
    use std::io::Cursor;

    /// A syntactically valid FASTA byte stream with line-wrapped sequences.
    fn render(records: &[Vec<u8>]) -> Vec<u8> {
        let mut text = Vec::new();
        for (i, bases) in records.iter().enumerate() {
            text.extend_from_slice(format!(">r{i}\n").as_bytes());
            for chunk in bases.chunks(7) {
                for &b in chunk {
                    text.push(Base::from_code(b % 4).to_ascii());
                }
                text.push(b'\n');
            }
        }
        text
    }

    proptest! {
        /// Corpus of mutilated FASTA inputs: parsing must never panic, and
        /// the collecting parser and streaming reader must agree.
        #[test]
        fn mutilated_input_never_panics_and_streaming_agrees(
            records in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 0..30),
                0..5,
            ),
            ops in proptest::collection::vec(
                (0u8..5, 0usize..65536, 0u8..255),
                0..4,
            ),
        ) {
            let mut text = render(&records);
            for &(op, pos, byte) in &ops {
                crate::fastq::mutilate(&mut text, op, pos, byte);
            }
            let parsed = parse(Cursor::new(text.clone()));
            let streamed: Result<Vec<Read>, SeqError> =
                Reader::new(Cursor::new(text)).collect();
            match (&parsed, &streamed) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "parse/stream disagree: {:?} vs {:?}",
                    parsed.is_ok(),
                    streamed.is_ok()
                ),
            }
        }
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn streams_records_lazily_and_matches_parse() {
        let text = ">r1\nACGT\nACGT\n>r2\nTTTT\n>r3\nGG\n";
        let collected: Result<Vec<Read>, SeqError> = Reader::new(Cursor::new(text)).collect();
        assert_eq!(collected.unwrap(), parse(Cursor::new(text)).unwrap());
    }

    #[test]
    fn streaming_surfaces_mid_stream_errors() {
        let text = ">r1\nACGT\n>r2\nACXT\n";
        let mut reader = Reader::new(Cursor::new(text));
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        assert!(
            reader.next().is_none(),
            "iteration must stop after an error"
        );
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(Reader::new(Cursor::new("")).next().is_none());
    }
}
