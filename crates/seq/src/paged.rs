//! File-backed paged read storage: a pure-std pager with a pinned-page LRU
//! cache, used by out-of-core ingest to stage trimmed reads on disk.
//!
//! [`PagedStoreWriter`] appends trimmed forward reads (with their source
//! indices) to fixed-size pages; each full page is written through
//! [`fc_ckpt::CheckpointStore`], which gives spilled pages checkpoint-grade
//! robustness for free: CRC framing, temp-file + fsync + atomic rename, and
//! a manifest entry. A torn, truncated or bit-flipped page is therefore
//! *detected* at read time and surfaces as a typed [`PagedError`] — never as
//! silently corrupt reads.
//!
//! [`PagedReadStore`] is the read side: random access through a bounded,
//! deterministic LRU of pinned pages ([`PagedReadStore::get`]), sequential
//! re-materialization into an in-memory [`ReadStore`]
//! ([`PagedReadStore::materialize`]), and resume
//! ([`PagedReadStore::open`]) keyed on the raw-input digest recorded in the
//! meta page, so stale pages from a different input are rejected rather
//! than reused.
//!
//! Only forward strands are stored; reverse complements are deterministic
//! and regenerated on materialization, halving spill I/O.

use crate::error::SeqError;
use crate::read::Read;
use crate::store::ReadStore;
use fc_ckpt::{CheckpointStore, CkptError, Codec, FsFaultPlan, LoadOutcome};
use std::path::{Path, PathBuf};

/// Phase id of the meta page (pages start at [`FIRST_PAGE_ID`]).
const META_ID: u32 = 0;
/// Phase name used for the meta page file.
const META_NAME: &str = "pages_meta";
/// Phase id of page 0.
const FIRST_PAGE_ID: u32 = 1;
/// Phase name used for page files.
const PAGE_NAME: &str = "page";
/// Format version of the meta record; bumped on layout changes.
const META_VERSION: u32 = 1;

/// Errors from the paged store. Every on-disk defect is detected (via the
/// checkpoint CRC/manifest machinery) and reported typed; callers decide
/// whether to recompute, fall back in-core, or abort.
#[derive(Debug)]
pub enum PagedError {
    /// Writing a page failed (I/O error, injected fault, or the underlying
    /// checkpoint store degraded). Pages already written remain readable.
    Write(CkptError),
    /// A page or meta record exists but failed verification.
    Corrupt {
        /// Which page (or [`META_ID`] for the meta record).
        page: u32,
        /// The underlying rejection.
        cause: CkptError,
    },
    /// A page the meta record promises is missing on disk.
    MissingPage {
        /// The missing page's index.
        page: u32,
    },
    /// No usable staged state: the meta record is absent or describes a
    /// different input/layout (e.g. digest mismatch on resume).
    Stale(String),
}

impl std::fmt::Display for PagedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PagedError::Write(e) => write!(f, "paged store write failed: {e}"),
            PagedError::Corrupt { page, cause } => {
                write!(f, "paged store page {page} failed verification: {cause}")
            }
            PagedError::MissingPage { page } => {
                write!(f, "paged store page {page} is missing")
            }
            PagedError::Stale(why) => write!(f, "paged store not reusable: {why}"),
        }
    }
}

impl std::error::Error for PagedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PagedError::Write(e) | PagedError::Corrupt { cause: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<PagedError> for SeqError {
    fn from(e: PagedError) -> SeqError {
        SeqError::Io(std::io::Error::other(e.to_string()))
    }
}

/// One staged read: the trimmed forward strand plus its source index.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PageEntry {
    read: Read,
    source: u32,
}

impl Codec for PageEntry {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.read.encode(w);
        self.source.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<PageEntry, CkptError> {
        Ok(PageEntry {
            read: Read::decode(r)?,
            source: u32::decode(r)?,
        })
    }
}

/// Meta record: layout + identity of the staged read set, written last so
/// its presence marks a *complete* staging run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Meta {
    version: u32,
    page_len: u32,
    pages: u32,
    entries: u64,
    /// Digest of the *raw* input stream the pages were staged from; resume
    /// recomputes it and refuses pages from a different input.
    input_digest: u64,
}

impl Codec for Meta {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        self.version.encode(w);
        self.page_len.encode(w);
        self.pages.encode(w);
        self.entries.encode(w);
        self.input_digest.encode(w);
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<Meta, CkptError> {
        Ok(Meta {
            version: u32::decode(r)?,
            page_len: u32::decode(r)?,
            pages: u32::decode(r)?,
            entries: u64::decode(r)?,
            input_digest: u64::decode(r)?,
        })
    }
}

/// Streams trimmed reads into fixed-size pages on disk. Peak memory is one
/// page of reads regardless of input size.
#[derive(Debug)]
pub struct PagedStoreWriter {
    store: CheckpointStore,
    page_len: usize,
    buffer: Vec<PageEntry>,
    pages: u32,
    entries: u64,
    bytes_spilled: u64,
}

impl PagedStoreWriter {
    /// Starts staging into `dir`, stamping pages with `config_fingerprint`.
    /// `page_len` is the number of reads per page (clamped to ≥ 1).
    pub fn create(
        dir: impl Into<PathBuf>,
        config_fingerprint: u64,
        page_len: usize,
        faults: FsFaultPlan,
    ) -> PagedStoreWriter {
        // The raw-input digest is still unknown while streaming, so pages
        // are stamped with digest 0 and the true digest lives in the meta
        // record written by `finish`.
        PagedStoreWriter {
            store: CheckpointStore::with_faults(dir, config_fingerprint, 0, faults),
            page_len: page_len.max(1),
            buffer: Vec::new(),
            pages: 0,
            entries: 0,
            bytes_spilled: 0,
        }
    }

    /// Appends one trimmed forward read. Flushes a page to disk whenever
    /// the buffer fills; the first write failure is returned typed (pages
    /// already flushed stay valid, so the caller can fall back in-core
    /// without losing anything it has not still got in memory).
    pub fn push(&mut self, read: Read, source: u32) -> Result<(), PagedError> {
        self.buffer.push(PageEntry { read, source });
        if self.buffer.len() >= self.page_len {
            self.flush_page()?;
        }
        Ok(())
    }

    /// Reads staged so far (including the unflushed tail).
    pub fn entries(&self) -> u64 {
        self.entries + self.buffer.len() as u64
    }

    /// Pages written to disk so far.
    pub fn pages_written(&self) -> u32 {
        self.pages
    }

    /// Encoded bytes written to disk so far.
    pub fn bytes_spilled(&self) -> u64 {
        self.bytes_spilled
    }

    /// Approximate resident bytes of the unflushed page buffer.
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.iter().map(|e| e.read.approx_bytes() + 4).sum()
    }

    fn flush_page(&mut self) -> Result<(), PagedError> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let records: Vec<Vec<u8>> = self.buffer.iter().map(fc_ckpt::encode_to_vec).collect();
        self.entries += self.buffer.len() as u64;
        self.bytes_spilled += records.iter().map(|r| r.len() as u64).sum::<u64>();
        self.buffer.clear();
        match self.store.save(FIRST_PAGE_ID + self.pages, PAGE_NAME, records) {
            Ok(true) => {
                self.pages += 1;
                Ok(())
            }
            Ok(false) => Err(PagedError::Write(CkptError::Io {
                op: "save page",
                path: self.store.dir().to_path_buf(),
                source: std::io::Error::other("checkpoint store is degraded"),
            })),
            Err(e) => Err(PagedError::Write(e)),
        }
    }

    /// Flushes the tail page, writes the meta record (stamped with the
    /// raw-input digest), and returns the read side.
    pub fn finish(mut self, input_digest: u64) -> Result<PagedReadStore, PagedError> {
        self.flush_page()?;
        let meta = Meta {
            version: META_VERSION,
            page_len: self.page_len as u32,
            pages: self.pages,
            entries: self.entries,
            input_digest,
        };
        match self.store.save(META_ID, META_NAME, vec![fc_ckpt::encode_to_vec(&meta)]) {
            Ok(true) => {}
            Ok(false) => {
                return Err(PagedError::Write(CkptError::Io {
                    op: "save meta",
                    path: self.store.dir().to_path_buf(),
                    source: std::io::Error::other("checkpoint store is degraded"),
                }))
            }
            Err(e) => return Err(PagedError::Write(e)),
        }
        Ok(PagedReadStore::from_parts(self.store, meta))
    }
}

/// Read access to a staged page set through a bounded LRU of pinned pages.
#[derive(Debug)]
pub struct PagedReadStore {
    store: CheckpointStore,
    meta: Meta,
    /// Most-recently-used first; bounded by `cache_pages`.
    cache: Vec<(u32, Vec<PageEntry>)>,
    cache_pages: usize,
    /// Cache hits / misses, for tests and `ooc.*` metrics.
    hits: u64,
    misses: u64,
}

impl PagedReadStore {
    fn from_parts(store: CheckpointStore, meta: Meta) -> PagedReadStore {
        PagedReadStore {
            store,
            meta,
            cache: Vec::new(),
            cache_pages: 2,
            hits: 0,
            misses: 0,
        }
    }

    /// Opens a *complete* staged page set left by a previous run, verifying
    /// that its meta record matches this run's `config_fingerprint` (checked
    /// by the checkpoint layer) and `input_digest` (checked here) — pages
    /// staged from different input are rejected as [`PagedError::Stale`].
    pub fn open(
        dir: impl AsRef<Path>,
        config_fingerprint: u64,
        input_digest: u64,
        faults: FsFaultPlan,
    ) -> Result<PagedReadStore, PagedError> {
        let mut store =
            CheckpointStore::with_faults(dir.as_ref().to_path_buf(), config_fingerprint, 0, faults);
        let meta = match store.load(META_ID, META_NAME) {
            LoadOutcome::Missing => {
                return Err(PagedError::Stale("no meta record on disk".to_string()))
            }
            LoadOutcome::Rejected(cause) => {
                return Err(PagedError::Corrupt {
                    page: META_ID,
                    cause,
                })
            }
            LoadOutcome::Loaded(records) => {
                let record = records.first().ok_or_else(|| {
                    PagedError::Stale("meta record holds no payload".to_string())
                })?;
                let meta: Meta =
                    fc_ckpt::decode_from_slice(record).map_err(|cause| PagedError::Corrupt {
                        page: META_ID,
                        cause,
                    })?;
                meta
            }
        };
        if meta.version != META_VERSION {
            return Err(PagedError::Stale(format!(
                "meta version {} != {META_VERSION}",
                meta.version
            )));
        }
        if meta.input_digest != input_digest {
            return Err(PagedError::Stale(format!(
                "input digest {:016x} != staged {:016x}",
                input_digest, meta.input_digest
            )));
        }
        Ok(PagedReadStore::from_parts(store, meta))
    }

    /// Total staged reads (forward strands).
    pub fn len(&self) -> usize {
        self.meta.entries as usize
    }

    /// True when nothing was staged.
    pub fn is_empty(&self) -> bool {
        self.meta.entries == 0
    }

    /// Number of pages on disk.
    pub fn pages(&self) -> u32 {
        self.meta.pages
    }

    /// Sets how many pages the LRU pins in memory (clamped to ≥ 1).
    pub fn set_cache_pages(&mut self, pages: usize) {
        self.cache_pages = pages.max(1);
        self.cache.truncate(self.cache_pages);
    }

    /// `(hits, misses)` of the page cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// The staged read at `index` (forward strand) and its source index.
    /// Faults the owning page into the LRU cache on miss; the returned
    /// reference is pinned until the next `get`/`materialize` call.
    pub fn get(&mut self, index: usize) -> Result<(&Read, u32), PagedError> {
        if index >= self.meta.entries as usize {
            return Err(PagedError::Stale(format!(
                "read index {index} out of bounds for {} staged reads",
                self.meta.entries
            )));
        }
        let page = (index / self.meta.page_len as usize) as u32;
        let offset = index % self.meta.page_len as usize;
        let slot = self.pin_page(page)?;
        let entry = &self.cache[slot].1[offset];
        Ok((&entry.read, entry.source))
    }

    /// Moves `page` to the cache front, loading (and evicting) as needed;
    /// returns its slot (always 0 after the move-to-front).
    fn pin_page(&mut self, page: u32) -> Result<usize, PagedError> {
        if let Some(pos) = self.cache.iter().position(|(p, _)| *p == page) {
            self.hits += 1;
            let hit = self.cache.remove(pos);
            self.cache.insert(0, hit);
            return Ok(0);
        }
        self.misses += 1;
        let entries = self.load_page(page)?;
        self.cache.insert(0, (page, entries));
        self.cache.truncate(self.cache_pages);
        Ok(0)
    }

    fn load_page(&mut self, page: u32) -> Result<Vec<PageEntry>, PagedError> {
        match self.store.load(FIRST_PAGE_ID + page, PAGE_NAME) {
            LoadOutcome::Missing => Err(PagedError::MissingPage { page }),
            LoadOutcome::Rejected(cause) => Err(PagedError::Corrupt { page, cause }),
            LoadOutcome::Loaded(records) => records
                .iter()
                .map(|r| {
                    fc_ckpt::decode_from_slice(r)
                        .map_err(|cause| PagedError::Corrupt { page, cause })
                })
                .collect(),
        }
    }

    /// Streams every page back in order and rebuilds the in-memory
    /// RC-paired [`ReadStore`] (reverse complements are regenerated). Reads
    /// pages sequentially without going through the LRU, so peak extra
    /// memory is one page.
    pub fn materialize(&mut self) -> Result<ReadStore, PagedError> {
        let mut pairs: Vec<(Read, u32)> = Vec::with_capacity(self.meta.entries as usize);
        for page in 0..self.meta.pages {
            for entry in self.load_page(page)? {
                pairs.push((entry.read, entry.source));
            }
        }
        if pairs.len() as u64 != self.meta.entries {
            return Err(PagedError::Stale(format!(
                "pages hold {} reads, meta promises {}",
                pairs.len(),
                self.meta.entries
            )));
        }
        Ok(ReadStore::from_trimmed(pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityScores;
    use crate::store::ReadStoreBuilder;
    use crate::trim::TrimConfig;
    use fc_ckpt::{ReadFault, WriteFault};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fc_seq_paged_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_reads(n: usize) -> Vec<Read> {
        (0..n)
            .map(|i| {
                let bases = ["ACGTACGTAC", "TTGGCCAATT", "GATTACAGAT"][i % 3];
                let seq: crate::DnaString = bases.parse().unwrap();
                let qual = QualityScores::from_phred(vec![35; seq.len()]);
                Read::with_quality(format!("r{i}"), seq, qual)
            })
            .collect()
    }

    fn stage(dir: &Path, reads: &[Read], page_len: usize) -> PagedReadStore {
        let mut w = PagedStoreWriter::create(dir, 0xFC, page_len, FsFaultPlan::none());
        for (i, read) in reads.iter().enumerate() {
            w.push(read.clone(), i as u32).unwrap();
        }
        w.finish(0xD1).unwrap()
    }

    #[test]
    fn round_trips_reads_across_pages() {
        let dir = temp_dir("round_trip");
        let reads = sample_reads(7);
        let mut paged = stage(&dir, &reads, 3);
        assert_eq!(paged.len(), 7);
        assert_eq!(paged.pages(), 3);
        for (i, read) in reads.iter().enumerate() {
            let (got, src) = paged.get(i).unwrap();
            assert_eq!(got, read);
            assert_eq!(src, i as u32);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn materialize_matches_builder_output() {
        let dir = temp_dir("materialize");
        let reads = sample_reads(5);
        let config = TrimConfig {
            min_read_len: 1,
            ..TrimConfig::default()
        };
        // Reference: the normal streaming builder.
        let mut builder = ReadStoreBuilder::new(&config).unwrap();
        for read in &reads {
            builder.push(read);
        }
        let expect = builder.finish();
        // Staged: spill the forward strands, then materialize (which
        // regenerates the reverse complements).
        let mut w = PagedStoreWriter::create(&dir, 0xFC, 2, FsFaultPlan::none());
        for i in (0..expect.len()).step_by(2) {
            let id = crate::read::ReadId(i as u32);
            w.push(expect.get(id).clone(), expect.source_index(id) as u32)
                .unwrap();
        }
        let mut paged = w.finish(0xD1).unwrap();
        let store = paged.materialize().unwrap();
        assert_eq!(store.reads(), expect.reads());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_cache_is_bounded_and_counts_hits() {
        let dir = temp_dir("lru");
        let reads = sample_reads(8);
        let mut paged = stage(&dir, &reads, 2); // 4 pages
        paged.set_cache_pages(2);
        // Touch pages 0,1 (misses), re-touch 0 (hit), then 2 evicts 1.
        paged.get(0).unwrap();
        paged.get(2).unwrap();
        paged.get(1).unwrap();
        paged.get(4).unwrap();
        assert!(paged.cache.len() <= 2, "cache exceeded its bound");
        let (hits, misses) = paged.cache_stats();
        assert_eq!(hits + misses, 4);
        assert_eq!(hits, 1);
        // Page 1 was evicted; touching it again misses but still works.
        paged.get(2).unwrap();
        assert_eq!(paged.cache_stats().1, misses + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_validates_digest_and_fingerprint() {
        let dir = temp_dir("open");
        let reads = sample_reads(4);
        stage(&dir, &reads, 2);
        // Matching identity: opens and reads back.
        let mut ok = PagedReadStore::open(&dir, 0xFC, 0xD1, FsFaultPlan::none()).unwrap();
        assert_eq!(ok.len(), 4);
        assert_eq!(ok.get(3).unwrap().0, &reads[3]);
        // Different input digest: stale.
        let err = PagedReadStore::open(&dir, 0xFC, 0xBEEF, FsFaultPlan::none()).unwrap_err();
        assert!(matches!(err, PagedError::Stale(_)), "{err}");
        // Different config fingerprint: the checkpoint layer rejects the
        // meta file itself.
        let err = PagedReadStore::open(&dir, 0xDEAD, 0xD1, FsFaultPlan::none()).unwrap_err();
        assert!(matches!(err, PagedError::Corrupt { .. }), "{err}");
        // Missing directory: stale (nothing staged), not a crash.
        let err = PagedReadStore::open(dir.join("nope"), 0xFC, 0xD1, FsFaultPlan::none())
            .unwrap_err();
        assert!(matches!(err, PagedError::Stale(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_faults_surface_typed_not_silent() {
        let dir = temp_dir("write_faults");
        // ENOSPC on the first write: push/finish reports a typed error.
        let faults = FsFaultPlan::none().fail_write(0, WriteFault::Enospc);
        let mut w = PagedStoreWriter::create(&dir, 0xFC, 2, faults);
        let reads = sample_reads(3);
        let mut failed = false;
        for (i, read) in reads.iter().enumerate() {
            if w.push(read.clone(), i as u32).is_err() {
                failed = true;
                break;
            }
        }
        let failed = failed || w.finish(0xD1).is_err();
        assert!(failed, "injected ENOSPC must surface as an error");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_faults_are_detected_by_crc() {
        for (tag, fault) in [
            ("short", ReadFault::Short),
            ("bitflip", ReadFault::BitFlip { bit: 13 }),
        ] {
            let dir = temp_dir(&format!("read_fault_{tag}"));
            let reads = sample_reads(4);
            stage(&dir, &reads, 2);
            // Fault the *page* read (meta is read op 0 at open; pages
            // follow). Try both of the first two read ops to be robust to
            // op numbering, and require a typed error either way.
            let mut detected = false;
            for op in 0..2u64 {
                let faults = FsFaultPlan::none().fail_read(op, fault);
                match PagedReadStore::open(&dir, 0xFC, 0xD1, faults) {
                    Err(PagedError::Corrupt { .. }) => detected = true,
                    Err(e) => panic!("unexpected error kind: {e}"),
                    Ok(mut paged) => match paged.materialize() {
                        Err(PagedError::Corrupt { .. }) => detected = true,
                        Err(e) => panic!("unexpected error kind: {e}"),
                        Ok(store) => {
                            // The fault missed every read this run made;
                            // data must still be intact.
                            assert_eq!(store.source_read_count(), 4);
                        }
                    },
                }
            }
            assert!(detected, "{tag}: injected fault was never detected");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn torn_page_write_is_rejected_at_read_time() {
        let dir = temp_dir("torn");
        let reads = sample_reads(4);
        // Torn write: the checkpoint layer reports success (crash-after-
        // write semantics) but the file holds half the bytes.
        let faults = FsFaultPlan::none().fail_write(0, WriteFault::Torn);
        let mut w = PagedStoreWriter::create(&dir, 0xFC, 2, faults);
        for (i, read) in reads.iter().enumerate() {
            w.push(read.clone(), i as u32).unwrap();
        }
        let mut paged = w.finish(0xD1).unwrap();
        let err = paged.materialize().unwrap_err();
        assert!(matches!(err, PagedError::Corrupt { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
