//! 2-bit packed DNA sequences.

use crate::alphabet::Base;
use crate::error::SeqError;
use std::fmt;
use std::str::FromStr;

const BASES_PER_WORD: usize = 32;

/// A DNA sequence packed at two bits per base (32 bases per `u64` word).
///
/// ```
/// use fc_seq::DnaString;
/// let s: DnaString = "ACGTT".parse().unwrap();
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.reverse_complement().to_string(), "AACGT");
/// assert_eq!(s.slice(1, 4).to_string(), "CGT");
/// ```
///
/// `DnaString` is the workhorse sequence type of the assembler: genomes,
/// reads and contigs are all stored in this representation. Besides the 4x
/// memory saving over byte strings, the packed form makes
/// [`reverse_complement`](DnaString::reverse_complement) and k-mer extraction
/// cheap, which matters because the paper's preprocessing step doubles the
/// read set with reverse complements (§II-A).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaString {
    words: Vec<u64>,
    len: usize,
}

impl DnaString {
    /// Creates an empty sequence.
    pub fn new() -> DnaString {
        DnaString::default()
    }

    /// Creates an empty sequence with room for `capacity` bases.
    pub fn with_capacity(capacity: usize) -> DnaString {
        DnaString {
            words: Vec::with_capacity(capacity.div_ceil(BASES_PER_WORD)),
            len: 0,
        }
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sequence contains no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let (word, shift) = (self.len / BASES_PER_WORD, (self.len % BASES_PER_WORD) * 2);
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= (base.code() as u64) << shift;
        self.len += 1;
    }

    /// Base at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(
            i < self.len,
            "index {i} out of bounds for length {}",
            self.len
        );
        let word = self.words[i / BASES_PER_WORD];
        Base::from_code(((word >> ((i % BASES_PER_WORD) * 2)) & 0b11) as u8)
    }

    /// Overwrites the base at position `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, base: Base) {
        assert!(
            i < self.len,
            "index {i} out of bounds for length {}",
            self.len
        );
        let shift = (i % BASES_PER_WORD) * 2;
        let word = &mut self.words[i / BASES_PER_WORD];
        *word = (*word & !(0b11 << shift)) | ((base.code() as u64) << shift);
    }

    /// Iterates over all bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// A zero-copy word-level view of the packed representation, for
    /// word-at-a-time consumers (bit-parallel aligners, packed compares).
    #[inline]
    pub fn packed(&self) -> crate::packed::PackedView<'_> {
        crate::packed::PackedView::new(&self.words, self.len)
    }

    /// Copies the bases in `range` into a new sequence.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> DnaString {
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds"
        );
        let mut out = DnaString::with_capacity(end - start);
        for i in start..end {
            out.push(self.get(i));
        }
        out
    }

    /// The reverse complement of this sequence.
    pub fn reverse_complement(&self) -> DnaString {
        let mut out = DnaString::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i).complement());
        }
        out
    }

    /// Appends all bases of `other`.
    pub fn extend_from(&mut self, other: &DnaString) {
        for b in other.iter() {
            self.push(b);
        }
    }

    /// Packs the k-mer starting at `pos` into the low `2k` bits of a `u64`
    /// (first base in the lowest bits). Returns `None` if the k-mer would run
    /// off the end or `k` exceeds 32.
    #[inline]
    pub fn kmer_u64(&self, pos: usize, k: usize) -> Option<u64> {
        if k == 0 || k > 32 || pos + k > self.len {
            return None;
        }
        let mut packed = 0u64;
        for i in 0..k {
            packed |= (self.get(pos + i).code() as u64) << (2 * i);
        }
        Some(packed)
    }

    /// Iterates over all `(position, packed k-mer)` pairs of the sequence.
    pub fn kmers(&self, k: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        let end = if k == 0 || k > 32 || k > self.len {
            0
        } else {
            self.len - k + 1
        };
        (0..end).filter_map(move |pos| Some((pos, self.kmer_u64(pos, k)?)))
    }

    /// Decodes to an ASCII byte string (`A`/`C`/`G`/`T`).
    pub fn to_ascii(&self) -> Vec<u8> {
        self.iter().map(Base::to_ascii).collect()
    }

    /// Number of positions at which `self` and `other` differ, comparing the
    /// first `min(len, other.len)` bases plus the length difference.
    pub fn hamming_distance(&self, other: &DnaString) -> usize {
        let shared = self.len.min(other.len);
        let mismatches = (0..shared).filter(|&i| self.get(i) != other.get(i)).count();
        mismatches + self.len.abs_diff(other.len)
    }
}

impl FromStr for DnaString {
    type Err = SeqError;

    fn from_str(s: &str) -> Result<DnaString, SeqError> {
        let mut out = DnaString::with_capacity(s.len());
        for (i, c) in s.bytes().enumerate() {
            match Base::from_ascii(c) {
                Some(b) => out.push(b),
                None => {
                    return Err(SeqError::InvalidBase {
                        position: i,
                        byte: c,
                    })
                }
            }
        }
        Ok(out)
    }
}

impl fmt::Display for DnaString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DnaString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 60 {
            write!(f, "DnaString(\"{self}\")")
        } else {
            write!(f, "DnaString(len={}, \"{}…\")", self.len, self.slice(0, 60))
        }
    }
}

impl fc_ckpt::Codec for DnaString {
    fn encode(&self, w: &mut fc_ckpt::Writer) {
        w.put_u64(self.len as u64);
        w.put_u64(self.words.len() as u64);
        for &word in &self.words {
            w.put_u64(word);
        }
    }

    fn decode(r: &mut fc_ckpt::Reader<'_>) -> Result<DnaString, fc_ckpt::CkptError> {
        let decode_err = |detail: String| fc_ckpt::CkptError::Decode { detail };
        let len = usize::try_from(r.u64()?)
            .map_err(|_| decode_err("DnaString length overflows usize".to_string()))?;
        let word_count = r.seq_len(8)?;
        if word_count != len.div_ceil(BASES_PER_WORD) {
            return Err(decode_err(format!(
                "DnaString of {len} bases cannot have {word_count} words"
            )));
        }
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(r.u64()?);
        }
        // Padding bits beyond `len` must be zero: push/set never leave them
        // dirty, and Eq/Hash compare the raw words.
        let tail_bases = len % BASES_PER_WORD;
        if tail_bases != 0 {
            let last = words[word_count - 1];
            if last >> (tail_bases * 2) != 0 {
                return Err(decode_err(
                    "DnaString has non-zero padding bits past its length".to_string(),
                ));
            }
        }
        Ok(DnaString { words, len })
    }
}

impl FromIterator<Base> for DnaString {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> DnaString {
        let mut out = DnaString::new();
        for b in iter {
            out.push(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_across_word_boundary() {
        let mut s = DnaString::new();
        let pattern = [Base::A, Base::C, Base::G, Base::T];
        for i in 0..100 {
            s.push(pattern[i % 4]);
        }
        assert_eq!(s.len(), 100);
        for i in 0..100 {
            assert_eq!(s.get(i), pattern[i % 4], "position {i}");
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        let text = "ACGTTGCAACGT";
        let s: DnaString = text.parse().unwrap();
        assert_eq!(s.to_string(), text);
    }

    #[test]
    fn parse_rejects_ambiguity_codes() {
        let err = "ACGNT".parse::<DnaString>().unwrap_err();
        match err {
            SeqError::InvalidBase { position, byte } => {
                assert_eq!(position, 3);
                assert_eq!(byte, b'N');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn reverse_complement_known_value() {
        let s: DnaString = "AACGTT".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "AACGTT");
        let s: DnaString = "ACGT".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "ACGT");
        let s: DnaString = "AAAC".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "GTTT");
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut s: DnaString = "AAAA".parse().unwrap();
        s.set(2, Base::G);
        assert_eq!(s.to_string(), "AAGA");
    }

    #[test]
    fn slice_bounds_and_content() {
        let s: DnaString = "ACGTACGT".parse().unwrap();
        assert_eq!(s.slice(2, 6).to_string(), "GTAC");
        assert_eq!(s.slice(0, 0).len(), 0);
        assert_eq!(s.slice(8, 8).len(), 0);
    }

    #[test]
    fn kmer_packing_matches_manual() {
        let s: DnaString = "ACGT".parse().unwrap();
        // A=0 at bits 0-1, C=1 at bits 2-3, G=2 at bits 4-5, T=3 at bits 6-7.
        assert_eq!(s.kmer_u64(0, 4), Some(0b11_10_01_00));
        assert_eq!(s.kmer_u64(1, 4), None);
        assert_eq!(s.kmer_u64(0, 33), None);
    }

    #[test]
    fn kmers_iterator_counts() {
        let s: DnaString = "ACGTAC".parse().unwrap();
        assert_eq!(s.kmers(3).count(), 4);
        assert_eq!(s.kmers(6).count(), 1);
        assert_eq!(s.kmers(7).count(), 0);
        assert_eq!(s.kmers(0).count(), 0);
    }

    #[test]
    fn checkpoint_codec_round_trips_and_rejects_dirty_padding() {
        let s: DnaString = "ACGTTGCAACGTACGTACGTACGTACGTACGTACGTA".parse().unwrap();
        let bytes = fc_ckpt::encode_to_vec(&s);
        let back: DnaString = fc_ckpt::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, s);
        // A word with bits set past the sequence length must be rejected.
        let mut w = fc_ckpt::Writer::new();
        w.put_u64(3); // 3 bases
        w.put_u64(1); // 1 word
        w.put_u64(u64::MAX);
        assert!(fc_ckpt::decode_from_slice::<DnaString>(&w.into_bytes()).is_err());
    }

    #[test]
    fn hamming_distance_counts_mismatches_and_length_gap() {
        let a: DnaString = "ACGT".parse().unwrap();
        let b: DnaString = "ACCT".parse().unwrap();
        assert_eq!(a.hamming_distance(&b), 1);
        let c: DnaString = "ACGTAA".parse().unwrap();
        assert_eq!(a.hamming_distance(&c), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }
}
