//! Error type for sequence parsing and I/O.

use std::fmt;
use std::io;

/// Errors produced while parsing or writing sequence data.
#[derive(Debug)]
pub enum SeqError {
    /// A byte that is not one of `ACGTacgt` appeared in sequence data.
    InvalidBase {
        /// Offset of the offending byte within its sequence line/record.
        position: usize,
        /// The offending byte.
        byte: u8,
    },
    /// A structural problem in a FASTA/FASTQ stream.
    Format {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The stream ended in the middle of a record (e.g. a FASTQ file cut
    /// off before its quality line).
    Truncated {
        /// 1-based line number of the last line that was read.
        line: usize,
        /// Which line of the record is missing (`sequence`, `separator`,
        /// `quality`).
        missing: &'static str,
    },
    /// Quality string length does not match sequence length.
    QualityLengthMismatch {
        /// Record name.
        record: String,
        /// Sequence length.
        seq_len: usize,
        /// Quality-string length.
        qual_len: usize,
    },
    /// An invalid preprocessing parameter (see [`crate::TrimConfig`]).
    Config {
        /// Offending parameter name (e.g. `window_len`).
        parameter: &'static str,
        /// What a valid value looks like.
        message: &'static str,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidBase { position, byte } => {
                write!(f, "invalid base {:?} at position {position}", *byte as char)
            }
            SeqError::Format { line, message } => write!(f, "format error at line {line}: {message}"),
            SeqError::Truncated { line, missing } => write!(
                f,
                "truncated record after line {line}: missing {missing} line"
            ),
            SeqError::QualityLengthMismatch { record, seq_len, qual_len } => write!(
                f,
                "record {record}: quality length {qual_len} does not match sequence length {seq_len}"
            ),
            SeqError::Config { parameter, message } => {
                write!(f, "invalid {parameter}: {message}")
            }
            SeqError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SeqError {
    fn from(e: io::Error) -> SeqError {
        SeqError::Io(e)
    }
}
