//! The four-letter DNA alphabet.

use std::fmt;

/// A single DNA nucleotide.
///
/// Bases are represented by their 2-bit code (`A=0, C=1, G=2, T=3`), which is
/// also the packing used by [`crate::DnaString`]. The complement of a base is
/// its bitwise negation in this encoding (`A<->T`, `C<->G`), which makes
/// reverse-complementing cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Builds a base from its 2-bit code. Only the two low bits are used.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses an ASCII character (case-insensitive). Returns `None` for
    /// anything outside `ACGTacgt` — including IUPAC ambiguity codes, which
    /// the assembler does not model.
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Base> {
        match c {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Uppercase ASCII letter for this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement (`A<->T`, `C<->G`).
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(3 - self.code())
    }

    /// The three bases that are *not* this one, in code order. Used by
    /// mutation simulators to pick a substitution.
    #[inline]
    pub fn others(self) -> [Base; 3] {
        let mut out = [Base::A; 3];
        let mut i = 0;
        for b in Base::ALL {
            if b != self {
                out[i] = b;
                i += 1;
            }
        }
        out
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in 0..4u8 {
            assert_eq!(Base::from_code(code).code(), code);
        }
    }

    #[test]
    fn ascii_round_trip_and_case() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
        assert_eq!(Base::from_ascii(b'N'), None);
        assert_eq!(Base::from_ascii(b'-'), None);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn others_excludes_self() {
        for b in Base::ALL {
            let o = b.others();
            assert_eq!(o.len(), 3);
            assert!(!o.contains(&b));
        }
    }
}
