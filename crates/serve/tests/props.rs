//! Property tests for the admission scheduler (ISSUE 6 satellite):
//!
//! 1. **No starvation** — under adversarial interleavings of admissions,
//!    dispatches and cancellations, every job the scheduler ever *queued*
//!    is eventually dispatched, shed, or canceled — never lost — and
//!    during a drain no backlogged tenant waits more than
//!    `tenants × quantum` dispatches between its own dispatches (the
//!    deficit-round-robin fairness bound).
//! 2. **Deterministic backpressure** — replaying the same seeded arrival
//!    schedule on a fresh scheduler reproduces the exact same admission
//!    outcomes and dispatch order, byte for byte.

use fc_serve::{AdmitOutcome, JobId, Priority, SchedConfig, Scheduler};
use proptest::prelude::*;
use std::collections::BTreeMap;

const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn cfg() -> SchedConfig {
    SchedConfig {
        per_tenant_capacity: 6,
        total_capacity: 12,
        max_tenants: TENANTS.len(),
        quantum: 3,
    }
}

/// One scripted step: tenant index, priority index, op selector
/// (0–5 admit, 6 dispatch, 7 cancel the oldest queued job).
type Op = (u8, u8, u8);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u8..3, 0u8..8), 0..256)
}

proptest! {
    #[test]
    fn no_admitted_job_is_ever_lost_and_drain_is_fair(ops in ops_strategy()) {
        let mut s = Scheduler::new(cfg());
        let mut next_id = 0u64;
        // Jobs admitted and still queued, by id → tenant. The scheduler's
        // queue must always equal this set.
        let mut queued: BTreeMap<u64, &'static str> = BTreeMap::new();
        let (mut admitted, mut dispatched, mut shed, mut canceled) = (0usize, 0usize, 0usize, 0usize);

        for (t, p, op) in ops {
            let tenant = TENANTS[t as usize];
            let priority = Priority::ALL[p as usize];
            match op {
                0..=5 => {
                    let id = JobId(next_id);
                    next_id += 1;
                    match s.admit(tenant, id, priority) {
                        AdmitOutcome::Queued { shed: victim } => {
                            admitted += 1;
                            queued.insert(id.0, tenant);
                            if let Some(v) = victim {
                                prop_assert!(
                                    queued.remove(&v.id.0).is_some(),
                                    "shed a job that was not queued: {v:?}"
                                );
                                shed += 1;
                            }
                        }
                        AdmitOutcome::Rejected(_) => {}
                    }
                }
                6 => {
                    if let Some(id) = s.next() {
                        prop_assert!(
                            queued.remove(&id.0).is_some(),
                            "dispatched unknown job {id}"
                        );
                        dispatched += 1;
                    }
                }
                _ => {
                    if let Some((&id, _)) = queued.iter().next() {
                        prop_assert!(s.cancel(JobId(id)).is_some());
                        queued.remove(&id);
                        canceled += 1;
                    }
                }
            }
            prop_assert_eq!(s.total_depth(), queued.len());
        }

        // Drain: every remaining job must dispatch, and while a tenant has
        // backlog it must be served within tenants × quantum dispatches.
        let bound = TENANTS.len() * cfg().quantum as usize;
        let mut waits: BTreeMap<&'static str, usize> = queued.values().map(|&t| (t, 0)).collect();
        while let Some(id) = s.next() {
            let Some(tenant) = queued.remove(&id.0) else {
                prop_assert!(false, "drain dispatched unknown job {id}");
                return Ok(());
            };
            dispatched += 1;
            waits.insert(tenant, 0);
            for (&t, wait) in waits.iter_mut() {
                if t != tenant && queued.values().any(|&q| q == t) {
                    *wait += 1;
                    prop_assert!(
                        *wait <= bound,
                        "tenant {t} starved for {wait} > {bound} dispatches"
                    );
                }
            }
        }
        prop_assert!(queued.is_empty(), "jobs lost in the scheduler: {queued:?}");
        // Conservation: every queued admission has exactly one fate.
        prop_assert_eq!(admitted, dispatched + shed + canceled);
    }

    #[test]
    fn backpressure_outcomes_are_deterministic(ops in ops_strategy()) {
        prop_assert_eq!(trace(&ops), trace(&ops));
    }
}

/// Replays a schedule and records every observable outcome.
fn trace(ops: &[Op]) -> Vec<String> {
    let mut s = Scheduler::new(cfg());
    let mut next_id = 0u64;
    let mut queued: BTreeMap<u64, ()> = BTreeMap::new();
    let mut out = Vec::new();
    for &(t, p, op) in ops {
        match op {
            0..=5 => {
                let id = JobId(next_id);
                next_id += 1;
                let outcome = s.admit(TENANTS[t as usize], id, Priority::ALL[p as usize]);
                if let AdmitOutcome::Queued { shed } = &outcome {
                    queued.insert(id.0, ());
                    if let Some(v) = shed {
                        queued.remove(&v.id.0);
                    }
                }
                out.push(format!("admit {id} -> {outcome:?}"));
            }
            6 => {
                let next = s.next();
                if let Some(id) = next {
                    queued.remove(&id.0);
                }
                out.push(format!("next -> {next:?}"));
            }
            _ => {
                if let Some((&id, _)) = queued.iter().next() {
                    let cancel = s.cancel(JobId(id));
                    queued.remove(&id);
                    out.push(format!("cancel {id} -> {cancel:?}"));
                }
            }
        }
    }
    while let Some(id) = s.next() {
        out.push(format!("drain -> {id}"));
    }
    out
}
