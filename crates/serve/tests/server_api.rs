//! End-to-end API tests for the serve daemon over real sockets, using a
//! mock [`JobRunner`] so no assembly pipeline is needed: admission,
//! status/artifact retrieval, backpressure, shedding, cancellation,
//! deadlines, and fast-shutdown → restart resume.

use fc_serve::sched::SchedConfig;
use fc_serve::server::{Serve, ServeConfig};
use fc_serve::{JobContext, JobError, JobOutput, JobRunner};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic mock: "assembles" the input by uppercasing it; sleeps
/// `delay` per run so tests can hold jobs in the queue.
struct MockRunner {
    delay: Duration,
}

impl JobRunner for MockRunner {
    fn run(&self, ctx: &JobContext) -> Result<JobOutput, JobError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        let input = std::fs::read(&ctx.input_path)
            .map_err(|e| JobError::permanent(format!("read input: {e}")))?;
        let body = String::from_utf8_lossy(&input).to_uppercase();
        Ok(JobOutput {
            contigs_fasta: format!(">contig_0 len={}\n{body}\n", body.trim().len()).into_bytes(),
            metrics_json: format!("{{\"len\":{}}}", body.trim().len()),
            trace_json: "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}".to_string(),
            num_contigs: 1,
            n50: body.trim().len() as u64,
            total_bases: body.trim().len() as u64,
        })
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-serve-api-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        http_threads: 2,
        backoff_unit: Duration::ZERO,
        sched: SchedConfig {
            per_tenant_capacity: 4,
            total_capacity: 6,
            max_tenants: 4,
            quantum: 2,
        },
        ..ServeConfig::default()
    }
}

/// Minimal HTTP/1.1 client: one request, returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let end = body[start..].find('"')? + start;
    Some(&body[start..end])
}

fn submit(addr: SocketAddr, query: &str, body: &[u8]) -> (u16, String) {
    request(addr, "POST", &format!("/jobs{query}"), body)
}

fn wait_terminal(addr: SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), b"");
        assert_eq!(status, 200, "{body}");
        let state = json_field(&body, "state").expect("state field").to_string();
        if !matches!(state.as_str(), "queued" | "running") {
            return body;
        }
        assert!(Instant::now() < deadline, "job {id} stuck: {body}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn submit_runs_and_serves_artifacts() {
    let server = Serve::start(
        small_config(),
        temp_dir("roundtrip"),
        Arc::new(MockRunner {
            delay: Duration::ZERO,
        }),
    )
    .expect("start");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz", b"");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = submit(addr, "?tenant=alice&priority=high", b"acgt");
    assert_eq!(status, 202, "{body}");
    let id = json_field(&body, "id").expect("id").to_string();

    let terminal = wait_terminal(addr, &id);
    assert_eq!(json_field(&terminal, "state"), Some("done"), "{terminal}");
    assert!(terminal.contains("\"num_contigs\":1"), "{terminal}");

    let (status, contigs) = request(addr, "GET", &format!("/jobs/{id}/contigs"), b"");
    assert_eq!(status, 200);
    assert_eq!(contigs, ">contig_0 len=4\nACGT\n");
    let (status, metrics) = request(addr, "GET", &format!("/jobs/{id}/metrics"), b"");
    assert_eq!((status, metrics.as_str()), (200, "{\"len\":4}"));
    let (status, trace) = request(addr, "GET", &format!("/jobs/{id}/trace"), b"");
    assert_eq!(status, 200);
    assert!(trace.contains("traceEvents"), "{trace}");

    let (status, metrics) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(metrics.contains("serve.jobs.admitted"), "{metrics}");
    assert!(metrics.contains("serve.queue.depth.alice"), "{metrics}");

    // The text exposition derives percentile summaries for histograms.
    let (status, text) = request(addr, "GET", "/metrics?format=text", b"");
    assert_eq!(status, 200);
    assert!(text.contains("serve.job.latency_ms"), "{text}");
    assert!(text.contains("p99"), "{text}");

    let (status, _) = request(addr, "GET", "/jobs/job-999999", b"");
    assert_eq!(status, 404);

    server.shutdown(true);
    server.join();
}

#[test]
fn saturation_rejects_typed_and_health_stays_up() {
    let server = Serve::start(
        small_config(),
        temp_dir("saturate"),
        Arc::new(MockRunner {
            delay: Duration::from_millis(150),
        }),
    )
    .expect("start");
    let addr = server.addr();

    let mut admitted = Vec::new();
    let mut kinds = Vec::new();
    // 1 worker × 150 ms jobs, tenant capacity 4: flood one tenant until
    // its queue rejects.
    for i in 0..12 {
        let (status, body) = submit(addr, "?tenant=alice", format!("read{i}").as_bytes());
        match status {
            202 => admitted.push(json_field(&body, "id").expect("id").to_string()),
            429 => kinds.push(json_field(&body, "error").expect("kind").to_string()),
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(!kinds.is_empty(), "flood never hit the tenant bound");
    assert!(kinds.iter().all(|k| k == "tenant_queue_full"), "{kinds:?}");

    // Health must answer while the queue is saturated.
    let (status, _) = request(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);

    for id in &admitted {
        let body = wait_terminal(addr, id);
        assert_eq!(json_field(&body, "state"), Some("done"), "{body}");
    }
    server.shutdown(true);
    server.join();
}

#[test]
fn high_priority_sheds_queued_low_priority() {
    let mut cfg = small_config();
    cfg.sched.total_capacity = 2;
    cfg.sched.per_tenant_capacity = 2;
    let server = Serve::start(
        cfg,
        temp_dir("shed"),
        Arc::new(MockRunner {
            delay: Duration::from_millis(300),
        }),
    )
    .expect("start");
    let addr = server.addr();

    // First job occupies the single worker; two more fill the queue.
    let (_, first) = submit(addr, "?tenant=a&priority=low", b"r0");
    let first_id = json_field(&first, "id").expect("id").to_string();
    std::thread::sleep(Duration::from_millis(50)); // let it dispatch
    let mut low_ids = Vec::new();
    for i in 1..=2 {
        let (status, body) = submit(addr, "?tenant=a&priority=low", format!("r{i}").as_bytes());
        assert_eq!(status, 202, "{body}");
        low_ids.push(json_field(&body, "id").expect("id").to_string());
    }
    let (status, body) = submit(addr, "?tenant=b&priority=high", b"urgent");
    assert_eq!(status, 202, "{body}");
    let shed_id = json_field(&body, "shed").expect("shed field").to_string();
    assert_eq!(shed_id, low_ids[1], "newest queued low job is the victim");

    let shed_status = wait_terminal(addr, &shed_id);
    assert_eq!(
        json_field(&shed_status, "state"),
        Some("shed"),
        "{shed_status}"
    );
    for id in [&first_id, &low_ids[0]] {
        assert_eq!(json_field(&wait_terminal(addr, id), "state"), Some("done"));
    }
    server.shutdown(true);
    server.join();
}

#[test]
fn cancel_and_deadline_paths() {
    let server = Serve::start(
        small_config(),
        temp_dir("cancel"),
        Arc::new(MockRunner {
            delay: Duration::from_millis(300),
        }),
    )
    .expect("start");
    let addr = server.addr();

    let (_, running) = submit(addr, "?tenant=a", b"busy");
    let running_id = json_field(&running, "id").expect("id").to_string();
    // Queued behind the running job: a 1 ms deadline it must miss, and a
    // job we cancel while it waits.
    let (_, doomed) = submit(addr, "?tenant=a&deadline_ms=1", b"late");
    let doomed_id = json_field(&doomed, "id").expect("id").to_string();
    let (_, waiting) = submit(addr, "?tenant=a", b"never");
    let waiting_id = json_field(&waiting, "id").expect("id").to_string();

    let (status, body) = request(addr, "DELETE", &format!("/jobs/{waiting_id}"), b"");
    assert_eq!(status, 200, "{body}");
    let body = wait_terminal(addr, &waiting_id);
    assert_eq!(json_field(&body, "state"), Some("canceled"), "{body}");
    let (status, _) = request(addr, "GET", &format!("/jobs/{waiting_id}/contigs"), b"");
    assert_eq!(status, 409, "no artifacts for canceled jobs");

    let body = wait_terminal(addr, &doomed_id);
    assert_eq!(json_field(&body, "state"), Some("failed"), "{body}");
    assert!(body.contains("deadline"), "{body}");
    assert_eq!(
        json_field(&wait_terminal(addr, &running_id), "state"),
        Some("done")
    );

    // Cancelling a terminal job is a typed conflict.
    let (status, _) = request(addr, "DELETE", &format!("/jobs/{waiting_id}"), b"");
    assert_eq!(status, 409);
    server.shutdown(true);
    server.join();
}

#[test]
fn fast_shutdown_resumes_queued_jobs_on_restart() {
    let dir = temp_dir("resume");
    let slow = ServeConfig {
        workers: 1,
        ..small_config()
    };
    let server = Serve::start(
        slow.clone(),
        &dir,
        Arc::new(MockRunner {
            delay: Duration::from_millis(400),
        }),
    )
    .expect("start");
    let addr = server.addr();

    let mut ids = Vec::new();
    for i in 0..4 {
        let (status, body) = submit(addr, "?tenant=a", format!("batch{i}").as_bytes());
        assert_eq!(status, 202, "{body}");
        ids.push(json_field(&body, "id").expect("id").to_string());
    }
    // Fast shutdown: the running job finishes, queued jobs stay on disk.
    let (status, _) = request(addr, "POST", "/admin/shutdown?mode=fast", b"");
    assert_eq!(status, 200);
    let (status, body) = submit(addr, "?tenant=a", b"rejected");
    assert!(
        status == 503 || status == 400,
        "admissions closed after shutdown: {status} {body}"
    );
    server.join();

    // Restart on the same state dir with an instant runner.
    let server = Serve::start(
        slow,
        &dir,
        Arc::new(MockRunner {
            delay: Duration::ZERO,
        }),
    )
    .expect("restart");
    let addr = server.addr();
    for id in &ids {
        let body = wait_terminal(addr, id);
        assert_eq!(json_field(&body, "state"), Some("done"), "{body}");
    }
    let (_, metrics) = request(addr, "GET", "/metrics", b"");
    assert!(metrics.contains("serve.jobs.resumed"), "{metrics}");
    server.shutdown(true);
    server.join();
}

#[test]
fn recovery_overflow_sheds_instead_of_crashing() {
    // After a fast shutdown, queued + formerly-running jobs all come back
    // as pending; restarting with a *smaller* total capacity forces the
    // recovery loop into the shed path (a high-priority record re-admitted
    // into a full queue displaces a low one). The victim must get a
    // terminal "shed" status — not a startup panic or a zombie "queued".
    let dir = temp_dir("recovery-shed");
    let big = ServeConfig {
        workers: 1,
        sched: SchedConfig {
            per_tenant_capacity: 8,
            total_capacity: 8,
            max_tenants: 4,
            quantum: 2,
        },
        ..small_config()
    };
    let server = Serve::start(
        big.clone(),
        &dir,
        Arc::new(MockRunner {
            delay: Duration::from_millis(400),
        }),
    )
    .expect("start");
    let addr = server.addr();

    // One running low job + five queued low jobs + one queued high job.
    let (status, body) = submit(addr, "?tenant=a&priority=low", b"r1");
    assert_eq!(status, 202, "{body}");
    std::thread::sleep(Duration::from_millis(50)); // let it dispatch
    let mut low_ids = Vec::new();
    for i in 2..=6 {
        let (status, body) = submit(addr, "?tenant=a&priority=low", format!("r{i}").as_bytes());
        assert_eq!(status, 202, "{body}");
        low_ids.push(json_field(&body, "id").expect("id").to_string());
    }
    let (status, body) = submit(addr, "?tenant=b&priority=high", b"urgent");
    assert_eq!(status, 202, "{body}");
    let high_id = json_field(&body, "id").expect("id").to_string();
    let (status, _) = request(addr, "POST", "/admin/shutdown?mode=fast", b"");
    assert_eq!(status, 200);
    server.join();

    // Six pending jobs, capacity five: re-admitting the high job must shed
    // the newest low one.
    let server = Serve::start(
        ServeConfig {
            sched: SchedConfig {
                total_capacity: 5,
                ..big.sched
            },
            ..big
        },
        &dir,
        Arc::new(MockRunner {
            delay: Duration::ZERO,
        }),
    )
    .expect("restart must survive recovery overflow");
    let addr = server.addr();

    let victim = low_ids.last().expect("five low jobs");
    let body = wait_terminal(addr, victim);
    assert_eq!(json_field(&body, "state"), Some("shed"), "{body}");
    for id in low_ids.iter().take(low_ids.len() - 1).chain([&high_id]) {
        let body = wait_terminal(addr, id);
        assert_eq!(json_field(&body, "state"), Some("done"), "{body}");
    }
    server.shutdown(true);
    server.join();
}

#[test]
fn slow_loris_client_is_cut_off_at_the_request_budget() {
    let cfg = ServeConfig {
        io_timeout: Duration::from_millis(300),
        request_budget: Duration::from_millis(500),
        ..small_config()
    };
    let server = Serve::start(
        cfg,
        temp_dir("loris"),
        Arc::new(MockRunner {
            delay: Duration::ZERO,
        }),
    )
    .expect("start");
    let addr = server.addr();

    // Drip header bytes faster than io_timeout so only the overall budget
    // can end the request; the server must drop us near request_budget.
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nx-drip: ")
        .expect("write head");
    let mut closed_at = None;
    while start.elapsed() < Duration::from_secs(10) {
        if stream.write_all(b"a").is_err() {
            closed_at = Some(start.elapsed());
            break;
        }
        // The 100 ms read timeout doubles as the drip interval; EOF or a
        // reset means the server hung up on us.
        match stream.read(&mut [0u8; 64]) {
            Ok(0) => {
                closed_at = Some(start.elapsed());
                break;
            }
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                closed_at = Some(start.elapsed());
                break;
            }
        }
    }
    let closed_at = closed_at.expect("server never cut off the slow-loris client");
    assert!(
        closed_at < Duration::from_secs(5),
        "cut-off took {closed_at:?}, budget is 500 ms"
    );

    // The handler thread is free again: health answers normally.
    let (status, body) = request(addr, "GET", "/healthz", b"");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    server.shutdown(true);
    server.join();
}

#[test]
fn protocol_errors_are_typed() {
    let server = Serve::start(
        small_config(),
        temp_dir("proto"),
        Arc::new(MockRunner {
            delay: Duration::ZERO,
        }),
    )
    .expect("start");
    let addr = server.addr();
    let cases: [(&str, &str, &[u8], u16); 6] = [
        ("POST", "/jobs?tenant=bad/name", b"x", 400),
        ("POST", "/jobs?priority=urgent", b"x", 400),
        ("POST", "/jobs", b"", 400),
        ("PUT", "/jobs/job-000001", b"", 405),
        ("GET", "/nope", b"", 404),
        ("GET", "/jobs/not-a-job", b"", 400),
    ];
    for (method, path, body, want) in cases {
        let (status, resp) = request(addr, method, path, body);
        assert_eq!(status, want, "{method} {path}: {resp}");
    }
    server.shutdown(true);
    server.join();
}

#[test]
fn memory_pressure_sheds_with_typed_503_until_jobs_release() {
    // Budget fits exactly one 8-byte job (estimate = 4 × input). The
    // runner is slow, so the first job holds its reservation while the
    // second arrives.
    let mut cfg = small_config();
    cfg.memory_budget = 40;
    let server = Serve::start(
        cfg,
        temp_dir("mem-pressure"),
        Arc::new(MockRunner {
            delay: Duration::from_millis(300),
        }),
    )
    .expect("start");
    let addr = server.addr();

    let (status, body) = submit(addr, "?tenant=alice", b"acgtacgt");
    assert_eq!(status, 202, "{body}");
    let first = json_field(&body, "id").expect("id").to_string();

    // Same-size arrival while the first job still holds the budget: shed
    // with the typed memory_pressure 503, not queued, not a panic.
    let (status, body) = submit(addr, "?tenant=bob", b"acgtacgt");
    assert_eq!(status, 503, "{body}");
    assert_eq!(json_field(&body, "error"), Some("memory_pressure"), "{body}");

    // A job small enough to fit beside the running one is admitted.
    let (status, body) = submit(addr, "?tenant=bob", b"a");
    assert_eq!(status, 202, "{body}");
    let small = json_field(&body, "id").expect("id").to_string();

    // Once the first job reaches a terminal state its reservation is
    // released and the previously-shed size fits again.
    let terminal = wait_terminal(addr, &first);
    assert_eq!(json_field(&terminal, "state"), Some("done"), "{terminal}");
    wait_terminal(addr, &small);
    let (status, body) = submit(addr, "?tenant=bob", b"acgtacgt");
    assert_eq!(status, 202, "{body}");
    let third = json_field(&body, "id").expect("id").to_string();
    wait_terminal(addr, &third);

    // The shed is visible in metrics: a typed rejection counter plus the
    // ledger gauges.
    let (status, metrics) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(
        metrics.contains("serve.jobs.rejected.memory_pressure"),
        "{metrics}"
    );
    assert!(metrics.contains("serve.mem.limit"), "{metrics}");
    server.shutdown(true);
    server.join();
}
