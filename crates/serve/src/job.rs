//! Job identity and priority.

use std::fmt;

/// A server-assigned job identifier, monotonically increasing across the
/// lifetime of a state directory (restarts continue the sequence, they do
/// not reuse identifiers). Rendered as `job-000042`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl JobId {
    /// Directory / URL segment name for this job.
    pub fn dir_name(self) -> String {
        format!("{self}")
    }

    /// Parses a `job-NNNNNN` segment back into an identifier.
    pub fn parse(s: &str) -> Option<JobId> {
        let digits = s.strip_prefix("job-")?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse::<u64>().ok().map(JobId)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{:06}", self.0)
    }
}

/// Job priority. Under saturation the scheduler sheds the newest queued
/// job of the lowest present priority to make room for a strictly
/// higher-priority arrival; dispatch within a tenant always prefers
/// higher priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Shed first; dispatched only when nothing else is queued.
    Low,
    /// The default.
    Normal,
    /// Dispatched first within a tenant; never shed in favour of others.
    High,
}

impl Priority {
    /// All priorities, lowest first. Index order matches [`Priority::index`].
    pub const ALL: [Priority; 3] = [Priority::Low, Priority::Normal, Priority::High];

    /// Stable wire/disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire/disk name (case-sensitive, matching [`Priority::as_str`]).
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }

    /// Index into per-priority queue arrays: low = 0, normal = 1, high = 2.
    pub fn index(self) -> usize {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_round_trips_through_display() {
        for raw in [0u64, 1, 41, 999_999, 1_000_000, u64::MAX] {
            let id = JobId(raw);
            assert_eq!(JobId::parse(&id.dir_name()), Some(id));
        }
        assert_eq!(format!("{}", JobId(42)), "job-000042");
    }

    #[test]
    fn job_id_parse_rejects_garbage() {
        for bad in ["job-", "job", "job-12x", "42", "job--1", "JOB-000001"] {
            assert_eq!(JobId::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn priority_round_trips_and_orders() {
        for p in Priority::ALL {
            assert_eq!(Priority::parse(p.as_str()), Some(p));
        }
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::parse("urgent"), None);
    }
}
