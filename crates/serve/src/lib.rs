//! # fc-serve — assembly-as-a-service on the Focus pipeline
//!
//! A pure-std HTTP/1.1 daemon that accepts FASTQ assembly jobs and runs a
//! bounded number of them concurrently, lifting the single-run fault
//! tolerance of fc-ckpt to the serving layer where overload, tenant
//! contention and process death are the normal case (DESIGN.md §12):
//!
//! * **Admission control & fairness** — every queue in the system is
//!   bounded; a full queue produces a *typed* rejection (HTTP 429 with a
//!   machine-readable reason), never unbounded memory growth. Dispatch
//!   order is deficit-round-robin across tenants ([`sched::Scheduler`]),
//!   so one noisy tenant cannot starve the others.
//! * **Load shedding** — at global capacity a higher-priority arrival
//!   displaces the newest lowest-priority queued job, which terminates
//!   with an explicit `shed` status instead of silently vanishing.
//! * **Durability** — a job is acknowledged only after its input bytes
//!   and metadata are fsync'd ([`state::StateDir`]); every run checkpoints
//!   phase boundaries through fc-ckpt under a per-job directory. A
//!   `kill -9`'d server restarted on the same state directory re-admits
//!   every unfinished job and resumes it from its last checkpoint,
//!   producing byte-identical contigs and logical-clock metrics
//!   (`tests/serve_chaos.rs` at the workspace root kill-loops the real
//!   process to prove it).
//! * **Retry with capped backoff** — transient job failures are retried
//!   under fc-dist's [`RetryPolicy`](fc_dist::RetryPolicy)
//!   (`min(base × 2^(attempt-1), cap)`), the same policy that governs the
//!   simulated cluster's retransmissions.
//! * **Observability** — admission/rejection/shed counters, per-tenant
//!   queue-depth gauges and job latency histograms are recorded on an
//!   fc-obs [`Recorder`](fc_obs::Recorder) and exposed on `/metrics`.
//!
//! The crate is deliberately ignorant of the assembly pipeline: jobs are
//! executed through the [`runner::JobRunner`] trait, implemented over the
//! real pipeline by `focus_core::serve::AssemblyJobRunner` and by mock
//! runners in tests.

pub mod error;
pub mod http;
pub mod job;
pub mod metrics;
pub mod runner;
pub mod sched;
pub mod server;
pub mod state;

pub use error::ServeError;
pub use job::{JobId, Priority};
pub use runner::{JobContext, JobError, JobOutput, JobRunner};
pub use sched::{AdmitOutcome, Rejection, SchedConfig, Scheduler};
pub use server::{Serve, ServeConfig};
pub use state::{input_fnv, JobRecord, StateDir, TerminalState, TerminalStatus};
