//! Typed errors for the serving layer.

use std::fmt;
use std::io;

/// Errors produced by the serve subsystem outside the HTTP request cycle
/// (state-directory I/O, startup, recovery). Request-level refusals are
/// modelled separately as [`crate::sched::Rejection`] so that backpressure
/// is a *value*, not an error path.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O operation on the state directory or a socket failed.
    Io {
        /// What the server was doing when the operation failed.
        context: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A persisted artifact (job metadata, status file) failed validation.
    Corrupt {
        /// Path-ish description of the artifact.
        what: String,
        /// Why it was rejected.
        message: String,
    },
    /// The server configuration is invalid (zero capacities, bad address).
    Config(ServeConfigError),
}

/// A specific, typed configuration defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfigError {
    /// The offending field.
    pub field: &'static str,
    /// Human-readable constraint that was violated.
    pub message: String,
}

impl ServeError {
    /// Wraps an I/O error with the operation that produced it.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        ServeError::Io {
            context: context.into(),
            source,
        }
    }

    /// Builds a [`ServeError::Corrupt`] for a persisted artifact.
    pub fn corrupt(what: impl Into<String>, message: impl Into<String>) -> Self {
        ServeError::Corrupt {
            what: what.into(),
            message: message.into(),
        }
    }

    /// Builds a [`ServeError::Config`] for a bad configuration field.
    pub fn config(field: &'static str, message: impl Into<String>) -> Self {
        ServeError::Config(ServeConfigError {
            field,
            message: message.into(),
        })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "serve i/o: {context}: {source}"),
            ServeError::Corrupt { what, message } => {
                write!(f, "serve state corrupt: {what}: {message}")
            }
            ServeError::Config(e) => write!(f, "serve config: {}: {}", e.field, e.message),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
