//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! Just enough protocol for the job API: one request per connection
//! (`Connection: close`), `Content-Length` bodies only (no chunked
//! encoding), percent-decoded query strings. Every input dimension is
//! bounded — header block and body sizes are capped and produce typed
//! 431/413 refusals instead of unbounded buffering, in line with the
//! serving layer's "never OOM" rule.
//!
//! The parser works over any [`Read`], so unit tests drive it with
//! in-memory cursors and the server hands it `TcpStream`s wrapped in a
//! [`DeadlineReader`], which bounds the total wall-clock spent reading one
//! request (a per-read socket timeout alone resets on every byte, so a
//! slow-loris client could pin a handler thread indefinitely).

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Typed failures while reading a request. Each maps to an HTTP status via
/// [`HttpError::status`]; I/O errors abort the connection instead.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (including read timeouts).
    Io(io::Error),
    /// The request was syntactically invalid.
    BadRequest(&'static str),
    /// The header block exceeded [`MAX_HEAD_BYTES`].
    HeadersTooLarge {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// `Content-Length` exceeded the server's body cap.
    BodyTooLarge {
        /// Declared content length.
        length: usize,
        /// The limit that was exceeded.
        limit: usize,
    },
}

impl HttpError {
    /// Status code to answer with, or `None` when the connection is dead
    /// and no answer can be delivered.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Io(_) => None,
            HttpError::BadRequest(_) => Some(400),
            HttpError::HeadersTooLarge { .. } => Some(431),
            HttpError::BodyTooLarge { .. } => Some(413),
        }
    }

    /// Short reason string for response bodies.
    pub fn reason(&self) -> String {
        match self {
            HttpError::Io(e) => format!("i/o: {e}"),
            HttpError::BadRequest(m) => (*m).to_string(),
            HttpError::HeadersTooLarge { limit } => {
                format!("header block exceeds {limit} bytes")
            }
            HttpError::BodyTooLarge { length, limit } => {
                format!("body of {length} bytes exceeds {limit} bytes")
            }
        }
    }
}

/// A parsed request. Header names are lower-cased; query keys/values are
/// percent-decoded.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path component, without the query string.
    pub path: String,
    /// Decoded query parameters in arrival order; bounded by
    /// [`MAX_HEAD_BYTES`] since they come from the request line.
    pub query: Vec<(String, String)>,
    /// Lower-cased header name/value pairs; bounded by [`MAX_HEAD_BYTES`].
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// [`Read`] adapter that enforces a total wall-clock budget across every
/// read of one request. Before each read it installs `min(per_read, time
/// left)` as the socket read timeout, so no single read outlives the
/// deadline and the whole request fails with [`io::ErrorKind::TimedOut`]
/// once the budget is spent — regardless of how slowly the peer drips
/// bytes.
pub struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    per_read: Duration,
    deadline: Instant,
}

impl<'a> DeadlineReader<'a> {
    /// Wraps `stream` with a fresh `budget` starting now; `per_read` caps
    /// each individual read on top of the overall deadline.
    pub fn new(stream: &'a TcpStream, per_read: Duration, budget: Duration) -> Self {
        DeadlineReader {
            stream,
            per_read,
            deadline: Instant::now() + budget,
        }
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let left = self.deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request wall-clock budget exhausted",
            ));
        }
        self.stream.set_read_timeout(Some(left.min(self.per_read)))?;
        let mut stream = self.stream;
        stream.read(buf)
    }
}

/// Reads and parses one request. `max_body` caps the accepted
/// `Content-Length`; the header block is capped at [`MAX_HEAD_BYTES`].
pub fn read_request(reader: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line; anything past it is body prefix.
    // Bounded by MAX_HEAD_BYTES + one read chunk.
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    let split = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge {
                limit: MAX_HEAD_BYTES,
            });
        }
        let n = reader.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("truncated request head"));
        }
        head.extend_from_slice(&chunk[..n]);
    };
    let body_prefix = head[split + 4..].to_vec();
    head.truncate(split);
    let head_text =
        std::str::from_utf8(&head).map_err(|_| HttpError::BadRequest("non-utf8 header block"))?;

    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadRequest("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::BadRequest("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing http version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported http version"));
    }

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(path_raw).ok_or(HttpError::BadRequest("bad path encoding"))?;
    let mut query = Vec::new();
    for pair in query_raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k).ok_or(HttpError::BadRequest("bad query encoding"))?;
        let v = percent_decode(v).ok_or(HttpError::BadRequest("bad query encoding"))?;
        query.push((k, v));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest("bad content-length"))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            length: content_length,
            limit: max_body,
        });
    }

    let mut body = body_prefix;
    if body.len() > content_length {
        return Err(HttpError::BadRequest("body longer than content-length"));
    }
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = reader.read(&mut chunk[..want]).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::BadRequest("truncated body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Position of the `\r\n\r\n` separator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Percent-decodes a URL component (`%41` → `A`, `+` → space). Returns
/// `None` on malformed escapes or non-UTF-8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let text = std::str::from_utf8(hex).ok()?;
                out.push(u8::from_str_radix(text, 16).ok()?);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error body `{"error": <kind>, "message": <message>}`.
    pub fn error(status: u16, kind: &str, message: &str) -> Self {
        Response::json(
            status,
            format!(
                "{{\"error\":{},\"message\":{}}}",
                json_str(kind),
                json_str(message)
            ),
        )
    }
}

/// Serializes a response with `Connection: close` and a `Content-Length`.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    )?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// Canonical reason phrases for the statuses the server emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Escapes a string into a JSON string literal (with quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), 1 << 20)
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let req = parse(
            "POST /jobs?tenant=alice&priority=high HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nACGT",
        )
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query_param("tenant"), Some("alice"));
        assert_eq!(req.query_param("priority"), Some("high"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"ACGT");
    }

    #[test]
    fn percent_decoding_applies_to_query() {
        let req = parse("GET /x?name=a%2Fb+c HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.query_param("name"), Some("a/b c"));
        assert_eq!(percent_decode("%zz"), None);
    }

    #[test]
    fn oversized_body_is_a_typed_413() {
        let err = read_request(
            &mut Cursor::new(b"POST /jobs HTTP/1.1\r\ncontent-length: 100\r\n\r\n".to_vec()),
            10,
        )
        .expect_err("too large");
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn oversized_head_is_a_typed_431() {
        let mut raw = b"GET /x HTTP/1.1\r\nx-pad: ".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1024));
        raw.extend_from_slice(b"\r\n\r\n");
        let err = read_request(&mut Cursor::new(raw), 10).expect_err("too large");
        assert_eq!(err.status(), Some(431));
    }

    #[test]
    fn truncated_requests_are_bad_requests() {
        for raw in ["GET /x HTTP/1.1\r\n", "", "GET\r\n\r\n"] {
            let err = parse(raw).expect_err("truncated");
            assert_eq!(err.status(), Some(400), "{raw:?}");
        }
        let err = parse("POST /x HTTP/1.1\r\ncontent-length: 9\r\n\r\nshort").expect_err("body");
        assert_eq!(err.status(), Some(400));
    }

    #[test]
    fn response_serializes_with_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(429, "{\"error\":\"saturated\"}")).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 21\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"saturated\"}"));
    }

    #[test]
    fn json_str_escapes_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
