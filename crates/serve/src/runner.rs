//! Job execution abstraction and retry-with-capped-backoff.
//!
//! fc-serve never touches the assembly pipeline directly: a worker hands a
//! [`JobContext`] (paths + cancellation flag) to a [`JobRunner`], and the
//! production implementation (`focus_core::serve::AssemblyJobRunner`) runs
//! `assemble_with_checkpoints` under the job's checkpoint directory. Tests
//! plug in mock runners to exercise retries, cancellation and crashes
//! without assembling anything.
//!
//! Transient failures ([`JobError::transient`]) are retried under
//! fc-dist's [`RetryPolicy`] — the same exponential `min(base × 2^(n-1),
//! cap)` schedule the simulated cluster uses for message retransmission —
//! scaled by a configurable unit so tests can run it at zero delay.

use crate::job::JobId;
use fc_dist::RetryPolicy;
use fc_obs::Recorder;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything a runner needs to execute one job.
#[derive(Debug, Clone)]
pub struct JobContext {
    /// The job being run.
    pub id: JobId,
    /// Owning tenant (for tracing only; isolation happens in the server).
    pub tenant: String,
    /// Path of the submitted FASTQ bytes.
    pub input_path: PathBuf,
    /// Per-job fc-ckpt directory; the runner must checkpoint into it and
    /// resume from it so crashed runs continue instead of restarting.
    pub ckpt_dir: PathBuf,
    /// Worker threads the job may use.
    pub threads: usize,
    /// Cooperative cancellation: set by the server on DELETE or shutdown.
    /// Runners should poll it at phase boundaries and abort early.
    pub cancel: Arc<AtomicBool>,
}

impl JobContext {
    /// Whether cancellation was requested.
    pub fn canceled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

/// A successful assembly, ready to persist.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Rendered FASTA bytes (same format as the `focus assemble` CLI).
    pub contigs_fasta: Vec<u8>,
    /// Logical-clock metrics snapshot (byte-stable across crash/resume).
    pub metrics_json: String,
    /// Chrome `trace_event` JSON of the run's causal span/flow graph,
    /// tagged with the job and tenant; empty when the runner records no
    /// trace (the server then answers `GET /jobs/{id}/trace` with 409).
    pub trace_json: String,
    /// Contig count.
    pub num_contigs: u64,
    /// N50 of the contigs.
    pub n50: u64,
    /// Total assembled bases.
    pub total_bases: u64,
}

/// A failed attempt. `transient` failures are retried under the policy;
/// permanent ones (bad input, invalid config) fail the job immediately.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Whether another attempt could plausibly succeed.
    pub transient: bool,
    /// What went wrong.
    pub message: String,
}

impl JobError {
    /// A permanent failure.
    pub fn permanent(message: impl Into<String>) -> Self {
        JobError {
            transient: false,
            message: message.into(),
        }
    }

    /// A transient failure, eligible for retry.
    pub fn transient(message: impl Into<String>) -> Self {
        JobError {
            transient: true,
            message: message.into(),
        }
    }
}

/// Executes one assembly job.
pub trait JobRunner: Send + Sync + 'static {
    /// Runs (or resumes) the job described by `ctx`.
    fn run(&self, ctx: &JobContext) -> Result<JobOutput, JobError>;
}

/// Outcome of [`run_with_retry`].
#[derive(Debug)]
pub enum RunResult {
    /// An attempt succeeded.
    Completed(JobOutput),
    /// Cancellation was observed between attempts (a runner may also
    /// surface mid-attempt cancellation as a permanent error).
    Canceled,
    /// All attempts failed (or the failure was permanent).
    Failed {
        /// Attempts actually made.
        attempts: u32,
        /// Message of the last failure.
        message: String,
    },
}

/// Runs a job under `policy`: up to `max_attempts` tries, sleeping
/// `backoff_delay(n) × backoff_unit` between transient failures, checking
/// the cancellation flag before every attempt and during backoff sleeps.
/// Each retry increments `serve.jobs.retried` on `recorder`.
pub fn run_with_retry(
    runner: &dyn JobRunner,
    ctx: &JobContext,
    policy: &RetryPolicy,
    backoff_unit: Duration,
    recorder: &Recorder,
) -> RunResult {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 1;
    loop {
        if ctx.canceled() {
            return RunResult::Canceled;
        }
        match runner.run(ctx) {
            Ok(output) => return RunResult::Completed(output),
            Err(e) if e.transient && attempt < max_attempts => {
                recorder.add("serve.jobs.retried", 1);
                let units = policy.backoff_delay(attempt);
                let delay = backoff_unit.mul_f64(units.max(0.0));
                if !sleep_unless_canceled(ctx, delay) {
                    return RunResult::Canceled;
                }
                attempt += 1;
            }
            Err(e) => {
                return RunResult::Failed {
                    attempts: attempt,
                    message: e.message,
                };
            }
        }
    }
}

/// Sleeps for `total`, waking every 10 ms to poll cancellation. Returns
/// `false` if cancellation was observed.
fn sleep_unless_canceled(ctx: &JobContext, total: Duration) -> bool {
    let slice = Duration::from_millis(10);
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if ctx.canceled() {
            return false;
        }
        let step = remaining.min(slice);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
    !ctx.canceled()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_obs::ObsOptions;
    use std::sync::atomic::AtomicU32;

    struct FlakyRunner {
        fail_first: u32,
        transient: bool,
        calls: AtomicU32,
    }

    impl JobRunner for FlakyRunner {
        fn run(&self, _ctx: &JobContext) -> Result<JobOutput, JobError> {
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if call < self.fail_first {
                return Err(JobError {
                    transient: self.transient,
                    message: format!("attempt {} failed", call + 1),
                });
            }
            Ok(JobOutput {
                contigs_fasta: b">c\nACGT\n".to_vec(),
                metrics_json: "{}".to_string(),
                trace_json: String::new(),
                num_contigs: 1,
                n50: 4,
                total_bases: 4,
            })
        }
    }

    fn ctx() -> JobContext {
        JobContext {
            id: JobId(1),
            tenant: "t".to_string(),
            input_path: PathBuf::from("/dev/null"),
            ckpt_dir: PathBuf::from("/tmp"),
            threads: 1,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    fn policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn transient_failures_retry_to_success() {
        let runner = FlakyRunner {
            fail_first: 2,
            transient: true,
            calls: AtomicU32::new(0),
        };
        let rec = Recorder::new(ObsOptions::logical());
        let result = run_with_retry(&runner, &ctx(), &policy(4), Duration::ZERO, &rec);
        assert!(matches!(result, RunResult::Completed(_)), "{result:?}");
        assert_eq!(runner.calls.load(Ordering::SeqCst), 3);
        assert_eq!(
            rec.snapshot().counters.get("serve.jobs.retried").copied(),
            Some(2)
        );
    }

    #[test]
    fn permanent_failure_does_not_retry() {
        let runner = FlakyRunner {
            fail_first: 10,
            transient: false,
            calls: AtomicU32::new(0),
        };
        let rec = Recorder::new(ObsOptions::logical());
        let result = run_with_retry(&runner, &ctx(), &policy(4), Duration::ZERO, &rec);
        match result {
            RunResult::Failed { attempts, message } => {
                assert_eq!(attempts, 1);
                assert!(message.contains("attempt 1"), "{message}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(runner.calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn retries_are_capped_by_max_attempts() {
        let runner = FlakyRunner {
            fail_first: 10,
            transient: true,
            calls: AtomicU32::new(0),
        };
        let rec = Recorder::new(ObsOptions::logical());
        let result = run_with_retry(&runner, &ctx(), &policy(3), Duration::ZERO, &rec);
        assert!(
            matches!(result, RunResult::Failed { attempts: 3, .. }),
            "{result:?}"
        );
        assert_eq!(runner.calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn cancellation_preempts_the_first_attempt() {
        let runner = FlakyRunner {
            fail_first: 0,
            transient: true,
            calls: AtomicU32::new(0),
        };
        let rec = Recorder::new(ObsOptions::logical());
        let c = ctx();
        c.cancel.store(true, Ordering::Relaxed);
        let result = run_with_retry(&runner, &c, &policy(4), Duration::ZERO, &rec);
        assert!(matches!(result, RunResult::Canceled), "{result:?}");
        assert_eq!(runner.calls.load(Ordering::SeqCst), 0, "never invoked");
    }
}
