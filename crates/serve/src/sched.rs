//! Bounded multi-tenant admission control and fair dispatch.
//!
//! The scheduler is a *pure* data structure: no clocks, no randomness, no
//! I/O. Given the same sequence of [`Scheduler::admit`] / [`Scheduler::next`]
//! / [`Scheduler::cancel`] calls it produces the same sequence of outcomes,
//! which is what makes backpressure testable (`proptests` below replay
//! seeded arrival schedules) and the server resumable (after a crash the
//! recovered jobs are re-admitted in job-id order, reproducing the queue).
//!
//! ## State machine
//!
//! ```text
//!   admit ──► Queued ──next()──► (dispatched, leaves the scheduler)
//!     │          │
//!     │          ├─cancel()──► removed
//!     │          └─displaced─► Shed (reported to the admitting caller)
//!     └──► Rejected{TenantQueueFull | Saturated | TooManyTenants | Closed}
//! ```
//!
//! Fairness is deficit-round-robin with unit job cost: a cursor rotates
//! over tenants, granting each up to `quantum` consecutive dispatches per
//! visit, so in any window of `tenants × quantum` dispatches every backlogged
//! tenant is served at least once. Within a tenant, higher priorities
//! dispatch first and FIFO order breaks ties.
//!
//! Every queue is bounded: per-tenant queues by `per_tenant_capacity`,
//! their sum by `total_capacity`, and the tenant table by `max_tenants`.

use crate::job::{JobId, Priority};
use std::collections::VecDeque;

/// Capacity bounds and fairness quantum for a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Maximum queued (not yet dispatched) jobs per tenant.
    pub per_tenant_capacity: usize,
    /// Maximum queued jobs across all tenants.
    pub total_capacity: usize,
    /// Maximum distinct tenant names the scheduler will track.
    pub max_tenants: usize,
    /// Consecutive dispatches granted to a tenant per round-robin visit.
    pub quantum: u32,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            per_tenant_capacity: 32,
            total_capacity: 256,
            max_tenants: 64,
            quantum: 4,
        }
    }
}

impl SchedConfig {
    /// Clamps degenerate values (zeroes) up to the smallest useful bound so
    /// a scheduler can always make progress.
    pub fn sanitized(mut self) -> Self {
        self.per_tenant_capacity = self.per_tenant_capacity.max(1);
        self.total_capacity = self.total_capacity.max(1);
        self.max_tenants = self.max_tenants.max(1);
        self.quantum = self.quantum.max(1);
        self
    }
}

/// Why an arrival was refused. Every variant maps to a stable wire `kind`
/// and an HTTP status; rejections are values, not errors, so the server can
/// count them and answer with a typed body instead of dropping work silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The tenant's own queue is full.
    TenantQueueFull {
        /// Jobs currently queued for this tenant.
        depth: usize,
        /// The per-tenant bound that was hit.
        capacity: usize,
    },
    /// The global queue is full and no lower-priority victim exists to shed.
    Saturated {
        /// Jobs currently queued across all tenants.
        depth: usize,
        /// The global bound that was hit.
        capacity: usize,
    },
    /// The tenant table is full and this name is new.
    TooManyTenants {
        /// Tenants currently tracked.
        tenants: usize,
        /// The tenant-table bound that was hit.
        max_tenants: usize,
    },
    /// Admitting this job would overrun the server's memory budget; the
    /// load is shed until running jobs release their reservations.
    MemoryPressure {
        /// Coarse resident-set estimate for the refused job, bytes.
        requested: u64,
        /// Bytes still unreserved under the budget.
        available: u64,
    },
    /// The server is shutting down and no longer admits work.
    Closed,
}

impl Rejection {
    /// Stable machine-readable reason, used in HTTP bodies and metric names.
    pub fn kind(&self) -> &'static str {
        match self {
            Rejection::TenantQueueFull { .. } => "tenant_queue_full",
            Rejection::Saturated { .. } => "saturated",
            Rejection::TooManyTenants { .. } => "too_many_tenants",
            Rejection::MemoryPressure { .. } => "memory_pressure",
            Rejection::Closed => "closed",
        }
    }

    /// HTTP status the server answers with: 429 for backpressure (the
    /// client should slow down), 503 for shed load (memory pressure,
    /// shutdown) where retrying later can succeed without the client
    /// changing anything.
    pub fn http_status(&self) -> u16 {
        match self {
            Rejection::Closed | Rejection::MemoryPressure { .. } => 503,
            _ => 429,
        }
    }
}

/// A queued job displaced by a higher-priority arrival under saturation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShedJob {
    /// The displaced job.
    pub id: JobId,
    /// Tenant that owned it.
    pub tenant: String,
    /// Its (lower) priority.
    pub priority: Priority,
}

/// Result of [`Scheduler::admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The job is queued; if admission displaced a lower-priority job under
    /// saturation, the victim is reported so the caller can finalize it.
    Queued {
        /// The job shed to make room, if any.
        shed: Option<ShedJob>,
    },
    /// The job was refused with a typed reason.
    Rejected(Rejection),
}

/// One queued job. `seq` is the global admission sequence number, used for
/// FIFO tie-breaks and for picking the *newest* victim when shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    id: JobId,
    seq: u64,
}

/// Per-tenant state: one FIFO per priority level.
#[derive(Debug)]
struct Tenant {
    name: String,
    /// Indexed by [`Priority::index`]; each queue is bounded because the
    /// priorities' combined depth never exceeds `per_tenant_capacity`
    /// (enforced in [`Scheduler::admit`]).
    queues: [VecDeque<Entry>; 3],
}

impl Tenant {
    fn depth(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

/// Deterministic bounded deficit-round-robin scheduler. See the module docs
/// for the state machine and fairness bound.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedConfig,
    /// Tenant table, bounded by `cfg.max_tenants` (enforced in `admit`);
    /// entries persist for the scheduler's lifetime so gauge names and
    /// round-robin order stay stable.
    tenants: Vec<Tenant>,
    /// Round-robin cursor into `tenants`.
    cursor: usize,
    /// Dispatches remaining in the current tenant's quantum burst.
    burst: u32,
    /// Next global admission sequence number.
    seq: u64,
    /// Cached total queued depth (= sum of tenant depths).
    queued: usize,
    /// When true every admission is rejected with [`Rejection::Closed`].
    closed: bool,
}

impl Scheduler {
    /// Creates a scheduler with the given (sanitized) bounds.
    pub fn new(cfg: SchedConfig) -> Self {
        let cfg = cfg.sanitized();
        Scheduler {
            burst: cfg.quantum,
            cfg,
            tenants: Vec::new(),
            cursor: 0,
            seq: 0,
            queued: 0,
            closed: false,
        }
    }

    /// The (sanitized) configuration this scheduler runs under.
    pub fn config(&self) -> SchedConfig {
        self.cfg
    }

    /// Total jobs currently queued.
    pub fn total_depth(&self) -> usize {
        self.queued
    }

    /// Queued depth for one tenant (0 for unknown tenants).
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.tenants
            .iter()
            .find(|t| t.name == tenant)
            .map_or(0, Tenant::depth)
    }

    /// Iterates `(tenant, queued_depth)` over every tenant ever admitted.
    pub fn tenant_depths(&self) -> impl Iterator<Item = (&str, usize)> {
        self.tenants.iter().map(|t| (t.name.as_str(), t.depth()))
    }

    /// Stops admitting: every subsequent [`Scheduler::admit`] call returns
    /// [`Rejection::Closed`]. Queued jobs still dispatch via `next`.
    pub fn close(&mut self) {
        self.closed = true;
    }

    /// Whether [`Scheduler::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Non-mutating preview of the [`Scheduler::admit`] decision ladder:
    /// returns the rejection `admit` would produce right now, or `None` if
    /// it would queue. Servers use it to refuse doomed submissions before
    /// paying for persistence; `admit` remains authoritative.
    pub fn would_reject(&self, tenant: &str, priority: Priority) -> Option<Rejection> {
        if self.closed {
            return Some(Rejection::Closed);
        }
        match self.tenants.iter().find(|t| t.name == tenant) {
            Some(t) => {
                let depth = t.depth();
                if depth >= self.cfg.per_tenant_capacity {
                    return Some(Rejection::TenantQueueFull {
                        depth,
                        capacity: self.cfg.per_tenant_capacity,
                    });
                }
            }
            None => {
                if self.tenants.len() >= self.cfg.max_tenants {
                    return Some(Rejection::TooManyTenants {
                        tenants: self.tenants.len(),
                        max_tenants: self.cfg.max_tenants,
                    });
                }
            }
        }
        if self.queued >= self.cfg.total_capacity {
            let victim_exists = (0..priority.index())
                .any(|level| self.tenants.iter().any(|t| !t.queues[level].is_empty()));
            if !victim_exists {
                return Some(Rejection::Saturated {
                    depth: self.queued,
                    capacity: self.cfg.total_capacity,
                });
            }
        }
        None
    }

    /// Offers a job for admission. See the module docs for the decision
    /// ladder; the order is: closed → new-tenant bound → per-tenant bound →
    /// global bound (with priority shedding) → queued.
    pub fn admit(&mut self, tenant: &str, id: JobId, priority: Priority) -> AdmitOutcome {
        if self.closed {
            return AdmitOutcome::Rejected(Rejection::Closed);
        }
        let existing = self.tenants.iter().position(|t| t.name == tenant);
        match existing {
            Some(i) => {
                let depth = self.tenants[i].depth();
                if depth >= self.cfg.per_tenant_capacity {
                    return AdmitOutcome::Rejected(Rejection::TenantQueueFull {
                        depth,
                        capacity: self.cfg.per_tenant_capacity,
                    });
                }
            }
            None => {
                if self.tenants.len() >= self.cfg.max_tenants {
                    return AdmitOutcome::Rejected(Rejection::TooManyTenants {
                        tenants: self.tenants.len(),
                        max_tenants: self.cfg.max_tenants,
                    });
                }
            }
        }
        let mut shed = None;
        if self.queued >= self.cfg.total_capacity {
            match self.shed_victim(priority) {
                Some(victim) => shed = Some(victim),
                None => {
                    return AdmitOutcome::Rejected(Rejection::Saturated {
                        depth: self.queued,
                        capacity: self.cfg.total_capacity,
                    });
                }
            }
        }
        // Admission is now certain; only here may a new tenant consume a
        // table slot, so a Saturated rejection never leaks one (tenant
        // entries are permanent once created — see the field docs).
        let idx = existing.unwrap_or_else(|| {
            self.tenants.push(Tenant {
                name: tenant.to_string(),
                // Each queue is bounded: the per-tenant depth check above
                // ran before any push into it.
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            });
            self.tenants.len() - 1
        });
        let seq = self.seq;
        self.seq += 1;
        self.tenants[idx].queues[priority.index()].push_back(Entry { id, seq });
        self.queued += 1;
        AdmitOutcome::Queued { shed }
    }

    /// Removes and returns the newest queued job of the lowest priority
    /// strictly below `incoming`, or `None` when no such victim exists.
    fn shed_victim(&mut self, incoming: Priority) -> Option<ShedJob> {
        for level in 0..incoming.index() {
            let mut best: Option<(usize, usize, u64)> = None; // (tenant, pos, seq)
            for (ti, t) in self.tenants.iter().enumerate() {
                for (pos, e) in t.queues[level].iter().enumerate() {
                    if best.is_none_or(|(_, _, s)| e.seq > s) {
                        best = Some((ti, pos, e.seq));
                    }
                }
            }
            if let Some((ti, pos, _)) = best {
                let priority = Priority::ALL[level];
                let entry = self.tenants[ti].queues[level].remove(pos)?;
                self.queued -= 1;
                return Some(ShedJob {
                    id: entry.id,
                    tenant: self.tenants[ti].name.clone(),
                    priority,
                });
            }
        }
        None
    }

    /// Dispatches the next job under deficit round-robin, or `None` when
    /// nothing is queued. One job per call.
    pub fn next(&mut self) -> Option<JobId> {
        if self.tenants.is_empty() || self.queued == 0 {
            return None;
        }
        // Scan at most one full rotation plus the current (possibly
        // exhausted-burst) tenant; `queued > 0` guarantees a hit.
        for _ in 0..=self.tenants.len() {
            if self.cursor >= self.tenants.len() {
                self.cursor = 0;
            }
            let has_work = self.tenants[self.cursor].depth() > 0;
            if !has_work || self.burst == 0 {
                self.cursor = (self.cursor + 1) % self.tenants.len();
                self.burst = self.cfg.quantum;
                continue;
            }
            let t = &mut self.tenants[self.cursor];
            for level in (0..Priority::ALL.len()).rev() {
                if let Some(entry) = t.queues[level].pop_front() {
                    self.burst -= 1;
                    self.queued -= 1;
                    return Some(entry.id);
                }
            }
        }
        None
    }

    /// Removes a queued job (e.g. user cancellation). Returns the tenant it
    /// was queued under, or `None` if the job is not queued (already
    /// dispatched, shed, or unknown).
    pub fn cancel(&mut self, id: JobId) -> Option<String> {
        for t in &mut self.tenants {
            for q in &mut t.queues {
                if let Some(pos) = q.iter().position(|e| e.id == id) {
                    q.remove(pos);
                    self.queued -= 1;
                    return Some(t.name.clone());
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(per_tenant: usize, total: usize, tenants: usize, quantum: u32) -> SchedConfig {
        SchedConfig {
            per_tenant_capacity: per_tenant,
            total_capacity: total,
            max_tenants: tenants,
            quantum,
        }
    }

    fn queued(outcome: AdmitOutcome) -> Option<ShedJob> {
        match outcome {
            AdmitOutcome::Queued { shed } => shed,
            AdmitOutcome::Rejected(r) => panic!("expected Queued, got {r:?}"),
        }
    }

    fn rejected(outcome: AdmitOutcome) -> Rejection {
        match outcome {
            AdmitOutcome::Rejected(r) => r,
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn per_tenant_bound_rejects_with_depth() {
        let mut s = Scheduler::new(cfg(2, 100, 4, 1));
        assert!(queued(s.admit("a", JobId(1), Priority::Normal)).is_none());
        assert!(queued(s.admit("a", JobId(2), Priority::Normal)).is_none());
        let r = rejected(s.admit("a", JobId(3), Priority::Normal));
        assert_eq!(
            r,
            Rejection::TenantQueueFull {
                depth: 2,
                capacity: 2
            }
        );
        assert_eq!(r.kind(), "tenant_queue_full");
        assert_eq!(r.http_status(), 429);
    }

    #[test]
    fn global_bound_rejects_when_no_victim() {
        let mut s = Scheduler::new(cfg(8, 2, 4, 1));
        assert!(queued(s.admit("a", JobId(1), Priority::Normal)).is_none());
        assert!(queued(s.admit("b", JobId(2), Priority::Normal)).is_none());
        // Same priority: nothing strictly lower to shed.
        let r = rejected(s.admit("c", JobId(3), Priority::Normal));
        assert_eq!(
            r,
            Rejection::Saturated {
                depth: 2,
                capacity: 2
            }
        );
    }

    #[test]
    fn high_priority_sheds_newest_lowest() {
        let mut s = Scheduler::new(cfg(8, 2, 4, 1));
        assert!(queued(s.admit("a", JobId(1), Priority::Low)).is_none());
        assert!(queued(s.admit("b", JobId(2), Priority::Low)).is_none());
        let shed = queued(s.admit("c", JobId(3), Priority::High)).expect("victim");
        assert_eq!(shed.id, JobId(2), "newest low-priority job is shed");
        assert_eq!(shed.tenant, "b");
        assert_eq!(shed.priority, Priority::Low);
        assert_eq!(s.total_depth(), 2);
        // The shed victim is gone. Dispatch is round-robin across tenants
        // (priority orders only *within* a tenant), so tenant a's low job
        // still goes first — fairness is not globally preempted.
        assert_eq!(s.next(), Some(JobId(1)));
        assert_eq!(s.next(), Some(JobId(3)));
        assert_eq!(s.next(), None);
    }

    #[test]
    fn tenant_table_is_bounded() {
        let mut s = Scheduler::new(cfg(8, 100, 2, 1));
        assert!(queued(s.admit("a", JobId(1), Priority::Normal)).is_none());
        assert!(queued(s.admit("b", JobId(2), Priority::Normal)).is_none());
        let r = rejected(s.admit("c", JobId(3), Priority::Normal));
        assert_eq!(
            r,
            Rejection::TooManyTenants {
                tenants: 2,
                max_tenants: 2
            }
        );
        // Known tenants still admit.
        assert!(queued(s.admit("a", JobId(4), Priority::Normal)).is_none());
    }

    #[test]
    fn saturated_rejection_does_not_leak_a_tenant_slot() {
        let mut s = Scheduler::new(cfg(4, 1, 2, 1));
        assert!(queued(s.admit("a", JobId(1), Priority::Normal)).is_none());
        // Saturated, no lower-priority victim: the unknown tenant "b" is
        // rejected and must not consume one of the two table slots.
        let r = rejected(s.admit("b", JobId(2), Priority::Normal));
        assert!(matches!(r, Rejection::Saturated { .. }), "{r:?}");
        assert_eq!(s.tenant_depths().count(), 1, "tenant slot leaked");
        // Once capacity frees, a *different* new tenant can still take the
        // last slot — the rejected name did not lock it out.
        assert_eq!(s.next(), Some(JobId(1)));
        assert!(queued(s.admit("c", JobId(3), Priority::Normal)).is_none());
        assert_eq!(s.tenant_depths().count(), 2);
    }

    #[test]
    fn round_robin_interleaves_tenants_by_quantum() {
        let mut s = Scheduler::new(cfg(8, 100, 4, 2));
        for i in 0..4 {
            assert!(queued(s.admit("a", JobId(i), Priority::Normal)).is_none());
            assert!(queued(s.admit("b", JobId(100 + i), Priority::Normal)).is_none());
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.next()).map(|j| j.0).collect();
        assert_eq!(order, vec![0, 1, 100, 101, 2, 3, 102, 103]);
    }

    #[test]
    fn priority_orders_within_a_tenant() {
        let mut s = Scheduler::new(cfg(8, 100, 4, 8));
        assert!(queued(s.admit("a", JobId(1), Priority::Low)).is_none());
        assert!(queued(s.admit("a", JobId(2), Priority::High)).is_none());
        assert!(queued(s.admit("a", JobId(3), Priority::Normal)).is_none());
        assert!(queued(s.admit("a", JobId(4), Priority::High)).is_none());
        let order: Vec<u64> = std::iter::from_fn(|| s.next()).map(|j| j.0).collect();
        assert_eq!(order, vec![2, 4, 3, 1]);
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let mut s = Scheduler::new(cfg(8, 100, 4, 1));
        assert!(queued(s.admit("a", JobId(1), Priority::Normal)).is_none());
        assert!(queued(s.admit("a", JobId(2), Priority::Normal)).is_none());
        assert_eq!(s.cancel(JobId(1)).as_deref(), Some("a"));
        assert_eq!(s.cancel(JobId(1)), None, "already removed");
        assert_eq!(s.next(), Some(JobId(2)));
        assert_eq!(s.cancel(JobId(2)), None, "already dispatched");
    }

    #[test]
    fn close_rejects_new_work_but_drains_queued() {
        let mut s = Scheduler::new(cfg(8, 100, 4, 1));
        assert!(queued(s.admit("a", JobId(1), Priority::Normal)).is_none());
        s.close();
        let r = rejected(s.admit("a", JobId(2), Priority::Normal));
        assert_eq!(r, Rejection::Closed);
        assert_eq!(r.http_status(), 503);
        assert_eq!(s.next(), Some(JobId(1)));
    }

    #[test]
    fn would_reject_previews_admit() {
        let mut s = Scheduler::new(cfg(1, 2, 2, 1));
        assert_eq!(s.would_reject("a", Priority::Normal), None);
        assert!(queued(s.admit("a", JobId(1), Priority::Normal)).is_none());
        assert!(matches!(
            s.would_reject("a", Priority::Normal),
            Some(Rejection::TenantQueueFull { .. })
        ));
        assert!(queued(s.admit("b", JobId(2), Priority::Low)).is_none());
        assert!(matches!(
            s.would_reject("c", Priority::Normal),
            Some(Rejection::TooManyTenants { .. })
        ));
        // Saturated for same-or-lower priority, admissible with a victim.
        let mut s = Scheduler::new(cfg(4, 1, 4, 1));
        assert!(queued(s.admit("a", JobId(1), Priority::Low)).is_none());
        assert!(matches!(
            s.would_reject("b", Priority::Low),
            Some(Rejection::Saturated { .. })
        ));
        assert_eq!(s.would_reject("b", Priority::High), None);
        s.close();
        assert_eq!(s.would_reject("b", Priority::High), Some(Rejection::Closed));
    }

    #[test]
    fn sanitize_lifts_zero_bounds() {
        let s = Scheduler::new(cfg(0, 0, 0, 0));
        let c = s.config();
        assert!(c.per_tenant_capacity >= 1 && c.total_capacity >= 1);
        assert!(c.max_tenants >= 1 && c.quantum >= 1);
    }
}
