//! The `focus serve` daemon: accept loop, worker pool, job lifecycle.
//!
//! ## Threads
//!
//! * `http_threads` acceptor/handler threads share one nonblocking
//!   listener; each handles one connection at a time under a total
//!   per-request wall-clock budget ([`ServeConfig::request_budget`], via
//!   [`http::DeadlineReader`]), so even a stalled or slow-loris client
//!   occupies a thread only briefly and `/healthz` stays responsive
//!   under load.
//! * `workers` assembly workers pull jobs from the [`Scheduler`] under a
//!   single mutex + condvar and execute them outside the lock through the
//!   injected [`JobRunner`] with [`run_with_retry`].
//!
//! ## Job lifecycle & crash safety
//!
//! ```text
//! POST /jobs ─precheck─┬─► Rejected (typed 429/503, no disk I/O)
//!                      └─► persist input+meta ─► admit ─► 202 queued
//! worker: dispatch ─► run (ckpt under jobs/<id>/ckpt, retry w/ backoff)
//!         ─► write contigs+metrics ─► write status (terminal commit)
//! ```
//!
//! Admission persists *before* the scheduler sees the job, so a dispatched
//! job always has its input on disk; a crash at any point leaves either a
//! torn dir (removed at startup), a pending job (re-admitted and resumed
//! from its checkpoints at startup), or a terminal status. Memory stays
//! bounded: queued+running jobs are capped by the scheduler bounds, and
//! terminal jobs live only on disk.
//!
//! Deadlines are best-effort wall-clock budgets checked at dispatch time
//! (a job whose deadline passed while queued fails with a typed reason);
//! they restart after a crash, which keeps resumed output byte-identical.

use crate::error::ServeError;
use crate::http::{self, json_str, Request, Response};
use crate::job::{JobId, Priority};
use crate::metrics::{self, TenantNames};
use crate::runner::{run_with_retry, JobContext, JobRunner, RunResult};
use crate::sched::{AdmitOutcome, Rejection, SchedConfig, Scheduler, ShedJob};
use crate::state::{
    input_fnv, valid_tenant_name, JobRecord, StateDir, TerminalState, TerminalStatus,
};
use fc_dist::RetryPolicy;
use fc_obs::{MemoryBudget, ObsOptions, Recorder, Reservation};
use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration. Zero values mean "pick a default" where noted.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 picks a free port).
    pub addr: String,
    /// Concurrent assembly workers (0 → 2).
    pub workers: usize,
    /// HTTP handler threads (0 → 2).
    pub http_threads: usize,
    /// Threads per assembly job (0 → `available_parallelism / workers`,
    /// at least 1; explicit values are clamped to available cores).
    pub job_threads: usize,
    /// Maximum accepted request body, bytes (0 → 8 MiB).
    pub max_body_bytes: usize,
    /// Socket read/write timeout per connection.
    pub io_timeout: Duration,
    /// Total wall-clock budget for *reading* one request (0 → 10 s). The
    /// per-read `io_timeout` resets on every byte, so this is the bound
    /// that stops a slow-loris client from pinning an HTTP thread.
    pub request_budget: Duration,
    /// Queue bounds and fairness quantum.
    pub sched: SchedConfig,
    /// Retry schedule for transiently failed jobs.
    pub retry: RetryPolicy,
    /// Memory budget for admitted (queued + running) jobs, bytes
    /// (0 → unlimited). Each job reserves a coarse resident-set estimate
    /// at admission and releases it at its terminal state; arrivals that
    /// do not fit are shed with a typed `memory_pressure` 503 until
    /// pressure clears.
    pub memory_budget: u64,
    /// Wall-clock scale of one backoff unit ([`RetryPolicy::backoff_delay`]
    /// is unitless); tests set this to zero.
    pub backoff_unit: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            workers: 2,
            http_threads: 2,
            job_threads: 0,
            max_body_bytes: 8 * 1024 * 1024,
            io_timeout: Duration::from_secs(5),
            request_budget: Duration::from_secs(10),
            sched: SchedConfig::default(),
            retry: RetryPolicy::default(),
            memory_budget: 0,
            backoff_unit: Duration::from_millis(25),
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, resolving defaults in place.
    pub fn validated(mut self) -> Result<ServeConfig, ServeError> {
        if self.addr.is_empty() {
            return Err(ServeError::config("addr", "bind address is empty"));
        }
        self.retry
            .validate()
            .map_err(|e| ServeError::config("retry", format!("{e}")))?;
        if self.workers == 0 {
            self.workers = 2;
        }
        if self.http_threads == 0 {
            self.http_threads = 2;
        }
        if self.max_body_bytes == 0 {
            self.max_body_bytes = 8 * 1024 * 1024;
        }
        if self.request_budget.is_zero() {
            self.request_budget = Duration::from_secs(10);
        }
        self.sched = self.sched.sanitized();
        Ok(self)
    }
}

/// Lifecycle mode; admissions close as soon as the mode leaves `RUNNING`.
const MODE_RUNNING: u8 = 0;
/// Finish every queued job, then exit.
const MODE_DRAIN: u8 = 1;
/// Finish only currently-running jobs; queued jobs stay durable on disk
/// and resume on the next start.
const MODE_FAST: u8 = 2;

/// A queued or running job. Terminal jobs are dropped from memory and
/// served from disk, so this map is bounded by
/// `sched.total_capacity + workers`.
#[derive(Debug)]
struct ActiveJob {
    record: JobRecord,
    admitted_at: Instant,
    cancel: Arc<AtomicBool>,
    running: bool,
    /// The job's slice of the server memory budget, held for RAII only:
    /// dropping the entry (terminal state, shed, cancel) releases it.
    _mem: Option<Reservation>,
}

/// Scheduler + active-job table behind one lock (they must mutate
/// together: every queued entry has an `ActiveJob` and vice versa).
struct Core {
    sched: Scheduler,
    active: HashMap<u64, ActiveJob>,
    running: usize,
}

struct Shared {
    cfg: ServeConfig,
    state: StateDir,
    recorder: Recorder,
    runner: Arc<dyn JobRunner>,
    core: Mutex<Core>,
    work_cv: Condvar,
    mode: AtomicU8,
    /// Workers still running; the HTTP threads keep serving status and
    /// typed `closed` rejections until the last worker exits, so clients
    /// can watch a drain finish.
    workers_left: AtomicUsize,
    next_id: AtomicU64,
    tenant_names: TenantNames,
    job_threads: usize,
    /// Admission-side memory ledger (unlimited when no budget is set).
    mem: MemoryBudget,
}

fn lock_core(shared: &Shared) -> std::sync::MutexGuard<'_, Core> {
    shared.core.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running `focus serve` instance. Dropping it performs a fast shutdown;
/// call [`Serve::shutdown`] + [`Serve::join`] for a graceful drain.
pub struct Serve {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
}

impl Serve {
    /// Binds, recovers pending jobs from `state_dir`, and spawns the
    /// acceptor and worker threads.
    pub fn start(
        cfg: ServeConfig,
        state_dir: impl Into<PathBuf>,
        runner: Arc<dyn JobRunner>,
    ) -> Result<Serve, ServeError> {
        let cfg = cfg.validated()?;
        let state = StateDir::open(state_dir)?;
        let recorder = Recorder::new(ObsOptions::wall_clock());
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::io(format!("bind {}", cfg.addr), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::io("local_addr", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::io("set_nonblocking", e))?;

        let job_threads = resolve_job_threads(&cfg, &recorder);
        let mem = match cfg.memory_budget {
            0 => MemoryBudget::unlimited(),
            limit => MemoryBudget::with_limit(limit),
        };
        let scan = state.scan()?;
        recorder.add(metrics::STATE_TORN, scan.torn as u64);
        let mut core = Core {
            sched: Scheduler::new(cfg.sched),
            active: HashMap::new(),
            running: 0,
        };
        let tenant_names = TenantNames::new(cfg.sched.max_tenants);
        let next_id = AtomicU64::new(scan.max_id + 1);
        // Re-admit every in-flight job in id order so the recovered queue
        // is deterministic. A job the (possibly shrunk) bounds no longer
        // accept fails with a typed reason rather than vanishing.
        for record in scan.pending {
            // The recovered job re-occupies its slice of the memory
            // budget; a shrunk budget that no longer fits it fails the
            // job with a typed reason, like shrunk queue bounds below.
            let mem_res = match mem.try_reserve(JOB_MEM_LABEL, job_mem_estimate(record.input_len))
            {
                Ok(r) => r,
                Err(_) => {
                    state.write_status(
                        record.id,
                        &TerminalStatus::plain(
                            TerminalState::Failed,
                            "not re-admitted after restart: memory_pressure".to_string(),
                        ),
                    )?;
                    recorder.add(metrics::JOBS_FAILED, 1);
                    continue;
                }
            };
            match core.sched.admit(&record.tenant, record.id, record.priority) {
                AdmitOutcome::Queued { shed } => {
                    // Pending jobs can exceed total_capacity (queued +
                    // formerly-running jobs all come back, and bounds may
                    // have shrunk), so a high-priority record can displace
                    // a lower one here too. Finalize the victim exactly
                    // like a live-admission shed would.
                    if let Some(victim) = shed {
                        core.active.remove(&victim.id.0);
                        recorder.add(metrics::JOBS_SHED, 1);
                        state.write_status(
                            victim.id,
                            &TerminalStatus::plain(
                                TerminalState::Shed,
                                format!(
                                    "shed during recovery: displaced by higher-priority job {}",
                                    record.id.dir_name()
                                ),
                            ),
                        )?;
                    }
                    recorder.add(metrics::JOBS_RESUMED, 1);
                    core.active.insert(
                        record.id.0,
                        ActiveJob {
                            record,
                            admitted_at: Instant::now(),
                            cancel: Arc::new(AtomicBool::new(false)),
                            running: false,
                            _mem: Some(mem_res),
                        },
                    );
                }
                AdmitOutcome::Rejected(r) => {
                    state.write_status(
                        record.id,
                        &TerminalStatus::plain(
                            TerminalState::Failed,
                            format!("not re-admitted after restart: {}", r.kind()),
                        ),
                    )?;
                    recorder.add(metrics::JOBS_FAILED, 1);
                }
            }
        }

        let shared = Arc::new(Shared {
            job_threads,
            cfg,
            state,
            recorder,
            runner,
            core: Mutex::new(core),
            work_cv: Condvar::new(),
            mode: AtomicU8::new(MODE_RUNNING),
            workers_left: AtomicUsize::new(0),
            next_id,
            tenant_names,
            mem,
        });

        let mut threads = Vec::new();
        for i in 0..shared.cfg.http_threads {
            let shared = Arc::clone(&shared);
            let listener = listener
                .try_clone()
                .map_err(|e| ServeError::io("clone listener", e))?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-http-{i}"))
                    .spawn(move || accept_loop(&shared, &listener))
                    .map_err(|e| ServeError::io("spawn http thread", e))?,
            );
        }
        for i in 0..shared.cfg.workers {
            let shared = Arc::clone(&shared);
            shared.workers_left.fetch_add(1, Ordering::SeqCst);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&shared);
                        shared.workers_left.fetch_sub(1, Ordering::SeqCst);
                    })
                    .map_err(|e| ServeError::io("spawn worker thread", e))?,
            );
        }

        Ok(Serve {
            shared,
            addr,
            threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's wall-clock recorder (the one `/metrics` serves).
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Closes admissions and begins shutdown. `drain = true` finishes
    /// every queued job first; `false` finishes only running jobs and
    /// leaves queued jobs durable for the next start.
    pub fn shutdown(&self, drain: bool) {
        begin_shutdown(&self.shared, drain);
    }

    /// Waits for every thread to exit (call [`Serve::shutdown`] first).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            begin_shutdown(&self.shared, false);
            for t in self.threads.drain(..) {
                let _ = t.join();
            }
        }
    }
}

fn begin_shutdown(shared: &Shared, drain: bool) {
    let mode = if drain { MODE_DRAIN } else { MODE_FAST };
    shared.mode.store(mode, Ordering::SeqCst);
    lock_core(shared).sched.close();
    shared.work_cv.notify_all();
}

fn resolve_job_threads(cfg: &ServeConfig, recorder: &Recorder) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cfg.job_threads == 0 {
        // Auto: divide the machine between concurrent workers.
        (cores / cfg.workers.max(1)).max(1)
    } else if cfg.job_threads > cores {
        // Oversubscription makes assembly *slower* (BENCH_parallel.json);
        // clamp and record instead of silently thrashing.
        recorder.add(metrics::THREADS_CLAMPED, 1);
        recorder.instant(
            "serve",
            "job_threads_clamped",
            &[
                ("requested", cfg.job_threads as i64),
                ("available", cores as i64),
            ],
        );
        cores
    } else {
        cfg.job_threads
    }
}

// ---------------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        if shared.mode.load(Ordering::SeqCst) != MODE_RUNNING
            && shared.workers_left.load(Ordering::SeqCst) == 0
        {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => handle_connection(shared, stream),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
    shared.recorder.add(metrics::HTTP_REQUESTS, 1);
    // The reader installs its own per-read socket timeouts, bounded by
    // both io_timeout and the remaining request budget.
    let mut reader =
        http::DeadlineReader::new(&stream, shared.cfg.io_timeout, shared.cfg.request_budget);
    let response = match http::read_request(&mut reader, shared.cfg.max_body_bytes) {
        Ok(req) => route(shared, &req),
        Err(e) => {
            shared.recorder.add(metrics::HTTP_ERRORS, 1);
            match e.status() {
                Some(status) => Response::error(status, "bad_request", &e.reason()),
                None => return, // dead socket; nothing to answer
            }
        }
    };
    let _ = http::write_response(&mut stream, &response);
}

fn route(shared: &Shared, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => serve_metrics(shared, req),
        ("POST", ["jobs"]) => submit_job(shared, req),
        ("GET", ["jobs", id]) => with_job(id, |id| job_status(shared, id)),
        ("GET", ["jobs", id, "contigs"]) => with_job(id, |id| job_artifact(shared, id, "contigs")),
        ("GET", ["jobs", id, "metrics"]) => with_job(id, |id| job_artifact(shared, id, "metrics")),
        ("GET", ["jobs", id, "trace"]) => with_job(id, |id| job_artifact(shared, id, "trace")),
        ("DELETE", ["jobs", id]) => with_job(id, |id| cancel_job(shared, id)),
        ("POST", ["admin", "shutdown"]) => admin_shutdown(shared, req),
        (_, ["healthz" | "metrics" | "jobs", ..]) | (_, ["admin", "shutdown"]) => {
            Response::error(405, "method_not_allowed", "unsupported method for path")
        }
        _ => Response::error(404, "not_found", "unknown path"),
    }
}

fn with_job(raw: &str, f: impl FnOnce(JobId) -> Response) -> Response {
    match JobId::parse(raw) {
        Some(id) => f(id),
        None => Response::error(400, "bad_request", "malformed job id"),
    }
}

fn serve_metrics(shared: &Shared, req: &Request) -> Response {
    {
        let core = lock_core(shared);
        let rec = &shared.recorder;
        rec.gauge(metrics::QUEUE_DEPTH, core.sched.total_depth() as i64);
        rec.gauge(metrics::RUNNING, core.running as i64);
        rec.gauge(
            metrics::MEM_RESERVED,
            shared.mem.used().min(i64::MAX as u64) as i64,
        );
        rec.gauge(
            metrics::MEM_LIMIT,
            shared.mem.limit().unwrap_or(0).min(i64::MAX as u64) as i64,
        );
        for (tenant, depth) in core.sched.tenant_depths() {
            if let Some(name) = shared.tenant_names.depth_gauge(tenant) {
                rec.gauge(name, depth as i64);
            }
        }
    }
    // `?format=text` renders the human exposition, which derives
    // p50/p90/p99 for every histogram (job latency, queue wait). The JSON
    // default stays the raw snapshot so automated byte-diffs keep working.
    if req.query_param("format") == Some("text") {
        return Response::text(200, fc_obs::human_report(&shared.recorder.snapshot()));
    }
    Response::json(200, shared.recorder.snapshot_json())
}

fn submit_job(shared: &Shared, req: &Request) -> Response {
    let tenant = req.query_param("tenant").unwrap_or("default");
    if !valid_tenant_name(tenant) {
        return Response::error(400, "bad_request", "tenant must match [A-Za-z0-9_-]{1,64}");
    }
    let priority = match req.query_param("priority") {
        None => Priority::Normal,
        Some(raw) => match Priority::parse(raw) {
            Some(p) => p,
            None => return Response::error(400, "bad_request", "priority must be low|normal|high"),
        },
    };
    let deadline_ms = match req.query_param("deadline_ms") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(0) => None,
            Ok(ms) => Some(ms),
            Err(_) => return Response::error(400, "bad_request", "deadline_ms must be a number"),
        },
    };
    if req.body.is_empty() {
        return Response::error(400, "bad_request", "empty body: POST raw FASTQ bytes");
    }

    // Cheap pre-check: refuse without touching disk when the scheduler
    // could not possibly admit right now. The post-persist admit below is
    // authoritative; this only keeps saturation from causing disk churn.
    // Bound as a statement so the core guard drops before `reject` touches
    // the recorder's locks (an if-let scrutinee temporary would outlive the
    // whole branch).
    let precheck = lock_core(shared).sched.would_reject(tenant, priority);
    if let Some(r) = precheck {
        return reject(shared, r);
    }
    let estimate = job_mem_estimate(req.body.len() as u64);
    if !shared.mem.would_fit(estimate) {
        return reject(
            shared,
            Rejection::MemoryPressure {
                requested: estimate,
                available: shared.mem.remaining(),
            },
        );
    }

    let id = JobId(shared.next_id.fetch_add(1, Ordering::SeqCst));
    let record = JobRecord {
        id,
        tenant: tenant.to_string(),
        priority,
        deadline_ms,
        input_len: req.body.len() as u64,
        input_fnv: input_fnv(&req.body),
    };
    if let Err(e) = shared.state.persist_job(&record, &req.body) {
        return Response::error(500, "state_error", &format!("{e}"));
    }

    let shed = {
        let mut core = lock_core(shared);
        // The precheck above was advisory; this reserve is authoritative
        // and races with releases, so it can still fail here.
        let mem_res = match shared.mem.try_reserve(JOB_MEM_LABEL, estimate) {
            Ok(r) => r,
            Err(e) => {
                drop(core);
                let _ = std::fs::remove_dir_all(shared.state.job_dir(id));
                return reject(
                    shared,
                    Rejection::MemoryPressure {
                        requested: e.requested,
                        available: shared.mem.remaining(),
                    },
                );
            }
        };
        match core.sched.admit(tenant, id, priority) {
            AdmitOutcome::Rejected(r) => {
                drop(core);
                // Roll the unacknowledged persist back; the client never
                // learned this id. `mem_res` dropped with this frame.
                let _ = std::fs::remove_dir_all(shared.state.job_dir(id));
                return reject(shared, r);
            }
            AdmitOutcome::Queued { shed } => {
                if let Some(victim) = &shed {
                    core.active.remove(&victim.id.0);
                }
                core.active.insert(
                    id.0,
                    ActiveJob {
                        record,
                        admitted_at: Instant::now(),
                        cancel: Arc::new(AtomicBool::new(false)),
                        running: false,
                        _mem: Some(mem_res),
                    },
                );
                shed
            }
        }
    };
    shared.recorder.add(metrics::JOBS_ADMITTED, 1);
    if let Some(victim) = &shed {
        finalize_shed(shared, victim);
    }
    shared.work_cv.notify_one();

    let shed_field = match &shed {
        Some(v) => format!(",\"shed\":{}", json_str(&v.id.dir_name())),
        None => String::new(),
    };
    Response::json(
        202,
        format!(
            "{{\"id\":{},\"state\":\"queued\",\"tenant\":{},\"priority\":{}{}}}",
            json_str(&id.dir_name()),
            json_str(tenant),
            json_str(priority.as_str()),
            shed_field
        ),
    )
}

/// Reservation label for admitted jobs in the server memory ledger.
const JOB_MEM_LABEL: &str = "serve-job";

/// Coarse resident-set estimate for one job: the raw FASTQ body, its
/// parsed reads, and the RC-paired read store are each about input-sized,
/// plus one input of slack for alignment artifacts. Deliberately simple —
/// admission control needs a monotone, explainable bound, not a profile.
fn job_mem_estimate(input_len: u64) -> u64 {
    input_len.saturating_mul(4)
}

fn reject(shared: &Shared, r: Rejection) -> Response {
    shared.recorder.add(metrics::rejection_counter(r.kind()), 1);
    Response::error(r.http_status(), r.kind(), &format!("{r:?}"))
}

fn finalize_shed(shared: &Shared, victim: &ShedJob) {
    shared.recorder.add(metrics::JOBS_SHED, 1);
    let status = TerminalStatus::plain(
        TerminalState::Shed,
        format!(
            "shed: displaced by a higher-priority arrival while {} was saturated",
            victim.tenant
        ),
    );
    let _ = shared.state.write_status(victim.id, &status);
}

fn job_status(shared: &Shared, id: JobId) -> Response {
    // Disk first: a terminal status is authoritative and immutable.
    match shared.state.read_status(id) {
        Ok(Some(s)) => {
            return Response::json(
                200,
                format!(
                    "{{\"id\":{},\"state\":{},\"message\":{},\"num_contigs\":{},\"n50\":{},\"total_bases\":{}}}",
                    json_str(&id.dir_name()),
                    json_str(s.state.as_str()),
                    json_str(&s.message),
                    s.num_contigs,
                    s.n50,
                    s.total_bases
                ),
            );
        }
        Ok(None) => {}
        Err(e) => return Response::error(500, "state_error", &format!("{e}")),
    }
    let core = lock_core(shared);
    if let Some(job) = core.active.get(&id.0) {
        let state = if job.running { "running" } else { "queued" };
        return Response::json(
            200,
            format!(
                "{{\"id\":{},\"state\":{},\"tenant\":{},\"priority\":{}}}",
                json_str(&id.dir_name()),
                json_str(state),
                json_str(&job.record.tenant),
                json_str(job.record.priority.as_str())
            ),
        );
    }
    drop(core);
    match shared.state.read_meta(id) {
        // Meta exists but the job is neither active nor terminal: we are
        // mid-transition (or it awaits re-admission); report it as queued.
        Ok(Some(_)) => Response::json(
            200,
            format!(
                "{{\"id\":{},\"state\":\"queued\"}}",
                json_str(&id.dir_name())
            ),
        ),
        Ok(None) => Response::error(404, "not_found", "unknown job"),
        Err(e) => Response::error(500, "state_error", &format!("{e}")),
    }
}

fn job_artifact(shared: &Shared, id: JobId, what: &str) -> Response {
    let (path, content_type) = match what {
        "contigs" => (shared.state.contigs_path(id), "text/plain; charset=utf-8"),
        "trace" => (shared.state.trace_path(id), "application/json"),
        _ => (shared.state.metrics_path(id), "application/json"),
    };
    match std::fs::read(&path) {
        Ok(body) => Response {
            status: 200,
            content_type,
            body,
        },
        Err(e) if e.kind() == ErrorKind::NotFound => match shared.state.read_status(id) {
            Ok(Some(s)) => Response::error(
                409,
                "no_artifact",
                &format!("job is {}, artifact unavailable", s.state.as_str()),
            ),
            Ok(None) => Response::error(409, "not_ready", "job has not completed yet"),
            Err(err) => Response::error(500, "state_error", &format!("{err}")),
        },
        Err(e) => Response::error(500, "state_error", &format!("read artifact: {e}")),
    }
}

fn cancel_job(shared: &Shared, id: JobId) -> Response {
    let mut core = lock_core(shared);
    if core.sched.cancel(id).is_some() {
        core.active.remove(&id.0);
        drop(core);
        shared.recorder.add(metrics::JOBS_CANCELED, 1);
        let status = TerminalStatus::plain(TerminalState::Canceled, "canceled while queued");
        if let Err(e) = shared.state.write_status(id, &status) {
            return Response::error(500, "state_error", &format!("{e}"));
        }
        return Response::json(
            200,
            format!(
                "{{\"id\":{},\"state\":\"canceled\"}}",
                json_str(&id.dir_name())
            ),
        );
    }
    if let Some(job) = core.active.get(&id.0) {
        // Running: cooperative — observed between retry attempts and at
        // runner-defined poll points.
        job.cancel.store(true, Ordering::Relaxed);
        return Response::json(
            202,
            format!(
                "{{\"id\":{},\"state\":\"cancel_requested\"}}",
                json_str(&id.dir_name())
            ),
        );
    }
    drop(core);
    match shared.state.read_status(id) {
        Ok(Some(s)) => Response::error(
            409,
            "already_terminal",
            &format!("job already {}", s.state.as_str()),
        ),
        Ok(None) => Response::error(404, "not_found", "unknown job"),
        Err(e) => Response::error(500, "state_error", &format!("{e}")),
    }
}

fn admin_shutdown(shared: &Shared, req: &Request) -> Response {
    let drain = match req.query_param("mode").unwrap_or("drain") {
        "drain" => true,
        "fast" => false,
        _ => return Response::error(400, "bad_request", "mode must be drain|fast"),
    };
    begin_shutdown(shared, drain);
    Response::json(
        200,
        format!(
            "{{\"state\":\"shutting_down\",\"mode\":{}}}",
            json_str(if drain { "drain" } else { "fast" })
        ),
    )
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let Some((id, record, cancel, queued_ms)) = next_job(shared) else {
            return;
        };
        // Deadline: best-effort, checked at the dispatch boundary.
        if let Some(deadline) = record.deadline_ms {
            if queued_ms > deadline {
                shared.recorder.add(metrics::JOBS_DEADLINE, 1);
                finish(
                    shared,
                    id,
                    queued_ms,
                    TerminalStatus::plain(
                        TerminalState::Failed,
                        format!("deadline of {deadline} ms exceeded while queued ({queued_ms} ms)"),
                    ),
                    metrics::JOBS_FAILED,
                );
                continue;
            }
        }
        let ctx = JobContext {
            id,
            tenant: record.tenant.clone(),
            input_path: shared.state.input_path(id),
            ckpt_dir: shared.state.ckpt_dir(id),
            threads: shared.job_threads,
            cancel,
        };
        shared
            .recorder
            .observe_with(metrics::JOB_QUEUE_MS, queued_ms, metrics::LATENCY_BOUNDS_MS);
        let started = Instant::now();
        let result = run_with_retry(
            shared.runner.as_ref(),
            &ctx,
            &shared.cfg.retry,
            shared.cfg.backoff_unit,
            &shared.recorder,
        );
        let total_ms = queued_ms + started.elapsed().as_millis() as u64;
        match result {
            RunResult::Completed(out) => {
                if let Err(e) = shared.state.write_outputs(
                    id,
                    &out.contigs_fasta,
                    &out.metrics_json,
                    &out.trace_json,
                ) {
                    finish(
                        shared,
                        id,
                        total_ms,
                        TerminalStatus::plain(
                            TerminalState::Failed,
                            format!("persisting outputs failed: {e}"),
                        ),
                        metrics::JOBS_FAILED,
                    );
                    continue;
                }
                finish(
                    shared,
                    id,
                    total_ms,
                    TerminalStatus {
                        state: TerminalState::Done,
                        message: "ok".to_string(),
                        num_contigs: out.num_contigs,
                        n50: out.n50,
                        total_bases: out.total_bases,
                    },
                    metrics::JOBS_COMPLETED,
                );
            }
            RunResult::Canceled => finish(
                shared,
                id,
                total_ms,
                TerminalStatus::plain(TerminalState::Canceled, "canceled while running"),
                metrics::JOBS_CANCELED,
            ),
            RunResult::Failed { attempts, message } => finish(
                shared,
                id,
                total_ms,
                TerminalStatus::plain(
                    TerminalState::Failed,
                    format!("failed after {attempts} attempt(s): {message}"),
                ),
                metrics::JOBS_FAILED,
            ),
        }
    }
}

/// Blocks until a job is available or shutdown says to exit. Returns the
/// job plus its queue delay in milliseconds.
fn next_job(shared: &Shared) -> Option<(JobId, JobRecord, Arc<AtomicBool>, u64)> {
    let mut core = lock_core(shared);
    loop {
        let mode = shared.mode.load(Ordering::SeqCst);
        if mode == MODE_FAST {
            return None;
        }
        if let Some(id) = core.sched.next() {
            let Some(job) = core.active.get_mut(&id.0) else {
                continue; // cancel raced the dispatch; take the next job
            };
            job.running = true;
            let queued_ms = job.admitted_at.elapsed().as_millis() as u64;
            let out = (id, job.record.clone(), Arc::clone(&job.cancel), queued_ms);
            core.running += 1;
            return Some(out);
        }
        if mode == MODE_DRAIN {
            return None; // queue is empty and we are draining
        }
        let (guard, _) = shared
            .work_cv
            .wait_timeout(core, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
        core = guard;
    }
}

/// Commits a terminal status, updates counters/histograms, and releases
/// the in-memory slot.
fn finish(
    shared: &Shared,
    id: JobId,
    total_ms: u64,
    status: TerminalStatus,
    counter: &'static str,
) {
    let _ = shared.state.write_status(id, &status);
    shared.recorder.add(counter, 1);
    shared.recorder.observe_with(
        metrics::JOB_LATENCY_MS,
        total_ms,
        metrics::LATENCY_BOUNDS_MS,
    );
    let mut core = lock_core(shared);
    if core.active.remove(&id.0).is_some() && core.running > 0 {
        core.running -= 1;
    }
}
