//! Metric names and the bounded per-tenant gauge-name interner.
//!
//! fc-obs metric names are `&'static str` (so the hot path never hashes
//! owned strings). Per-tenant gauge names are therefore interned once via
//! `Box::leak` — a deliberate, *bounded* leak: the interner refuses names
//! beyond its capacity, which the server sets to the scheduler's
//! `max_tenants`, so a hostile client cannot grow process memory by
//! inventing tenant names.

use std::sync::{Mutex, PoisonError};

/// Counter: jobs admitted (queued).
pub const JOBS_ADMITTED: &str = "serve.jobs.admitted";
/// Counter: jobs completed successfully.
pub const JOBS_COMPLETED: &str = "serve.jobs.completed";
/// Counter: jobs that failed permanently.
pub const JOBS_FAILED: &str = "serve.jobs.failed";
/// Counter: jobs shed under saturation.
pub const JOBS_SHED: &str = "serve.jobs.shed";
/// Counter: jobs canceled by clients or shutdown.
pub const JOBS_CANCELED: &str = "serve.jobs.canceled";
/// Counter: retry attempts across all jobs.
pub const JOBS_RETRIED: &str = "serve.jobs.retried";
/// Counter: in-flight jobs re-admitted after a restart.
pub const JOBS_RESUMED: &str = "serve.jobs.resumed";
/// Counter: jobs that missed their deadline before dispatch/completion.
pub const JOBS_DEADLINE: &str = "serve.jobs.deadline_exceeded";
/// Counter: torn (unacknowledged) job dirs removed at startup.
pub const STATE_TORN: &str = "serve.state.torn_removed";
/// Counter: HTTP requests handled.
pub const HTTP_REQUESTS: &str = "serve.http.requests";
/// Counter: HTTP protocol errors answered with 4xx.
pub const HTTP_ERRORS: &str = "serve.http.errors";
/// Counter: job thread requests clamped to available parallelism.
pub const THREADS_CLAMPED: &str = "serve.threads.clamped";
/// Gauge: total queued jobs.
pub const QUEUE_DEPTH: &str = "serve.queue.depth";
/// Gauge: jobs currently executing.
pub const RUNNING: &str = "serve.jobs.running";
/// Gauge: bytes reserved for admitted jobs under the memory budget.
pub const MEM_RESERVED: &str = "serve.mem.reserved";
/// Gauge: the configured memory budget, bytes (0 when unlimited).
pub const MEM_LIMIT: &str = "serve.mem.limit";
/// Histogram: admission → terminal-status latency, milliseconds.
pub const JOB_LATENCY_MS: &str = "serve.job.latency_ms";
/// Histogram: admission → dispatch queue delay, milliseconds.
pub const JOB_QUEUE_MS: &str = "serve.job.queue_ms";

/// Millisecond-scale histogram bounds for job latency/queue delay.
pub const LATENCY_BOUNDS_MS: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 60_000,
];

/// Counter name for a rejection kind (see `Rejection::kind`).
pub fn rejection_counter(kind: &str) -> &'static str {
    match kind {
        "tenant_queue_full" => "serve.jobs.rejected.tenant_queue_full",
        "saturated" => "serve.jobs.rejected.saturated",
        "too_many_tenants" => "serve.jobs.rejected.too_many_tenants",
        "memory_pressure" => "serve.jobs.rejected.memory_pressure",
        "closed" => "serve.jobs.rejected.closed",
        _ => "serve.jobs.rejected.other",
    }
}

/// Interns `serve.queue.depth.<tenant>` gauge names, at most `capacity`
/// of them for the process lifetime (the bound that makes the `Box::leak`
/// safe against adversarial tenant names).
#[derive(Debug)]
pub struct TenantNames {
    capacity: usize,
    /// Interned `(tenant, leaked_name)` pairs; bounded by `capacity`.
    names: Mutex<Vec<(String, &'static str)>>,
}

impl TenantNames {
    /// An interner that will hold at most `capacity` tenant names.
    pub fn new(capacity: usize) -> TenantNames {
        TenantNames {
            capacity,
            names: Mutex::new(Vec::new()),
        }
    }

    /// The gauge name for a tenant's queue depth, interning it on first
    /// use. Returns `None` once the interner is full (callers then skip
    /// the per-tenant gauge; counters and the global gauge still work).
    pub fn depth_gauge(&self, tenant: &str) -> Option<&'static str> {
        let mut names = self.names.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, name)) = names.iter().find(|(t, _)| t == tenant) {
            return Some(name);
        }
        if names.len() >= self.capacity {
            return None;
        }
        let leaked: &'static str =
            Box::leak(format!("serve.queue.depth.{tenant}").into_boxed_str());
        names.push((tenant.to_string(), leaked));
        Some(leaked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_reuses_and_bounds_names() {
        let names = TenantNames::new(2);
        let a1 = names.depth_gauge("alice").expect("first");
        let a2 = names.depth_gauge("alice").expect("again");
        assert!(std::ptr::eq(a1.as_ptr(), a2.as_ptr()), "same interned str");
        assert_eq!(a1, "serve.queue.depth.alice");
        assert!(names.depth_gauge("bob").is_some());
        assert_eq!(names.depth_gauge("carol"), None, "capacity reached");
        assert!(names.depth_gauge("alice").is_some(), "existing still ok");
    }

    #[test]
    fn rejection_counters_are_stable() {
        assert_eq!(
            rejection_counter("saturated"),
            "serve.jobs.rejected.saturated"
        );
        assert_eq!(rejection_counter("??"), "serve.jobs.rejected.other");
    }
}
