//! Crash-safe on-disk job state.
//!
//! Layout under the server's state directory:
//!
//! ```text
//! state/
//! └── jobs/
//!     └── job-000001/
//!         ├── input.fastq    # raw submitted bytes, written first
//!         ├── job.meta       # admission record, written atomically LAST
//!         ├── ckpt/          # fc-ckpt phase checkpoints for the run
//!         ├── contigs.fasta  # output (atomic, present when done)
//!         ├── metrics.json   # logical-clock metrics snapshot (atomic)
//!         └── status.txt     # terminal state, written once at the end
//! ```
//!
//! The write protocol makes every crash window recoverable:
//!
//! 1. `input.fastq` is written and fsync'd, then `job.meta` is written
//!    atomically. A directory *without* `job.meta` is a torn admission —
//!    the client never got an acknowledgement — and is deleted at startup.
//! 2. A directory with `job.meta` but no `status.txt` is an in-flight job;
//!    startup re-admits it (jobs are therefore at-least-once: a crash
//!    between persist and acknowledgement runs an unacked job).
//! 3. `status.txt` is written once, after outputs, and is immutable; its
//!    presence makes the job terminal and frees all in-memory state.
//!
//! All multi-step writes go through [`StateDir::write_atomic`]-style
//! unique-temp-then-rename, so concurrent writers and `kill -9` can never
//! leave a half-written artifact under a final name.

use crate::error::ServeError;
use crate::job::{JobId, Priority};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Header line of `job.meta`.
const META_HEADER: &str = "# focus serve job v1";
/// Header line of `status.txt`.
const STATUS_HEADER: &str = "# focus serve status v1";

/// FNV-1a over the raw input bytes; identifies a submission independently
/// of the server-assigned [`JobId`], so chaos tests can match jobs between
/// a reference run and a crash-looped run.
pub fn input_fnv(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Tenant names are path- and metric-safe: `[A-Za-z0-9_-]{1,64}`.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// The durable admission record for one job (`job.meta`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Server-assigned identifier.
    pub id: JobId,
    /// Owning tenant.
    pub tenant: String,
    /// Scheduling priority.
    pub priority: Priority,
    /// Wall-clock deadline in milliseconds from admission; `None` = no
    /// deadline. Best-effort: the budget restarts after a crash.
    pub deadline_ms: Option<u64>,
    /// Length of `input.fastq` in bytes.
    pub input_len: u64,
    /// [`input_fnv`] of the input bytes.
    pub input_fnv: u64,
}

/// Terminal disposition of a job (`status.txt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TerminalState {
    /// Assembly completed; `contigs.fasta` and `metrics.json` are present.
    Done,
    /// Assembly failed permanently (or exhausted retries / deadline).
    Failed,
    /// Displaced by a higher-priority arrival under saturation.
    Shed,
    /// Cancelled by the client before completion.
    Canceled,
}

impl TerminalState {
    /// Stable disk/wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TerminalState::Done => "done",
            TerminalState::Failed => "failed",
            TerminalState::Shed => "shed",
            TerminalState::Canceled => "canceled",
        }
    }

    /// Parses a disk/wire name.
    pub fn parse(s: &str) -> Option<TerminalState> {
        match s {
            "done" => Some(TerminalState::Done),
            "failed" => Some(TerminalState::Failed),
            "shed" => Some(TerminalState::Shed),
            "canceled" => Some(TerminalState::Canceled),
            _ => None,
        }
    }
}

/// Terminal status plus a result summary (zeroes unless `Done`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminalStatus {
    /// Final state.
    pub state: TerminalState,
    /// Human-readable disposition (shed reason, failure message, ...).
    pub message: String,
    /// Contig count for completed jobs.
    pub num_contigs: u64,
    /// N50 for completed jobs.
    pub n50: u64,
    /// Total assembled bases for completed jobs.
    pub total_bases: u64,
}

impl TerminalStatus {
    /// A non-`Done` status with a reason and a zeroed summary.
    pub fn plain(state: TerminalState, message: impl Into<String>) -> Self {
        TerminalStatus {
            state,
            message: message.into(),
            num_contigs: 0,
            n50: 0,
            total_bases: 0,
        }
    }
}

/// Result of scanning a state directory at startup.
#[derive(Debug, Default)]
pub struct Scan {
    /// Jobs with `job.meta` but no `status.txt`, sorted by id: these are
    /// re-admitted for (resumed) execution.
    pub pending: Vec<JobRecord>,
    /// Torn directories (no `job.meta`) that were removed.
    pub torn: usize,
    /// Highest job id seen anywhere, so new ids continue the sequence.
    pub max_id: u64,
}

/// Handle to a server state directory. Cheap to clone; all methods are
/// safe to call from multiple threads (atomicity comes from unique temp
/// names + `rename`, not locking).
#[derive(Debug, Clone)]
pub struct StateDir {
    root: PathBuf,
}

/// Process-wide counter for unique temp-file names.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl StateDir {
    /// Opens (creating if needed) a state directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<StateDir, ServeError> {
        let root = root.into();
        let jobs = root.join("jobs");
        fs::create_dir_all(&jobs)
            .map_err(|e| ServeError::io(format!("create {}", jobs.display()), e))?;
        Ok(StateDir { root })
    }

    /// The state directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding one job's artifacts.
    pub fn job_dir(&self, id: JobId) -> PathBuf {
        self.root.join("jobs").join(id.dir_name())
    }

    /// Path of the submitted input bytes.
    pub fn input_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("input.fastq")
    }

    /// Per-job fc-ckpt checkpoint directory.
    pub fn ckpt_dir(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("ckpt")
    }

    /// Path of the assembled contigs.
    pub fn contigs_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("contigs.fasta")
    }

    /// Path of the job's metrics snapshot.
    pub fn metrics_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("metrics.json")
    }

    /// Path of the job's causal Chrome trace.
    pub fn trace_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("trace.json")
    }

    /// Path of the terminal status file.
    pub fn status_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("status.txt")
    }

    /// Writes `bytes` to `path` via a unique temp file in the same
    /// directory, fsync, rename, directory fsync.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
        let dir = path
            .parent()
            .ok_or_else(|| ServeError::corrupt(path.display().to_string(), "no parent dir"))?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| ServeError::corrupt(path.display().to_string(), "no file name"))?;
        let tmp = dir.join(format!(
            ".{name}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let ctx = |what: &str| format!("{what} {}", tmp.display());
        let mut f = File::create(&tmp).map_err(|e| ServeError::io(ctx("create"), e))?;
        f.write_all(bytes)
            .map_err(|e| ServeError::io(ctx("write"), e))?;
        f.sync_all().map_err(|e| ServeError::io(ctx("sync"), e))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            ServeError::io(format!("rename {} -> {}", tmp.display(), path.display()), e)
        })?;
        // Make the rename itself durable.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Persists a freshly admitted job: directory, input bytes, then the
    /// metadata record last (commit point).
    pub fn persist_job(&self, record: &JobRecord, input: &[u8]) -> Result<(), ServeError> {
        let dir = self.job_dir(record.id);
        fs::create_dir_all(&dir)
            .map_err(|e| ServeError::io(format!("create {}", dir.display()), e))?;
        self.write_atomic(&self.input_path(record.id), input)?;
        self.write_atomic(&dir.join("job.meta"), render_meta(record).as_bytes())
    }

    /// Writes the assembly outputs (atomic, before the status commit).
    /// The trace is optional: runners that record no trace pass an empty
    /// string and no `trace.json` is written, so the artifact route can
    /// distinguish "never traced" from "not finished".
    pub fn write_outputs(
        &self,
        id: JobId,
        contigs_fasta: &[u8],
        metrics_json: &str,
        trace_json: &str,
    ) -> Result<(), ServeError> {
        self.write_atomic(&self.contigs_path(id), contigs_fasta)?;
        self.write_atomic(&self.metrics_path(id), metrics_json.as_bytes())?;
        if trace_json.is_empty() {
            Ok(())
        } else {
            self.write_atomic(&self.trace_path(id), trace_json.as_bytes())
        }
    }

    /// Commits a terminal status. This is the last write a job ever sees.
    pub fn write_status(&self, id: JobId, status: &TerminalStatus) -> Result<(), ServeError> {
        self.write_atomic(&self.status_path(id), render_status(status).as_bytes())
    }

    /// Reads a job's terminal status, or `None` while it is in flight.
    pub fn read_status(&self, id: JobId) -> Result<Option<TerminalStatus>, ServeError> {
        let path = self.status_path(id);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ServeError::io(format!("read {}", path.display()), e)),
        };
        parse_status(&text)
            .map(Some)
            .map_err(|m| ServeError::corrupt(path.display().to_string(), m))
    }

    /// Reads a job's admission record, or `None` for unknown/torn jobs.
    pub fn read_meta(&self, id: JobId) -> Result<Option<JobRecord>, ServeError> {
        let path = self.job_dir(id).join("job.meta");
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ServeError::io(format!("read {}", path.display()), e)),
        };
        parse_meta(&text)
            .map(Some)
            .map_err(|m| ServeError::corrupt(path.display().to_string(), m))
    }

    /// Scans the directory at startup: collects in-flight jobs for
    /// re-admission, removes torn (meta-less) directories, and reports the
    /// highest id so the sequence can continue.
    pub fn scan(&self) -> Result<Scan, ServeError> {
        let jobs = self.root.join("jobs");
        let mut out = Scan::default();
        let entries = fs::read_dir(&jobs)
            .map_err(|e| ServeError::io(format!("read {}", jobs.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| ServeError::io("read jobs dir entry", e))?;
            let name = entry.file_name();
            let Some(id) = name.to_str().and_then(JobId::parse) else {
                continue; // foreign file; leave it alone
            };
            out.max_id = out.max_id.max(id.0);
            match self.read_meta(id)? {
                None => {
                    // Torn admission: the submitter never got an ack.
                    fs::remove_dir_all(entry.path())
                        .map_err(|e| ServeError::io(format!("remove torn {id}"), e))?;
                    out.torn += 1;
                }
                Some(record) => {
                    if self.read_status(id)?.is_none() {
                        out.pending.push(record);
                    }
                }
            }
        }
        out.pending.sort_by_key(|r| r.id);
        Ok(out)
    }
}

fn render_meta(r: &JobRecord) -> String {
    format!(
        "{META_HEADER}\nid {}\ntenant {}\npriority {}\ndeadline_ms {}\ninput_len {}\ninput_fnv {:016x}\n",
        r.id,
        r.tenant,
        r.priority,
        r.deadline_ms.unwrap_or(0),
        r.input_len,
        r.input_fnv,
    )
}

fn parse_meta(text: &str) -> Result<JobRecord, String> {
    let mut lines = text.lines();
    if lines.next() != Some(META_HEADER) {
        return Err("bad meta header".to_string());
    }
    let (mut id, mut tenant, mut priority) = (None, None, None);
    let (mut deadline_ms, mut input_len, mut input_fnv) = (None, None, None);
    for line in lines {
        let Some((key, value)) = line.split_once(' ') else {
            continue;
        };
        match key {
            "id" => id = JobId::parse(value),
            "tenant" => tenant = Some(value.to_string()),
            "priority" => priority = Priority::parse(value),
            "deadline_ms" => deadline_ms = value.parse::<u64>().ok(),
            "input_len" => input_len = value.parse::<u64>().ok(),
            "input_fnv" => input_fnv = u64::from_str_radix(value, 16).ok(),
            _ => {}
        }
    }
    Ok(JobRecord {
        id: id.ok_or("missing/bad id")?,
        tenant: tenant.ok_or("missing tenant")?,
        priority: priority.ok_or("missing/bad priority")?,
        deadline_ms: match deadline_ms.ok_or("missing/bad deadline_ms")? {
            0 => None,
            ms => Some(ms),
        },
        input_len: input_len.ok_or("missing/bad input_len")?,
        input_fnv: input_fnv.ok_or("missing/bad input_fnv")?,
    })
}

fn render_status(s: &TerminalStatus) -> String {
    // Keep the kv format line-oriented: fold any newlines in the message.
    let message = s.message.replace(['\n', '\r'], " ");
    format!(
        "{STATUS_HEADER}\nstate {}\nmessage {message}\nnum_contigs {}\nn50 {}\ntotal_bases {}\n",
        s.state.as_str(),
        s.num_contigs,
        s.n50,
        s.total_bases,
    )
}

fn parse_status(text: &str) -> Result<TerminalStatus, String> {
    let mut lines = text.lines();
    if lines.next() != Some(STATUS_HEADER) {
        return Err("bad status header".to_string());
    }
    let mut state = None;
    let mut message = String::new();
    let (mut num_contigs, mut n50, mut total_bases) = (0, 0, 0);
    for line in lines {
        let Some((key, value)) = line.split_once(' ') else {
            continue;
        };
        match key {
            "state" => state = TerminalState::parse(value),
            "message" => message = value.to_string(),
            "num_contigs" => num_contigs = value.parse().map_err(|_| "bad num_contigs")?,
            "n50" => n50 = value.parse().map_err(|_| "bad n50")?,
            "total_bases" => total_bases = value.parse().map_err(|_| "bad total_bases")?,
            _ => {}
        }
    }
    Ok(TerminalStatus {
        state: state.ok_or("missing/bad state")?,
        message,
        num_contigs,
        n50,
        total_bases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_state(tag: &str) -> StateDir {
        let root =
            std::env::temp_dir().join(format!("fc-serve-state-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        StateDir::open(root).expect("open state dir")
    }

    fn record(id: u64) -> JobRecord {
        JobRecord {
            id: JobId(id),
            tenant: "alice".to_string(),
            priority: Priority::Normal,
            deadline_ms: Some(5000),
            input_len: 4,
            input_fnv: input_fnv(b"ACGT"),
        }
    }

    #[test]
    fn meta_round_trips_through_disk() {
        let state = temp_state("meta");
        let r = record(7);
        state.persist_job(&r, b"ACGT").expect("persist");
        assert_eq!(state.read_meta(JobId(7)).expect("read"), Some(r));
        assert_eq!(state.read_meta(JobId(8)).expect("read"), None);
        assert_eq!(
            fs::read(state.input_path(JobId(7))).expect("input"),
            b"ACGT"
        );
    }

    #[test]
    fn status_round_trips_and_folds_newlines() {
        let state = temp_state("status");
        state.persist_job(&record(1), b"ACGT").expect("persist");
        assert_eq!(state.read_status(JobId(1)).expect("read"), None);
        let status = TerminalStatus {
            state: TerminalState::Failed,
            message: "line1\nline2".to_string(),
            num_contigs: 0,
            n50: 0,
            total_bases: 0,
        };
        state.write_status(JobId(1), &status).expect("write");
        let back = state.read_status(JobId(1)).expect("read").expect("some");
        assert_eq!(back.state, TerminalState::Failed);
        assert_eq!(back.message, "line1 line2");
    }

    #[test]
    fn scan_reclaims_torn_dirs_and_orders_pending() {
        let state = temp_state("scan");
        state.persist_job(&record(3), b"ACGT").expect("persist");
        state.persist_job(&record(1), b"ACGT").expect("persist");
        state.persist_job(&record(2), b"ACGT").expect("persist");
        state
            .write_status(JobId(2), &TerminalStatus::plain(TerminalState::Done, "ok"))
            .expect("status");
        // Torn admission: directory + input but no job.meta.
        let torn = state.job_dir(JobId(9));
        fs::create_dir_all(&torn).expect("mkdir");
        fs::write(torn.join("input.fastq"), b"AC").expect("write");

        let scan = state.scan().expect("scan");
        assert_eq!(scan.torn, 1);
        assert!(!torn.exists(), "torn dir removed");
        assert_eq!(scan.max_id, 9, "max id counts torn dirs too");
        let ids: Vec<u64> = scan.pending.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 3], "terminal job 2 excluded, sorted");
    }

    #[test]
    fn corrupt_status_is_a_typed_error() {
        let state = temp_state("corrupt");
        state.persist_job(&record(1), b"ACGT").expect("persist");
        fs::write(state.status_path(JobId(1)), b"garbage\n").expect("write");
        let err = state.read_status(JobId(1)).expect_err("corrupt");
        assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn tenant_name_validation() {
        assert!(valid_tenant_name("alice-01_x"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("a/b"));
        assert!(!valid_tenant_name(&"x".repeat(65)));
    }

    #[test]
    fn input_fnv_is_stable() {
        assert_eq!(input_fnv(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(input_fnv(b"ACGT"), input_fnv(b"ACGA"));
    }
}
