//! Fig. 7 — distribution of major genera across graph partitions.
//!
//! Reads are classified to genera against the reference genomes (k-mer
//! best-hit, standing in for BWA + the HMP gut database); the 16-way hybrid
//! partitioning is projected onto reads; the genus × partition fraction
//! matrix is rendered as a heat map. The paper's findings: genera
//! concentrate in few partitions (≫ 1/k), and same-phylum genera co-cluster
//! more than cross-phylum ones.

use fc_bench::bench_scale;
use fc_bench::harness::prepare_context;
use fc_classify::{GenusDistribution, KmerClassifier, PhylumCoclustering};
use fc_partition::{partition_graph_set, PartitionConfig};
use fc_seq::DnaString;

const K_PARTITIONS: usize = 16;
const K_MER: usize = 21;
const SEED: u64 = 13;

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);

    for (d, p) in ctx.datasets.iter().zip(&ctx.prepared) {
        let genomes: Vec<DnaString> = d.taxonomy.genera.iter().map(|g| g.genome.clone()).collect();
        let classifier = KmerClassifier::build(&genomes, K_MER).expect("classifier builds");
        let labels = classifier.classify_all(&d.reads);

        let partition =
            partition_graph_set(&p.hybrid.set, &PartitionConfig::new(K_PARTITIONS, SEED))
                .expect("partitioning succeeds");
        let node_parts = p.hybrid.project_partition_to_reads(partition.finest());

        let genera: Vec<String> = d.taxonomy.genera.iter().map(|g| g.name.clone()).collect();
        let dist = GenusDistribution::build(&p.store, &node_parts, &labels, &genera, K_PARTITIONS)
            .expect("distribution builds");

        println!(
            "\n=== Fig. 7 ({}): genus x partition heat map, k = {K_PARTITIONS} ===",
            d.name
        );
        print!("{}", fc_classify::render_text(&dist));

        let phylum_of: Vec<usize> = d.taxonomy.genera.iter().map(|g| g.phylum_index).collect();
        let cc = PhylumCoclustering::compute(&dist, &phylum_of);
        let mean_concentration: f64 = (0..genera.len())
            .filter(|&g| dist.genus_counts[g] > 0)
            .map(|g| dist.concentration(g))
            .sum::<f64>()
            / genera.len() as f64;
        println!(
            "mean genus concentration: {:.3} (uniform would be {:.3})",
            mean_concentration,
            1.0 / K_PARTITIONS as f64
        );
        println!(
            "phylum co-clustering: within = {:.3}, cross = {:.3}",
            cc.within_phylum, cc.cross_phylum
        );
    }
    println!("\n(paper: genera concentrate in few partitions; same-phylum genera co-cluster)");
}
