//! Table I — data-set characteristics.
//!
//! Paper: three SRA gut-microbiome runs (~5 Gbases each, 100 bp reads).
//! Here: the three simulated analogues D1–D3 (DESIGN.md §2), whose size is
//! controlled by `FOCUS_BENCH_SCALE`.

use fc_bench::{bench_scale, print_table_header};

fn main() {
    let scale = bench_scale();
    let datasets = fc_sim::paper_datasets(scale).expect("data sets generate");

    print_table_header(
        &format!("Table I: data set characteristics (scale {scale})"),
        &[
            "set", "seed", "genera", "phyla", "reads", "read_len", "Mbases",
        ],
        9,
    );
    for d in &datasets {
        println!(
            "{:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9.3}",
            d.name,
            d.seed,
            d.taxonomy.genus_count(),
            d.taxonomy.phyla.len(),
            d.reads.len(),
            d.read_len(),
            d.total_bases() as f64 / 1e6,
        );
    }
    println!(
        "\n(paper: SRR513170 5.02 Gb, SRR513441 4.93 Gb, SRR061581 4.97 Gb; all 100 bp reads)"
    );
}
