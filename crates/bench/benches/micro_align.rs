//! Criterion micro-benchmarks for the alignment substrate: suffix-array
//! construction, k-mer lookup and banded Needleman–Wunsch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fc_align::{banded_global, MinimizerIndex, NwConfig, OverlapConfig, Overlapper, SuffixArray};
use fc_seq::{DnaString, ReadId, ReadStore, TrimConfig};
use fc_sim::{GenomeConfig, ReadSimConfig};
use std::hint::black_box;

fn tiled_store(genome_len: usize, n_reads: usize) -> ReadStore {
    let genome = fc_sim::genome::random_genome(
        &GenomeConfig {
            length: genome_len,
            ..Default::default()
        },
        42,
    );
    let mut reads = Vec::new();
    let mut origins = Vec::new();
    fc_sim::reads::simulate_reads(
        &genome,
        0,
        n_reads,
        &ReadSimConfig {
            bad_tail_probability: 0.0,
            ..Default::default()
        },
        7,
        "b",
        &mut reads,
        &mut origins,
    )
    .expect("simulation succeeds");
    ReadStore::preprocess(
        &reads,
        &TrimConfig {
            min_read_len: 40,
            ..Default::default()
        },
    )
    .expect("preprocess succeeds")
}

fn bench_suffix_array(c: &mut Criterion) {
    let store = tiled_store(20_000, 1000);
    let entries: Vec<(ReadId, &DnaString)> =
        store.ids().map(|id| (id, &store.get(id).seq)).collect();
    c.bench_function("suffix_array_build_2000_reads", |b| {
        b.iter(|| SuffixArray::build(black_box(&entries)))
    });

    let sa = SuffixArray::build(&entries);
    let query = store.get(ReadId(0)).seq.clone();
    c.bench_function("suffix_array_kmer_lookup", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            let mut hits = 0usize;
            for (_, kmer) in query.kmers(15) {
                sa.find_kmer_into(black_box(kmer), 15, &mut buf);
                hits += buf.len();
            }
            hits
        })
    });
}

fn bench_banded_nw(c: &mut Criterion) {
    let genome = fc_sim::genome::random_genome(
        &GenomeConfig {
            length: 400,
            ..Default::default()
        },
        3,
    );
    let a = genome.slice(0, 200);
    let mut b2 = genome.slice(0, 200);
    for i in (0..200).step_by(37) {
        b2.set(i, b2.get(i).complement());
    }
    let config = NwConfig::default();
    c.bench_function("banded_nw_200bp", |b| {
        b.iter(|| banded_global(black_box(&a), (0, 200), black_box(&b2), (0, 200), &config))
    });
}

fn bench_overlapper(c: &mut Criterion) {
    let store = tiled_store(10_000, 400);
    c.bench_function("overlap_all_800_nodes", |b| {
        b.iter_batched(
            || store.split_subsets(2),
            |subsets| {
                let overlapper =
                    Overlapper::new(&store, OverlapConfig::default()).expect("valid config");
                overlapper.overlap_all(black_box(&subsets))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_minimizer(c: &mut Criterion) {
    let store = tiled_store(20_000, 1000);
    let entries: Vec<(ReadId, &DnaString)> =
        store.ids().map(|id| (id, &store.get(id).seq)).collect();
    c.bench_function("minimizer_index_build_2000_reads", |b| {
        b.iter(|| MinimizerIndex::build(black_box(&entries), 15, 8))
    });
    let index = MinimizerIndex::build(&entries, 15, 8);
    let query = store.get(ReadId(0)).seq.clone();
    c.bench_function("minimizer_candidates_per_read", |b| {
        b.iter(|| index.candidates(ReadId(0), black_box(&query), 2))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_suffix_array, bench_banded_nw, bench_overlapper, bench_minimizer
}
criterion_main!(benches);
