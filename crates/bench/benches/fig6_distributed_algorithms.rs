//! Fig. 6 — runtime of the distributed graph algorithms.
//!
//! The partitioned hybrid graph of each data set is trimmed (transitive
//! reduction, containment removal, dead ends, bubbles) and traversed with
//! one worker rank per partition, for k ∈ {8, 16, 32, 64}. The reported
//! times are virtual makespans. Paper shape: trimming time falls steeply
//! with more partitions; traversal time is small and flat.

use fc_bench::harness::prepare_context;
use fc_bench::{bench_scale, print_table_header};
use fc_dist::DistributedHybrid;
use fc_partition::{partition_graph_set, PartitionConfig};

const KS: [usize; 4] = [8, 16, 32, 64];
const SEED: u64 = 3;

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);

    print_table_header(
        &format!("Fig. 6: distributed trimming & traversal (virtual units, scale {scale})"),
        &["set", "k", "trim", "traverse", "paths", "messages"],
        11,
    );

    for (d, p) in ctx.datasets.iter().zip(&ctx.prepared) {
        for &k in &KS {
            let partition = partition_graph_set(&p.hybrid.set, &PartitionConfig::new(k, SEED))
                .expect("partitioning succeeds");
            let mut dh =
                DistributedHybrid::new(&p.hybrid, &p.store, partition.finest().to_vec(), k)
                    .expect("distribution set-up succeeds");
            let report = dh
                .run(&ctx.assembler.config().dist)
                .expect("distributed run succeeds");
            println!(
                "{:>11} {:>11} {:>11.0} {:>11.0} {:>11} {:>11}",
                d.name,
                k,
                report.trimming_time,
                report.traversal_time,
                report.paths.len(),
                report.messages,
            );
        }
    }
    println!("\n(paper: trimming runtime decreases steeply with k; traversal is small and flat)");
}
