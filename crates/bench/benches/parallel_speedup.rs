//! Shared-memory parallel engine speedup — wall-clock, not virtual time.
//!
//! Every other experiment replays task logs on a *simulated* cluster; this
//! one measures the real thing: the fc-exec work-stealing pool driving the
//! alignment fan-out (§II-B subset pairs) and the task-parallel recursive
//! bisection (§IV-C), swept over thread counts {1, 2, 4, 8}. For each phase
//! and thread count it verifies that the output is **byte-identical** to
//! the serial run — the engine's core guarantee — then records the best
//! wall-clock of several repetitions into `BENCH_parallel.json` at the
//! repository root.
//!
//! Speedups are bounded by the machine: on a single-core container every
//! thread count measures ~1×, which is why `available_parallelism` is part
//! of the record.

use fc_align::Pool;
use fc_bench::{bench_scale, prepare_context, standard_config};
use fc_obs::{profile_chrome_trace, write_chrome_trace, ObsOptions, Recorder, SegmentKind};
use fc_partition::{partition_graph_set, partition_graph_set_obs, PartitionConfig};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
const K: usize = 16;

struct PhaseRecord {
    name: &'static str,
    tasks: usize,
    /// Best wall-clock per swept thread count, `THREADS` order.
    wall: Vec<Duration>,
    /// fc-obs pool counters per swept thread count: `(exec.tasks,
    /// sched.exec.steals)`, taken from one instrumented (untimed) run.
    counters: Vec<(u64, u64)>,
}

impl PhaseRecord {
    fn speedup(&self, i: usize) -> f64 {
        self.wall[0].as_secs_f64() / self.wall[i].as_secs_f64().max(1e-12)
    }
}

/// Best-of-`REPS` wall clock of `run`, which must also verify its output.
fn best_of<F: FnMut()>(mut run: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed());
    }
    best
}

/// Reads the pool counters out of a recorder snapshot.
fn pool_counters(rec: &Recorder) -> (u64, u64) {
    let snapshot = rec.snapshot();
    let get = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    (get("exec.tasks"), get("sched.exec.steals"))
}

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("parallel speedup sweep: threads {THREADS:?}, {cores} cores available");

    // Use the largest prepared data set: most tasks, most signal.
    let prepared = ctx
        .prepared
        .iter()
        .max_by_key(|p| p.store.len())
        .expect("paper data sets are non-empty");
    let subsets = prepared.store.split_subsets(4);
    let overlapper = fc_align::Overlapper::new(&prepared.store, ctx.assembler.config().overlap)
        .expect("overlap config is valid");

    // --- Phase 1: alignment fan-out. ---
    let serial_overlaps = overlapper.overlap_all_with(&subsets, &Pool::serial());
    let mut align = PhaseRecord {
        name: "alignment",
        tasks: subsets.len() + subsets.len() * (subsets.len() + 1) / 2,
        wall: Vec::new(),
        counters: Vec::new(),
    };
    for &t in &THREADS {
        let pool = Pool::new(t);
        let mut out = None;
        align.wall.push(best_of(|| {
            out = Some(overlapper.overlap_all_with(&subsets, &pool));
        }));
        let got = out.expect("at least one repetition ran");
        assert_eq!(got.0, serial_overlaps.0, "overlaps diverged at {t} threads");
        assert_eq!(
            got.1, serial_overlaps.1,
            "pair stats diverged at {t} threads"
        );
        let rec = Recorder::new(ObsOptions::wall_clock());
        overlapper.overlap_all_obs(&subsets, &pool, &rec);
        align.counters.push(pool_counters(&rec));
    }

    // --- Phase 2: task-parallel recursive bisection + level-parallel k-way. ---
    let serial_partition = partition_graph_set(&prepared.hybrid.set, &PartitionConfig::new(K, 11))
        .expect("partitioning succeeds");
    let mut partition = PhaseRecord {
        name: "partition",
        tasks: serial_partition.tasks.len(),
        wall: Vec::new(),
        counters: Vec::new(),
    };
    for &t in &THREADS {
        let config = PartitionConfig::new(K, 11).with_threads(t);
        let mut out = None;
        partition.wall.push(best_of(|| {
            out = Some(
                partition_graph_set(&prepared.hybrid.set, &config).expect("partitioning succeeds"),
            );
        }));
        let got = out.expect("at least one repetition ran");
        assert_eq!(
            got.parts_per_level, serial_partition.parts_per_level,
            "partition diverged at {t} threads"
        );
        assert_eq!(
            got.tasks, serial_partition.tasks,
            "task log diverged at {t} threads"
        );
        let rec = Recorder::new(ObsOptions::wall_clock());
        partition_graph_set_obs(&prepared.hybrid.set, &config, &rec)
            .expect("partitioning succeeds");
        partition.counters.push(pool_counters(&rec));
    }

    // --- Critical-path attribution of one full instrumented run: where
    //     the wall clock actually went (compute vs wait vs retry), from
    //     the causal trace of an end-to-end assembly at 4 threads. ---
    let mut obs_config = standard_config();
    obs_config.threads = 4;
    obs_config.observability = ObsOptions::wall_clock();
    let instrumented =
        focus_core::FocusAssembler::new(obs_config).expect("standard config is valid");
    let reads = &ctx
        .datasets
        .iter()
        .max_by_key(|d| d.reads.len())
        .expect("paper data sets are non-empty")
        .reads;
    instrumented.assemble(reads).expect("assembly succeeds");
    let trace = write_chrome_trace(&instrumented.recorder().events());
    let profile = profile_chrome_trace(&trace).expect("causal trace profiles");
    println!(
        "critical path: {} of {} us (compute {} / wait {} / retry {})",
        profile.critical_path_total(),
        profile.run_wall,
        profile.attributed(SegmentKind::Compute),
        profile.attributed(SegmentKind::Wait),
        profile.attributed(SegmentKind::Retry)
    );

    // --- Report + JSON artifact. ---
    let phases = [align, partition];
    println!(
        "{:>10} {:>8} {:>12} {:>10}",
        "phase", "threads", "wall", "speedup"
    );
    for phase in &phases {
        for (i, &t) in THREADS.iter().enumerate() {
            println!(
                "{:>10} {:>8} {:>12.3?} {:>9.2}x",
                phase.name,
                t,
                phase.wall[i],
                phase.speedup(i)
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"parallel_speedup\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"available_parallelism\": {cores},");
    let _ = writeln!(json, "  \"threads_swept\": [1, 2, 4, 8],");
    let _ = writeln!(json, "  \"outputs_identical_across_threads\": true,");
    let _ = writeln!(
        json,
        "  \"note\": \"wall-clock speedup is bounded by available_parallelism; \
         thread counts above it only add scheduling overhead\","
    );
    json.push_str("  \"critical_path\": {\n");
    let _ = writeln!(json, "    \"threads\": 4,");
    let _ = writeln!(json, "    \"time_unit\": \"us\",");
    let _ = writeln!(json, "    \"spans\": {},", profile.spans);
    let _ = writeln!(json, "    \"causal_edges\": {},", profile.flows);
    let _ = writeln!(json, "    \"run_wall\": {},", profile.run_wall);
    let _ = writeln!(json, "    \"total\": {},", profile.critical_path_total());
    let _ = writeln!(
        json,
        "    \"compute\": {},",
        profile.attributed(SegmentKind::Compute)
    );
    let _ = writeln!(
        json,
        "    \"wait\": {},",
        profile.attributed(SegmentKind::Wait)
    );
    let _ = writeln!(
        json,
        "    \"retry\": {}",
        profile.attributed(SegmentKind::Retry)
    );
    json.push_str("  },\n");
    json.push_str("  \"phases\": {\n");
    for (pi, phase) in phases.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", phase.name);
        let _ = writeln!(json, "      \"tasks\": {},", phase.tasks);
        json.push_str("      \"wall_seconds\": {");
        for (i, &t) in THREADS.iter().enumerate() {
            let sep = if i + 1 < THREADS.len() { ", " } else { "" };
            let _ = write!(json, "\"{t}\": {:.6}{sep}", phase.wall[i].as_secs_f64());
        }
        json.push_str("},\n");
        json.push_str("      \"speedup_vs_serial\": {");
        for (i, &t) in THREADS.iter().enumerate() {
            let sep = if i + 1 < THREADS.len() { ", " } else { "" };
            let _ = write!(json, "\"{t}\": {:.3}{sep}", phase.speedup(i));
        }
        json.push_str("},\n");
        json.push_str("      \"pool_tasks_executed\": {");
        for (i, &t) in THREADS.iter().enumerate() {
            let sep = if i + 1 < THREADS.len() { ", " } else { "" };
            let _ = write!(json, "\"{t}\": {}{sep}", phase.counters[i].0);
        }
        json.push_str("},\n");
        json.push_str("      \"pool_steals\": {");
        for (i, &t) in THREADS.iter().enumerate() {
            let sep = if i + 1 < THREADS.len() { ", " } else { "" };
            let _ = write!(json, "\"{t}\": {}{sep}", phase.counters[i].1);
        }
        json.push_str("}\n");
        let sep = if pi + 1 < phases.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{sep}");
    }
    json.push_str("  }\n}\n");

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| format!("{m}/../.."))
        .unwrap_or_else(|_| ".".to_string());
    let path = format!("{root}/BENCH_parallel.json");
    std::fs::write(&path, &json).expect("BENCH_parallel.json is writable");
    println!("wrote {path}");
}
