//! Table III — assembly statistics across partition counts.
//!
//! The full pipeline runs on each data set with k ∈ {4, 16, 32, 64}
//! partitions. The paper's claim is *consistency*: N50, maximum contig
//! length and contig count barely change with k, demonstrating that
//! partitioning the hybrid graph does not cost assembly quality.

use fc_bench::harness::prepare_context;
use fc_bench::{bench_scale, print_table_header};

const KS: [usize; 4] = [4, 16, 32, 64];

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);

    print_table_header(
        &format!("Table III: assembly statistics vs partition count (scale {scale})"),
        &["set", "k", "N50(bp)", "max(bp)", "contigs", "Mbases"],
        10,
    );

    for (d, p) in ctx.datasets.iter().zip(&ctx.prepared) {
        for &k in &KS {
            let result = ctx
                .assembler
                .assemble_prepared(p, k)
                .expect("assembly succeeds");
            println!(
                "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10.3}",
                d.name,
                k,
                result.stats.n50,
                result.stats.max_contig,
                result.stats.num_contigs,
                result.stats.total_bases as f64 / 1e6,
            );
        }
    }
    println!(
        "\n(paper: stats essentially constant across k — e.g. D1 N50 2082-2083 bp for k=4..64)"
    );
}
