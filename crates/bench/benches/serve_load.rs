//! serve_load — saturation bench for the multi-tenant job server.
//!
//! Floods an in-process [`fc_serve::Serve`] with submissions at **10× its
//! configured queue capacity** from four tenants over real sockets, then
//! records what admission control did about it: submit-path latency (p50 /
//! p99 round-trip while saturated), sustained completion throughput, and
//! the typed 429 rejection counts per kind. The contract being measured is
//! DESIGN.md §12's graceful degradation: overload must surface as *bounded
//! queues plus typed rejections*, never as latency collapse or memory
//! growth.
//!
//! The runner is a deterministic stand-in (FNV passes plus a fixed 5 ms
//! cost), so the numbers isolate the serving layer — scheduler, HTTP
//! plumbing, durable state writes — from assembly itself. Results land in
//! `BENCH_serve.json` at the repository root. `FOCUS_BENCH_SCALE` scales
//! the flood size.

use fc_bench::bench_scale;
use fc_serve::sched::SchedConfig;
use fc_serve::server::{Serve, ServeConfig};
use fc_serve::{JobContext, JobError, JobOutput, JobRunner};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{Read as _, Write as IoWrite};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: [&str; 4] = ["lab-a", "lab-b", "lab-c", "lab-d"];
const OVERLOAD_FACTOR: usize = 10;
const JOB_COST: Duration = Duration::from_millis(5);

/// Deterministic mock assembly: a few FNV-1a passes over the input plus a
/// fixed service time, so queueing pressure is stable across machines.
struct HashRunner;

impl JobRunner for HashRunner {
    fn run(&self, ctx: &JobContext) -> Result<JobOutput, JobError> {
        let input = std::fs::read(&ctx.input_path)
            .map_err(|e| JobError::permanent(format!("read input: {e}")))?;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for _ in 0..64 {
            for &b in &input {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        std::thread::sleep(JOB_COST);
        Ok(JobOutput {
            contigs_fasta: format!(">contig_0 len={}\n{h:016x}\n", input.len()).into_bytes(),
            metrics_json: format!("{{\"fnv\":\"{h:016x}\"}}"),
            trace_json: String::new(),
            num_contigs: 1,
            n50: input.len() as u64,
            total_bases: input.len() as u64,
        })
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-bench-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Minimal HTTP/1.1 client: one request, returns (status, body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {text}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let end = body[start..].find('"')? + start;
    Some(&body[start..end])
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    let idx = (sorted.len().saturating_sub(1) * p) / 100;
    sorted[idx]
}

fn main() {
    let scale = bench_scale();
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        http_threads: 4,
        backoff_unit: Duration::ZERO,
        sched: SchedConfig {
            per_tenant_capacity: 16,
            total_capacity: 48,
            max_tenants: 8,
            quantum: 4,
        },
        ..ServeConfig::default()
    };
    let total_capacity = cfg.sched.total_capacity;
    let workers = cfg.workers;
    let flood = (((total_capacity * OVERLOAD_FACTOR) as f64) * scale)
        .ceil()
        .max(1.0) as usize;
    println!(
        "serve_load: flooding {flood} submissions ({OVERLOAD_FACTOR}x a {total_capacity}-slot \
         queue, scale {scale}) from {} tenants",
        TENANTS.len()
    );

    let server = Serve::start(cfg, temp_dir(), Arc::new(HashRunner)).expect("server starts");
    let addr = server.addr();

    // --- Flood phase: submit as fast as the socket allows. ---
    let started = Instant::now();
    let mut latencies: Vec<Duration> = Vec::with_capacity(flood);
    let mut admitted: Vec<String> = Vec::new();
    let mut rejections: BTreeMap<String, u64> = BTreeMap::new();
    for i in 0..flood {
        let tenant = TENANTS[i % TENANTS.len()];
        let body = format!("@r{i}\nACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIII\n");
        let t0 = Instant::now();
        let (status, resp) = request(
            addr,
            "POST",
            &format!("/jobs?tenant={tenant}"),
            body.as_bytes(),
        );
        latencies.push(t0.elapsed());
        match status {
            202 => admitted.push(json_field(&resp, "id").expect("id field").to_string()),
            429 => {
                let kind = json_field(&resp, "error")
                    .expect("typed rejection")
                    .to_string();
                *rejections.entry(kind).or_insert(0) += 1;
            }
            other => panic!("unexpected status {other}: {resp}"),
        }
    }
    let flood_wall = started.elapsed();

    // --- Drain phase: every admitted job must reach `done`. ---
    let deadline = Instant::now() + Duration::from_secs(120);
    for id in &admitted {
        loop {
            let (status, body) = request(addr, "GET", &format!("/jobs/{id}"), b"");
            assert_eq!(status, 200, "{body}");
            match json_field(&body, "state").expect("state field") {
                "queued" | "running" => {
                    assert!(Instant::now() < deadline, "job {id} stuck: {body}");
                    std::thread::sleep(Duration::from_millis(5));
                }
                "done" => break,
                other => panic!("admitted job {id} ended {other}: {body}"),
            }
        }
    }
    let total_wall = started.elapsed();

    // Health must still answer after the storm.
    let (status, _) = request(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200, "health endpoint survived saturation");
    server.shutdown(true);
    server.join();

    latencies.sort();
    let p50 = percentile(&latencies, 50);
    let p99 = percentile(&latencies, 99);
    let rejected: u64 = rejections.values().sum();
    let throughput = admitted.len() as f64 / total_wall.as_secs_f64().max(1e-9);
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "admitted", "rejected", "p50", "p99", "flood wall", "jobs/sec"
    );
    println!(
        "{:>10} {:>10} {:>10.3?} {:>12.3?} {:>12.3?} {:>14.1}",
        admitted.len(),
        rejected,
        p50,
        p99,
        flood_wall,
        throughput
    );
    for (kind, count) in &rejections {
        println!("  429 {kind}: {count}");
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"serve_load\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"overload_factor\": {OVERLOAD_FACTOR},");
    let _ = writeln!(json, "  \"queue_capacity\": {total_capacity},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"flood_submissions\": {flood},");
    let _ = writeln!(json, "  \"admitted\": {},", admitted.len());
    let _ = writeln!(json, "  \"completed\": {},", admitted.len());
    json.push_str("  \"rejections\": {");
    for (i, (kind, count)) in rejections.iter().enumerate() {
        let sep = if i + 1 < rejections.len() { ", " } else { "" };
        let _ = write!(json, "\"{kind}\": {count}{sep}");
    }
    json.push_str("},\n");
    let _ = writeln!(
        json,
        "  \"submit_latency_seconds\": {{\"p50\": {:.6}, \"p99\": {:.6}}},",
        p50.as_secs_f64(),
        p99.as_secs_f64()
    );
    let _ = writeln!(json, "  \"throughput_jobs_per_sec\": {throughput:.1},");
    let _ = writeln!(
        json,
        "  \"note\": \"admission control under 10x overload: every overflow is a typed 429, \
         every admitted job completes, health stays responsive\""
    );
    json.push_str("}\n");

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| format!("{m}/../.."))
        .unwrap_or_else(|_| ".".to_string());
    let path = format!("{root}/BENCH_serve.json");
    std::fs::write(&path, &json).expect("BENCH_serve.json is writable");
    println!("wrote {path}");
}
