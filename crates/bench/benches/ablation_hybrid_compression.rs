//! Ablation — hybrid-graph compression vs. data difficulty.
//!
//! The Fig. 5 runtime ratio (hybrid vs multilevel partitioning) is governed
//! by how far the contiguity test lets the hybrid graph compress the
//! overlap graph: `|G'0| / |G0|`. Clean reads compress enormously
//! (ratio → 0, hybrid partitioning looks "free"); repeat-rich, error-rich
//! reads defeat the test (ratio → 1, the hybrid advantage vanishes — and so
//! does assembly contiguity). This sweep quantifies that bridge between our
//! synthetic regime and the paper's real-data ~0.5 ratio.

use fc_bench::harness::{partition_runtime, standard_config};
use fc_bench::print_table_header;
use fc_partition::{partition_graph_set, PartitionConfig};
use focus_core::FocusAssembler;

fn main() {
    print_table_header(
        "Ablation: hybrid compression vs repeat/error content (D1-like data, k = 16)",
        &[
            "repeats", "rep_len", "err_3p", "|G0|", "|G'0|", "ratio", "t_h/t_m", "N50",
        ],
        9,
    );

    let cases: [(usize, usize, f64); 4] = [
        (3, 250, 0.01),
        (8, 350, 0.012),
        (12, 400, 0.015),
        (20, 450, 0.02),
    ];
    for (repeat_copies, repeat_len, err3) in cases {
        let mut ds_config = fc_sim::DatasetConfig::paper_scale(1.0);
        ds_config.taxonomy.genome.repeat_copies = repeat_copies;
        ds_config.taxonomy.genome.repeat_len = repeat_len;
        ds_config.reads.error_rate_3p = err3;
        let dataset = fc_sim::generate_dataset("D1", &ds_config, 1001).expect("data set generates");
        let assembler = FocusAssembler::new(standard_config()).expect("config valid");
        let prepared = assembler.prepare(&dataset.reads).expect("prepare succeeds");

        let g0 = prepared.graph.undirected.node_count();
        let h0 = prepared.hybrid.node_count();
        let procs = prepared.multilevel.level_count().max(8);
        let hybrid_tasks = partition_graph_set(&prepared.hybrid.set, &PartitionConfig::new(16, 7))
            .expect("hybrid partitioning succeeds")
            .tasks;
        let multi_tasks =
            partition_graph_set(&prepared.multilevel.set, &PartitionConfig::new(16, 7))
                .expect("multilevel partitioning succeeds")
                .tasks;
        let ratio_time =
            partition_runtime(&hybrid_tasks, procs) / partition_runtime(&multi_tasks, procs);
        let stats = assembler
            .assemble_prepared(&prepared, 16)
            .expect("assembly succeeds")
            .stats;

        println!(
            "{:>9} {:>9} {:>9.3} {:>9} {:>9} {:>9.3} {:>9.3} {:>9}",
            repeat_copies,
            repeat_len,
            err3,
            g0,
            h0,
            h0 as f64 / g0 as f64,
            ratio_time,
            stats.n50,
        );
    }
    println!("\n(the paper's real metagenomes sit in the middle of this sweep: compression");
    println!(" ratio ~0.5 and time ratio ~0.5; contiguity falls as repeats defeat the test)");
}
