//! Criterion micro-benchmarks for graph coarsening: heavy-edge matching,
//! contraction, and full multilevel-set construction.

use criterion::{criterion_group, criterion_main, Criterion};
use fc_graph::coarsen::{contract, heavy_edge_matching};
use fc_graph::{CoarsenConfig, LevelGraph, MultilevelSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// A noisy linear graph: the shape of real overlap graphs (a path plus
/// shortcut edges from high coverage).
fn overlap_like_graph(n: usize, seed: u64) -> LevelGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = LevelGraph::with_nodes(n);
    for i in 0..n - 1 {
        g.add_edge(i as u32, (i + 1) as u32, rng.gen_range(40..90));
        if i + 2 < n {
            g.add_edge(i as u32, (i + 2) as u32, rng.gen_range(5..40));
        }
    }
    g
}

fn bench_matching(c: &mut Criterion) {
    let g = overlap_like_graph(20_000, 1);
    c.bench_function("heavy_edge_matching_20k", |b| {
        b.iter(|| heavy_edge_matching(black_box(&g), 7))
    });
}

fn bench_contract(c: &mut Criterion) {
    let g = overlap_like_graph(20_000, 1);
    let mate = heavy_edge_matching(&g, 7);
    c.bench_function("contract_20k", |b| {
        b.iter(|| contract(black_box(&g), black_box(&mate)))
    });
}

fn bench_multilevel(c: &mut Criterion) {
    let g = overlap_like_graph(20_000, 1);
    c.bench_function("multilevel_build_20k_10_levels", |b| {
        b.iter(|| MultilevelSet::build(black_box(g.clone()), &CoarsenConfig::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matching, bench_contract, bench_multilevel
}
criterion_main!(benches);
