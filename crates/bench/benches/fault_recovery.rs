//! Fault recovery overhead — virtual-time cost of the recovery machinery
//! as a function of the injected fault rate.
//!
//! The partitioned hybrid graph of each data set runs the distributed
//! pipeline (k = 16) under seeded random fault plans at increasing crash /
//! message-drop rates. For every rate the table reports the mean (over
//! seeds) virtual-time overhead relative to the fault-free run, plus mean
//! crash, retry and speculation counts. Because recovery re-invokes pure
//! worker scans, every recoverable run's paths are identical to the clean
//! run's — that is asserted, not just claimed. Unrecoverable runs (the
//! whole cluster lost) are reported in the `lost` column.

use fc_bench::harness::{mean_sd, prepare_context};
use fc_bench::{bench_scale, print_table_header};
use fc_dist::{DistributedHybrid, FaultPlan, FaultRates};
use fc_partition::{partition_graph_set, PartitionConfig};

const K: usize = 16;
const SEED: u64 = 3;
const FAULT_SEEDS: [u64; 5] = [11, 23, 37, 53, 71];
const RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);

    print_table_header(
        &format!("Fault recovery: virtual-time overhead vs fault rate (k = {K}, scale {scale})"),
        &[
            "set", "rate", "overhead", "crashes", "retries", "specul.", "lost",
        ],
        9,
    );

    for (d, p) in ctx.datasets.iter().zip(&ctx.prepared) {
        let partition = partition_graph_set(&p.hybrid.set, &PartitionConfig::new(K, SEED))
            .expect("partitioning succeeds");
        let dh0 = DistributedHybrid::new(&p.hybrid, &p.store, partition.finest().to_vec(), K)
            .expect("distribution set-up succeeds");
        let config = ctx.assembler.config().dist;
        let clean = dh0.clone().run(&config).expect("clean run succeeds");
        let clean_time = clean.trimming_time + clean.traversal_time;

        for &rate in &RATES {
            let rates = FaultRates {
                crash: rate,
                drop: rate,
                delay: rate,
                straggle: rate / 2.0,
                ..Default::default()
            };
            let mut overheads = Vec::new();
            let mut crashes = Vec::new();
            let mut retries = Vec::new();
            let mut speculations = Vec::new();
            let mut lost = 0usize;
            for &fault_seed in &FAULT_SEEDS {
                let plan = FaultPlan::random(fault_seed, K, &rates);
                let mut dh = dh0.clone();
                match dh.run_with_faults(&config, plan) {
                    Ok(report) => {
                        assert_eq!(
                            report.paths, clean.paths,
                            "recovered run must reproduce the clean paths"
                        );
                        let time = report.trimming_time + report.traversal_time;
                        overheads.push(time / clean_time);
                        crashes.push(report.fault.crashes as f64);
                        retries.push(report.fault.retries as f64);
                        speculations.push(report.fault.speculative_reexecutions as f64);
                    }
                    Err(_) => lost += 1,
                }
            }
            let (overhead, _) = mean_sd(&overheads);
            let (crash_mean, _) = mean_sd(&crashes);
            let (retry_mean, _) = mean_sd(&retries);
            let (spec_mean, _) = mean_sd(&speculations);
            println!(
                "{:>9} {:>9.2} {:>8.2}x {:>9.1} {:>9.1} {:>9.1} {:>9}",
                d.name, rate, overhead, crash_mean, retry_mean, spec_mean, lost
            );
        }
    }
    println!("\n(overhead grows with the fault rate; paths always equal the fault-free run)");
}
