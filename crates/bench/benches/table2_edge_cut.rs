//! Table II — edge cut of the hybrid vs. overlap-graph partitionings.
//!
//! For every data set and k ∈ {8, 16, 32, 64}: the hybrid set is
//! partitioned and the assignment projected onto the overlap graph `G0`
//! (reads inherit their representative's partition); the multilevel set is
//! partitioned un-coarsening all the way to `G0`. Both cuts are measured on
//! the same graph (`G0`), making the comparison apples-to-apples.
//! Paper: the hybrid partitioning wins in all but two cells, and no cut
//! exceeds 0.43 % of total overlap-graph edge weight.

use fc_bench::harness::prepare_context;
use fc_bench::{bench_scale, print_table_header};
use fc_partition::{edge_cut, partition_graph_set, PartitionConfig};

const KS: [usize; 4] = [8, 16, 32, 64];
const SEED: u64 = 5;

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);

    print_table_header(
        &format!("Table II: edge cut on G0, hybrid vs multilevel partitioning (scale {scale})"),
        &[
            "k", "set", "cut(hyb)", "cut(ovl)", "hyb %", "ovl %", "winner",
        ],
        10,
    );

    let mut hybrid_wins = 0usize;
    let mut cells = 0usize;
    let mut max_pct = 0.0f64;
    for &k in &KS {
        for (d, p) in ctx.datasets.iter().zip(&ctx.prepared) {
            let total_w = p.graph.undirected.total_edge_weight() as f64;

            let hybrid = partition_graph_set(&p.hybrid.set, &PartitionConfig::new(k, SEED))
                .expect("hybrid partitioning succeeds");
            let read_parts = p.hybrid.project_partition_to_reads(hybrid.finest());
            let cut_hyb = edge_cut(&p.graph.undirected, &read_parts);

            let multi = partition_graph_set(&p.multilevel.set, &PartitionConfig::new(k, SEED))
                .expect("multilevel partitioning succeeds");
            let cut_ovl = edge_cut(&p.graph.undirected, multi.finest());

            let (pct_h, pct_o) = (
                100.0 * cut_hyb as f64 / total_w,
                100.0 * cut_ovl as f64 / total_w,
            );
            max_pct = max_pct.max(pct_h).max(pct_o);
            cells += 1;
            if cut_hyb <= cut_ovl {
                hybrid_wins += 1;
            }
            println!(
                "{:>10} {:>10} {:>10} {:>10} {:>9.2}% {:>9.2}% {:>10}",
                k,
                d.name,
                cut_hyb,
                cut_ovl,
                pct_h,
                pct_o,
                if cut_hyb <= cut_ovl {
                    "hybrid"
                } else {
                    "overlap"
                }
            );
        }
    }
    println!(
        "\nhybrid wins {hybrid_wins}/{cells} cells; worst cut = {max_pct:.2}% of total edge weight"
    );
    println!("(paper: hybrid wins 10/12 cells; all cuts ≤ 0.43% of total edge weight)");
}
