//! Fig. 4 — graph-partitioning speedup.
//!
//! The hybrid graph set of each data set is partitioned into 16 partitions;
//! the partitioner's task log is replayed on 1–12 simulated processors and
//! the speedup curve reported (mean ± sd over three seeds, as in the
//! paper). The paper's curve levels off around 8–10 processors because step
//! `i` of recursive bisection only offers `2^i` tasks and the k-way
//! refinement one task per level: `2^(log2 16 − 1) = 8` and ~10 levels.

use fc_bench::harness::{mean_sd, partition_runtime, prepare_context};
use fc_bench::{bench_scale, print_table_header};
use fc_partition::{partition_graph_set, PartitionConfig};

const K: usize = 16;
const MAX_PROCS: usize = 12;
const SEEDS: [u64; 3] = [11, 22, 33];

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);

    print_table_header(
        &format!("Fig. 4: partitioning speedup, k = {K}, hybrid graph sets (scale {scale})"),
        &[
            "procs",
            "D1 speedup",
            "D1 sd",
            "D2 speedup",
            "D2 sd",
            "D3 speedup",
            "D3 sd",
        ],
        11,
    );

    // Task logs per data set per seed.
    let logs: Vec<Vec<_>> = ctx
        .prepared
        .iter()
        .map(|p| {
            SEEDS
                .iter()
                .map(|&seed| {
                    partition_graph_set(&p.hybrid.set, &PartitionConfig::new(K, seed))
                        .expect("partitioning succeeds")
                        .tasks
                })
                .collect()
        })
        .collect();

    for procs in 1..=MAX_PROCS {
        let mut row = format!("{procs:>11}");
        for per_seed in &logs {
            let speedups: Vec<f64> = per_seed
                .iter()
                .map(|tasks| partition_runtime(tasks, 1) / partition_runtime(tasks, procs))
                .collect();
            let (mean, sd) = mean_sd(&speedups);
            row.push_str(&format!(" {mean:>11.2} {sd:>11.3}"));
        }
        println!("{row}");
    }
    println!(
        "\n(expected shape: near-linear up to ~8 procs, flat after max(levels, 2^(log2 k - 1)))"
    );
}
