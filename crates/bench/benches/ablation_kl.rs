//! Ablation — the §IV-B KL speed-ups.
//!
//! The paper's KL uses (a) the fifty-non-improving-swap early stop and
//! (b) diagonal scanning over D-sorted queues. This bench ablates (a) by
//! sweeping `max_bad_moves` and reports both the runtime and the cut
//! quality, quantifying what the cutoff trades away (paper's answer:
//! essentially nothing).

use fc_bench::print_table_header;
use fc_graph::LevelGraph;
use fc_partition::kl::KlConfig;
use fc_partition::{greedy_grow, kl_refine, LocalGraph};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn overlap_like_graph(n: usize, seed: u64) -> LevelGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = LevelGraph::with_nodes(n);
    for i in 0..n - 1 {
        g.add_edge(i as u32, (i + 1) as u32, rng.gen_range(40..90));
        if i + 2 < n {
            g.add_edge(i as u32, (i + 2) as u32, rng.gen_range(5..40));
        }
    }
    g
}

fn main() {
    let g = overlap_like_graph(4000, 11);
    let nodes: Vec<u32> = (0..g.node_count() as u32).collect();
    let local = LocalGraph::extract(&g, &nodes);

    print_table_header(
        "Ablation: KL early-stop budget (4k-node overlap-like graph)",
        &["bad_moves", "cut", "gain", "work", "time_ms"],
        12,
    );

    for &budget in &[5usize, 20, 50, 200, 1000, usize::MAX] {
        let mut work = 0u64;
        let mut side = greedy_grow(&local, 21, &mut work);
        let before = local.cut(&side);
        let config = KlConfig {
            max_bad_moves: budget,
            ..Default::default()
        };
        let t = Instant::now();
        let mut kl_work = 0u64;
        let gain = kl_refine(&local, &mut side, &config, &mut kl_work);
        let elapsed = t.elapsed().as_secs_f64() * 1000.0;
        println!(
            "{:>12} {:>12} {:>12} {:>12} {:>12.2}",
            if budget == usize::MAX {
                "unlimited".to_string()
            } else {
                budget.to_string()
            },
            before - gain,
            gain,
            kl_work,
            elapsed
        );
    }
    println!("\n(expected: cut quality saturates near budget 50 — the paper's choice — while");
    println!(" work keeps growing with larger budgets)");
}
