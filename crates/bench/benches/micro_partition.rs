//! Criterion micro-benchmarks splitting the partitioning cost into its
//! stages: greedy growing, KL refinement, k-way refinement, full pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use fc_graph::{CoarsenConfig, LevelGraph, MultilevelSet};
use fc_partition::kl::KlConfig;
use fc_partition::kway::KwayConfig;
use fc_partition::{
    greedy_grow, kl_refine, kway_refine, partition_graph_set, LocalGraph, PartitionConfig,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn overlap_like_graph(n: usize, seed: u64) -> LevelGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = LevelGraph::with_nodes(n);
    for i in 0..n - 1 {
        g.add_edge(i as u32, (i + 1) as u32, rng.gen_range(40..90));
        if i + 2 < n {
            g.add_edge(i as u32, (i + 2) as u32, rng.gen_range(5..40));
        }
    }
    g
}

fn local_of(g: &LevelGraph) -> LocalGraph {
    let nodes: Vec<u32> = (0..g.node_count() as u32).collect();
    LocalGraph::extract(g, &nodes)
}

fn bench_grow(c: &mut Criterion) {
    let local = local_of(&overlap_like_graph(5000, 1));
    c.bench_function("greedy_grow_5k", |b| {
        b.iter(|| {
            let mut work = 0;
            greedy_grow(black_box(&local), 9, &mut work)
        })
    });
}

fn bench_kl(c: &mut Criterion) {
    let local = local_of(&overlap_like_graph(5000, 1));
    let mut work = 0;
    let side0 = greedy_grow(&local, 9, &mut work);
    c.bench_function("kl_refine_5k", |b| {
        b.iter(|| {
            let mut side = side0.clone();
            let mut work = 0;
            kl_refine(
                black_box(&local),
                &mut side,
                &KlConfig::default(),
                &mut work,
            )
        })
    });
}

fn bench_kway(c: &mut Criterion) {
    let g = overlap_like_graph(5000, 1);
    let parts0: Vec<u32> = (0..5000).map(|i| ((i * 16) / 5000) as u32).collect();
    c.bench_function("kway_refine_5k_16parts", |b| {
        b.iter(|| {
            let mut parts = parts0.clone();
            let mut work = 0;
            kway_refine(
                black_box(&g),
                &mut parts,
                16,
                &KwayConfig::default(),
                &mut work,
            )
        })
    });
}

fn bench_full(c: &mut Criterion) {
    let set = MultilevelSet::build(overlap_like_graph(10_000, 1), &CoarsenConfig::default()).set;
    c.bench_function("partition_graph_set_10k_k16", |b| {
        b.iter(|| partition_graph_set(black_box(&set), &PartitionConfig::new(16, 3)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_grow, bench_kl, bench_kway, bench_full
}
criterion_main!(benches);
