//! Ablation — the 1.03 balance bound (paper §IV-A/§IV-D).
//!
//! The k-way refinement rejects moves into partitions heavier than
//! `balance ×` the source. Sweeping the bound shows the edge-cut /
//! balance trade-off around the paper's 1.03 choice.

use fc_bench::print_table_header;
use fc_graph::{CoarsenConfig, LevelGraph, MultilevelSet};
use fc_partition::kway::KwayConfig;
use fc_partition::{edge_cut, partition_balance, partition_graph_set, PartitionConfig};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn overlap_like_graph(n: usize, seed: u64) -> LevelGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = LevelGraph::with_nodes(n);
    for i in 0..n - 1 {
        g.add_edge(i as u32, (i + 1) as u32, rng.gen_range(40..90));
        if i + 2 < n {
            g.add_edge(i as u32, (i + 2) as u32, rng.gen_range(5..40));
        }
    }
    g
}

fn main() {
    let g = overlap_like_graph(8000, 5);
    let set = MultilevelSet::build(g, &CoarsenConfig::default()).set;
    const K: usize = 16;

    print_table_header(
        "Ablation: k-way balance bound (8k-node graph, k = 16)",
        &["bound", "edge_cut", "balance", "cut_vs_1.03"],
        12,
    );

    let mut baseline_cut = None;
    for &bound in &[1.001f64, 1.01, 1.03, 1.10, 1.30, 2.0] {
        let mut config = PartitionConfig::new(K, 9);
        config.kway = KwayConfig {
            balance: bound,
            ..Default::default()
        };
        let result = partition_graph_set(&set, &config).expect("partitioning succeeds");
        let cut = edge_cut(set.finest(), result.finest());
        let bal = partition_balance(set.finest(), result.finest(), K);
        if (bound - 1.03).abs() < 1e-9 {
            baseline_cut = Some(cut);
        }
        println!(
            "{:>12.3} {:>12} {:>12.3} {:>12}",
            bound,
            cut,
            bal,
            match baseline_cut {
                Some(b) if b > 0 => format!("{:.2}x", cut as f64 / b as f64),
                _ => "-".to_string(),
            }
        );
    }
    println!("\n(expected: tighter bounds restrict refinement (higher cut); looser bounds");
    println!(" trade balance for cut — 1.03 sits at the knee, which is why the paper uses it)");
}
