//! Alignment-kernel speedup — scalar banded NW vs the bit-parallel
//! prefilter pipelines (`--align-kernel`), wall-clock.
//!
//! For each kernel kind the overlaps are first asserted **bit-identical**
//! to the scalar reference — at thread counts {1, 2, 4, 8} — before any
//! timing happens; a kernel that diverges aborts the bench. Timing then
//! measures two things serially, best-of-3: the **alignment verification
//! phase in isolation** (the same geometry-produced [`fc_align::VerifyReq`]
//! batch pushed through each kernel's `verify_batch` — the headline
//! speedup, since that is the exact code `--align-kernel` dispatches) and
//! the end-to-end overlap pipeline (seed → vote → verify) for context.
//! Results land in `BENCH_align.json` at the repository root together with
//! the prefilter counters that explain the speedup.

use fc_align::{KernelKind, KernelScratch, OverlapConfig, Overlapper, PairStats, Pool};
use fc_bench::{bench_scale, prepare_context};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

struct KernelRecord {
    kind: KernelKind,
    /// Resolved engine name (`scalar`, `bitparallel`, `wide-avx2`, …).
    engine: String,
    /// Verification phase only: the shared request batch through
    /// `verify_batch`. The headline number.
    verify: Duration,
    /// End-to-end seed+vote+verify, for context (seeding is
    /// kernel-independent and bounds the pipeline ratio).
    pipeline: Duration,
    total: PairStats,
}

fn best_of<F: FnMut()>(mut run: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed());
    }
    best
}

/// Kernel-dependent counters zeroed, for logical comparison.
fn logical(stats: &PairStats) -> PairStats {
    PairStats {
        prefilter_rejected: 0,
        prefilter_verified: 0,
        exact_hits: 0,
        wide_lanes: 0,
        ..*stats
    }
}

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);
    let prepared = ctx
        .prepared
        .iter()
        .max_by_key(|p| p.store.len())
        .expect("paper data sets are non-empty");
    let subsets = prepared.store.split_subsets(4);
    let base_config = ctx.assembler.config().overlap;
    println!(
        "align kernel sweep: {} reads, {} subsets, scale {scale}",
        prepared.store.len(),
        subsets.len()
    );

    let make = |kind: KernelKind| -> Overlapper<'_> {
        let config = OverlapConfig {
            kernel: kind,
            ..base_config
        };
        Overlapper::new(&prepared.store, config).expect("overlap config is valid")
    };

    // --- Correctness gate: bit-identical overlaps before any timing. ---
    let scalar = make(KernelKind::Scalar);
    let reference = scalar.overlap_all_with(&subsets, &Pool::serial());
    assert!(!reference.0.is_empty(), "bench corpus produced no overlaps");
    for kind in [KernelKind::Scalar, KernelKind::BitParallel, KernelKind::Auto] {
        let overlapper = make(kind);
        for &t in &THREADS {
            let got = overlapper.overlap_all_with(&subsets, &Pool::new(t));
            assert_eq!(
                got.0,
                reference.0,
                "{} overlaps diverge from scalar at {t} threads",
                overlapper.kernel_name()
            );
            for ((i, j, s), (ri, rj, rs)) in got.1.iter().zip(&reference.1) {
                assert_eq!((i, j), (ri, rj));
                assert_eq!(
                    logical(s),
                    logical(rs),
                    "{} logical pair stats diverge at {t} threads",
                    overlapper.kernel_name()
                );
            }
        }
        println!(
            "  {:<12} identical to scalar at threads {THREADS:?}",
            overlapper.kernel_name()
        );
    }

    // --- The verification work list: geometry is kernel-independent, so
    // every kernel gets the identical request batch. ---
    let reqs = scalar.gather_requests(&subsets);
    println!("  gathered {} verification requests", reqs.len());

    // --- Timing: verify phase isolated + end-to-end pipeline, best of {REPS}. ---
    let mut records = Vec::new();
    let mut reference_verdicts = None;
    for kind in [KernelKind::Scalar, KernelKind::BitParallel, KernelKind::Auto] {
        let overlapper = make(kind);

        let mut scratch = KernelScratch::default();
        let mut verdicts = Vec::new();
        let mut verify_stats = PairStats::default();
        let verify = best_of(|| {
            verify_stats = PairStats::default();
            overlapper.verify_requests(&reqs, &mut scratch, &mut verify_stats, &mut verdicts);
        });
        match &reference_verdicts {
            None => reference_verdicts = Some(verdicts.clone()),
            Some(reference) => assert_eq!(
                &verdicts,
                reference,
                "{} verdicts diverge from scalar on the shared request batch",
                overlapper.kernel_name()
            ),
        }

        let pool = Pool::serial();
        let mut out = None;
        let pipeline = best_of(|| {
            out = Some(overlapper.overlap_all_with(&subsets, &pool));
        });
        // Pipeline stats carry the geometry-stage counters (candidates,
        // nw_cells) the verify-only pass never sees; its kernel counters
        // match `verify_stats` since both saw the same request batch.
        let (_, pair_stats) = out.expect("at least one repetition ran");
        let mut total = PairStats::default();
        for (_, _, s) in &pair_stats {
            total.merge(s);
        }

        records.push(KernelRecord {
            kind,
            engine: overlapper.kernel_name().to_string(),
            verify,
            pipeline,
            total,
        });
    }

    let scalar_verify = records[0].verify.as_secs_f64();
    let scalar_pipeline = records[0].pipeline.as_secs_f64();
    println!(
        "{:>12} {:>14} {:>12} {:>10} {:>12} {:>10}",
        "kernel", "engine", "verify", "speedup", "pipeline", "speedup"
    );
    for r in &records {
        println!(
            "{:>12} {:>14} {:>12.3?} {:>9.2}x {:>12.3?} {:>9.2}x",
            r.kind.as_str(),
            r.engine,
            r.verify,
            scalar_verify / r.verify.as_secs_f64().max(1e-12),
            r.pipeline,
            scalar_pipeline / r.pipeline.as_secs_f64().max(1e-12)
        );
    }

    // --- JSON artifact. ---
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"experiment\": \"align_kernel\",");
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"reads\": {},", prepared.store.len());
    let _ = writeln!(json, "  \"candidates\": {},", records[0].total.candidates);
    let _ = writeln!(json, "  \"verify_requests\": {},", reqs.len());
    let _ = writeln!(json, "  \"threads_checked\": [1, 2, 4, 8],");
    let _ = writeln!(json, "  \"overlaps_identical_across_kernels\": true,");
    let _ = writeln!(
        json,
        "  \"note\": \"verify_seconds times the alignment verification phase in \
         isolation (the identical geometry-produced request batch through each \
         kernel, best of {REPS}); pipeline_seconds is the serial end-to-end \
         seed+vote+verify for context. Every kernel's overlaps byte-match the \
         scalar reference at every swept thread count before timing\","
    );
    json.push_str("  \"kernels\": {\n");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", r.kind.as_str());
        let _ = writeln!(json, "      \"engine\": \"{}\",", r.engine);
        let _ = writeln!(
            json,
            "      \"verify_seconds\": {:.6},",
            r.verify.as_secs_f64()
        );
        let _ = writeln!(
            json,
            "      \"speedup_vs_scalar\": {:.3},",
            scalar_verify / r.verify.as_secs_f64().max(1e-12)
        );
        let _ = writeln!(
            json,
            "      \"pipeline_seconds\": {:.6},",
            r.pipeline.as_secs_f64()
        );
        let _ = writeln!(
            json,
            "      \"pipeline_speedup_vs_scalar\": {:.3},",
            scalar_pipeline / r.pipeline.as_secs_f64().max(1e-12)
        );
        let _ = writeln!(
            json,
            "      \"prefilter_rejected\": {},",
            r.total.prefilter_rejected
        );
        let _ = writeln!(
            json,
            "      \"prefilter_verified\": {},",
            r.total.prefilter_verified
        );
        let _ = writeln!(json, "      \"exact_hits\": {},", r.total.exact_hits);
        let _ = writeln!(json, "      \"wide_lanes\": {},", r.total.wide_lanes);
        let _ = writeln!(json, "      \"nw_cells_charged\": {}", r.total.nw_cells);
        let sep = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{sep}");
    }
    json.push_str("  }\n}\n");

    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| format!("{m}/../.."))
        .unwrap_or_else(|_| ".".to_string());
    let path = format!("{root}/BENCH_align.json");
    std::fs::write(&path, &json).expect("BENCH_align.json is writable");
    println!("wrote {path}");
}
