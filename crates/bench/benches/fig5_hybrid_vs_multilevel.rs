//! Fig. 5 — hybrid vs. multilevel graph-set partitioning runtime.
//!
//! Both graph-set flavours of each data set are partitioned into
//! k ∈ {8, 16, 32, 64} partitions on `max(levels, k/2)` simulated
//! processors (the paper's processor rule for full natural parallelism).
//! The paper's result: partitioning the hybrid set costs roughly half the
//! multilevel set, because biological knowledge lets the bisections stop at
//! `G'0` instead of un-coarsening to the full overlap graph `G0`.

use fc_bench::harness::{partition_runtime, prepare_context};
use fc_bench::{bench_scale, print_table_header};
use fc_partition::{partition_graph_set, PartitionConfig};

const KS: [usize; 4] = [8, 16, 32, 64];
const SEED: u64 = 7;

fn main() {
    let scale = bench_scale();
    let ctx = prepare_context(scale);

    print_table_header(
        &format!(
            "Fig. 5: partitioning runtime (virtual units), hybrid vs multilevel (scale {scale})"
        ),
        &["set", "k", "procs", "hybrid", "multilevel", "ratio"],
        11,
    );

    for (d, p) in ctx.datasets.iter().zip(&ctx.prepared) {
        for &k in &KS {
            let procs = p.multilevel.level_count().max(k / 2);
            let hybrid_tasks = partition_graph_set(&p.hybrid.set, &PartitionConfig::new(k, SEED))
                .expect("hybrid partitioning succeeds")
                .tasks;
            let multi_tasks =
                partition_graph_set(&p.multilevel.set, &PartitionConfig::new(k, SEED))
                    .expect("multilevel partitioning succeeds")
                    .tasks;
            let t_hybrid = partition_runtime(&hybrid_tasks, procs);
            let t_multi = partition_runtime(&multi_tasks, procs);
            println!(
                "{:>11} {:>11} {:>11} {:>11.0} {:>11.0} {:>11.2}",
                d.name,
                k,
                procs,
                t_hybrid,
                t_multi,
                t_hybrid / t_multi
            );
        }
    }
    println!("\n(paper: hybrid ≈ half the multilevel runtime at every k)");
}
