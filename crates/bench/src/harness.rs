//! Shared experiment setup: data sets, pipeline preparation, schedulers.

use fc_dist::cluster::{schedule_phases, CostModel};
use fc_partition::recursive::{TaskKind, TaskRecord};
use fc_sim::{paper_datasets, Dataset};
use focus_core::{FocusAssembler, FocusConfig, Prepared};

/// The three paper-analogue data sets with their prepared (partition-
/// independent) pipeline artifacts.
pub struct ExperimentContext {
    /// D1–D3.
    pub datasets: Vec<Dataset>,
    /// Stages 1–5 output per data set.
    pub prepared: Vec<Prepared>,
    /// The assembler used.
    pub assembler: FocusAssembler,
}

/// Reads `FOCUS_BENCH_SCALE` (default 1.0).
pub fn bench_scale() -> f64 {
    std::env::var("FOCUS_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// The standard pipeline configuration used by all experiments.
pub fn standard_config() -> FocusConfig {
    let mut config = FocusConfig::default();
    // 100 bp reads with quality tails: permissive-but-real thresholds.
    config.trim.min_read_len = 40;
    config.overlap.min_overlap_len = 50;
    config.overlap.min_identity = 0.90;
    config
}

/// Generates D1–D3 at `scale` and runs pipeline stages 1–5 on each.
pub fn prepare_context(scale: f64) -> ExperimentContext {
    let datasets = paper_datasets(scale).expect("paper data sets generate");
    let assembler = FocusAssembler::new(standard_config()).expect("standard config is valid");
    let prepared = datasets
        .iter()
        .map(|d| assembler.prepare(&d.reads).expect("preparation succeeds"))
        .collect();
    ExperimentContext {
        datasets,
        prepared,
        assembler,
    }
}

/// Converts a partitioner task log into barrier-separated phases for the
/// simulated cluster (paper §IV-C): one phase per recursive-bisection step
/// (2^i concurrent tasks at step i), then one phase holding the per-level
/// k-way refinement tasks (levels are independent).
pub fn partition_phases(tasks: &[TaskRecord]) -> Vec<Vec<u64>> {
    let mut bisect_steps: Vec<Vec<u64>> = Vec::new();
    let mut kway: Vec<u64> = Vec::new();
    for t in tasks {
        match t.kind {
            TaskKind::Bisect { step, .. } => {
                while bisect_steps.len() <= step {
                    bisect_steps.push(Vec::new());
                }
                bisect_steps[step].push(t.work);
            }
            TaskKind::KwayLevel { .. } => kway.push(t.work),
        }
    }
    if !kway.is_empty() {
        bisect_steps.push(kway);
    }
    bisect_steps
}

/// Virtual runtime of replaying `tasks` on `ranks` simulated processors.
pub fn partition_runtime(tasks: &[TaskRecord], ranks: usize) -> f64 {
    schedule_phases(&partition_phases(tasks), ranks, CostModel::default())
}

/// Mean and (population) standard deviation.
pub fn mean_sd(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_partition::recursive::{TaskKind, TaskRecord};

    fn task(step: usize, work: u64) -> TaskRecord {
        TaskRecord {
            kind: TaskKind::Bisect { step, part: 0 },
            work,
        }
    }

    #[test]
    fn phases_group_by_step_then_kway() {
        let tasks = vec![
            task(0, 100),
            task(1, 40),
            task(1, 60),
            TaskRecord {
                kind: TaskKind::KwayLevel { level: 0 },
                work: 10,
            },
            TaskRecord {
                kind: TaskKind::KwayLevel { level: 1 },
                work: 20,
            },
        ];
        let phases = partition_phases(&tasks);
        assert_eq!(phases, vec![vec![100], vec![40, 60], vec![10, 20]]);
    }

    #[test]
    fn runtime_monotone_in_ranks() {
        let tasks = vec![task(0, 100), task(1, 50), task(1, 70)];
        let t1 = partition_runtime(&tasks, 1);
        let t2 = partition_runtime(&tasks, 2);
        let t4 = partition_runtime(&tasks, 4);
        assert!(t1 >= t2);
        assert!(t2 >= t4);
        // Serial = sum of works.
        assert_eq!(t1, 220.0);
        // Two ranks: step0 = 100, step1 = max(50,70).
        assert_eq!(t2, 170.0);
        assert_eq!(t2, t4); // parallelism exhausted at 2 tasks/phase
    }

    #[test]
    fn mean_sd_basics() {
        let (m, s) = mean_sd(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_sd(&[]), (0.0, 0.0));
    }

    #[test]
    fn bench_scale_default() {
        // Unless the variable is set in the test environment, the default
        // applies.
        if std::env::var("FOCUS_BENCH_SCALE").is_err() {
            assert_eq!(bench_scale(), 1.0);
        }
    }

    #[test]
    fn tiny_context_prepares() {
        let ctx = prepare_context(0.01);
        assert_eq!(ctx.datasets.len(), 3);
        assert_eq!(ctx.prepared.len(), 3);
        for p in &ctx.prepared {
            assert!(!p.store.is_empty());
            assert!(p.hybrid.node_count() > 0);
        }
    }
}
