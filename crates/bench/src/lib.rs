//! # fc-bench — the experiment harness
//!
//! One bench target per table/figure of the paper's §VI (see DESIGN.md §4
//! for the experiment index). This library holds the shared harness: data
//! set preparation, the virtual-time schedulers used to replay the
//! partitioner's task logs, and the row printers that mirror the paper's
//! tables.
//!
//! Scale: every experiment honours the `FOCUS_BENCH_SCALE` environment
//! variable (default 1.0), a multiplier on the read counts of the three
//! paper-analogue data sets. `FOCUS_BENCH_SCALE=1` reproduces the full
//! benchmark size documented in EXPERIMENTS.md.

pub mod harness;
pub mod tables;

pub use harness::{bench_scale, prepare_context, standard_config, ExperimentContext};
pub use tables::{fmt_f64, print_rule, print_table_header};
