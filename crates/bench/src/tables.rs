//! Small helpers for printing paper-style tables to stdout.

/// Prints a header row of column names with a fixed width.
pub fn print_table_header(title: &str, columns: &[&str], width: usize) {
    println!("\n=== {title} ===");
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join(" "));
    print_rule(columns.len(), width);
}

/// Prints a horizontal rule matching `columns` columns of `width`.
pub fn print_rule(columns: usize, width: usize) {
    println!("{}", vec!["-".repeat(width); columns].join(" "));
}

/// Formats a float with sensible precision for table cells.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(12345.6), "12346");
        assert_eq!(fmt_f64(42.25), "42.2");
        assert_eq!(fmt_f64(1.23456), "1.235");
    }
}
