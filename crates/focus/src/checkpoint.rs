//! Durable checkpoint/resume for the whole pipeline (§II + §IV + §V).
//!
//! [`FocusAssembler::assemble_with_checkpoints`] runs the same nine-phase
//! pipeline as [`assemble`](FocusAssembler::assemble) but persists a
//! verified checkpoint after every phase boundary through
//! [`fc_ckpt::CheckpointStore`]: read preprocessing, alignment, multilevel
//! coarsening, hybrid-set construction, partitioning, and each of the four
//! distributed phases. A later run pointed at the same directory with
//! [`CheckpointOptions::resume`] skips every phase whose checkpoint
//! verifies — per-record and whole-file CRCs, format version, config
//! fingerprint and input digest all have to match, otherwise the phase is
//! recomputed and the rejection counted under `ckpt.rejected`. Loaded
//! state is *never* trusted silently.
//!
//! ## Determinism contract
//!
//! Every phase of the pipeline is deterministic given its inputs, so a run
//! resumed from any phase boundary produces bit-identical contigs, paths
//! and fault reports to an uninterrupted run — the chaos harness
//! (`tests/chaos.rs`) kills and resumes at every boundary and byte-compares
//! the outputs. Metrics travel with the state: each checkpoint embeds the
//! cumulative metrics snapshot (minus `sched.*`/`ckpt.*`) at its phase
//! boundary, and loading a checkpoint restores it, so logical-clock
//! snapshots are byte-identical too.
//!
//! ## Degradation contract
//!
//! Checkpointing must never take an assembly down with it. The first write
//! failure (unwritable directory, disk full — injected or real) emits one
//! `ckpt.degraded` observability event, disables all further checkpoint
//! writes, and the assembly finishes normally.

use crate::config::{FocusConfig, FocusError};
use crate::ooc::RunBudget;
use crate::pipeline::{dedup_reverse_complements, path_contig, AssemblyResult, FocusAssembler};
use crate::stats::{AssemblyStats, PipelineProfile};
use fc_align::{Overlap, Overlapper, PairStats, Pool};
use fc_ckpt::{decode_from_slice, encode_to_vec, CheckpointStore, Codec, FsFaultPlan, LoadOutcome};
use fc_dist::{DistCheckpoint, DistPhaseState, DistributedHybrid, FaultPlan, PhaseId};
use fc_graph::{HybridSet, MultilevelSet, OverlapGraph};
use fc_obs::{MetricsSnapshot, ObsOptions, Recorder};
use fc_partition::{partition_graph_set_obs, PartitionConfig, PartitionResult};
use fc_seq::{Read, ReadStore};
use std::path::PathBuf;
use std::time::Instant;

/// The nine checkpointed phase boundaries of the pipeline, in execution
/// order. The discriminant doubles as the on-disk phase id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptPhase {
    /// §II-A read trimming and strand augmentation.
    Preprocess,
    /// §II-B parallel overlap detection and verification.
    Alignment,
    /// §II-C multilevel coarsening.
    Coarsen,
    /// §II-D hybrid graph-set construction.
    Hybrid,
    /// §IV multi-constraint partitioning.
    Partition,
    /// §V distributed transitive reduction.
    DistTransitiveReduction,
    /// §V distributed containment removal.
    DistContainmentRemoval,
    /// §V distributed error-node removal.
    DistErrorRemoval,
    /// §V distributed maximal-path traversal.
    DistTraversal,
}

impl CkptPhase {
    /// Every phase, in pipeline order.
    pub const ALL: [CkptPhase; 9] = [
        CkptPhase::Preprocess,
        CkptPhase::Alignment,
        CkptPhase::Coarsen,
        CkptPhase::Hybrid,
        CkptPhase::Partition,
        CkptPhase::DistTransitiveReduction,
        CkptPhase::DistContainmentRemoval,
        CkptPhase::DistErrorRemoval,
        CkptPhase::DistTraversal,
    ];

    /// Stable on-disk phase id (position in [`CkptPhase::ALL`]).
    pub fn id(self) -> u32 {
        self as u32
    }

    /// Stable snake_case name, used in checkpoint file names, the manifest
    /// and the CLI's `--crash-after` option.
    pub fn name(self) -> &'static str {
        match self {
            CkptPhase::Preprocess => "preprocess",
            CkptPhase::Alignment => "alignment",
            CkptPhase::Coarsen => "coarsen",
            CkptPhase::Hybrid => "hybrid",
            CkptPhase::Partition => "partition",
            CkptPhase::DistTransitiveReduction => "dist_transitive_reduction",
            CkptPhase::DistContainmentRemoval => "dist_containment_removal",
            CkptPhase::DistErrorRemoval => "dist_error_removal",
            CkptPhase::DistTraversal => "dist_traversal",
        }
    }

    /// Parses a [`CkptPhase::name`] back into the phase.
    pub fn parse(text: &str) -> Option<CkptPhase> {
        CkptPhase::ALL.iter().copied().find(|p| p.name() == text)
    }

    /// The checkpoint phase of a distributed-stage phase.
    pub fn from_dist(phase: PhaseId) -> CkptPhase {
        match phase {
            PhaseId::TransitiveReduction => CkptPhase::DistTransitiveReduction,
            PhaseId::ContainmentRemoval => CkptPhase::DistContainmentRemoval,
            PhaseId::ErrorRemoval => CkptPhase::DistErrorRemoval,
            PhaseId::Traversal => CkptPhase::DistTraversal,
        }
    }
}

/// Checkpointing knobs for one assembly run. Lives outside [`FocusConfig`]
/// (which stays `Copy` and is what the config fingerprint covers) because
/// where checkpoints are stored must not change what is computed.
#[derive(Debug, Clone, Default)]
pub struct CheckpointOptions {
    /// Checkpoint directory; `None` disables checkpointing entirely.
    pub dir: Option<PathBuf>,
    /// Try to load existing checkpoints before computing each phase.
    pub resume: bool,
    /// Deterministic filesystem fault injection for the chaos harness.
    pub fs_faults: FsFaultPlan,
    /// Stop the run right after this phase's checkpoint is written — the
    /// chaos harness's deterministic stand-in for "the process died here".
    pub stop_after: Option<CkptPhase>,
}

impl CheckpointOptions {
    /// Checkpoints under `dir`, no resume, no faults, no stop.
    pub fn in_dir(dir: impl Into<PathBuf>) -> CheckpointOptions {
        CheckpointOptions {
            dir: Some(dir.into()),
            ..CheckpointOptions::default()
        }
    }
}

/// What [`FocusAssembler::assemble_with_checkpoints`] produced.
#[derive(Debug, Clone)]
pub enum AssemblyOutcome {
    /// The pipeline ran to the end.
    Completed(AssemblyResult),
    /// The run stopped right after checkpointing this phase, as requested
    /// by [`CheckpointOptions::stop_after`].
    Stopped(CkptPhase),
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv64(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// FNV-1a fingerprint of every configuration field that changes what the
/// pipeline computes. `threads`, `observability` and `memory_budget` are
/// normalised away: results are bit-identical at any thread count or
/// budget and metrics are carried inside the checkpoints, so none of them
/// invalidates saved state.
pub fn config_fingerprint(config: &FocusConfig) -> u64 {
    let mut canonical = *config;
    canonical.threads = 0;
    canonical.memory_budget = None;
    canonical.observability = ObsOptions::default();
    let mut h = FNV_OFFSET;
    fnv64(&mut h, format!("{canonical:?}").as_bytes());
    h
}

/// Incremental form of [`input_digest`]: feed reads one at a time (the
/// streaming ingest path holds one read in memory) and [`finish`] at the
/// end. The read count folds in last, so a stream of unknown length
/// digests in a single pass.
///
/// [`finish`]: InputDigest::finish
#[derive(Debug, Clone, Default)]
pub struct InputDigest {
    hash: Option<u64>,
    count: u64,
}

impl InputDigest {
    /// An empty digest; equals `input_digest(&[])` when finished at once.
    pub fn new() -> InputDigest {
        InputDigest {
            hash: None,
            count: 0,
        }
    }

    /// Folds one read into the digest.
    pub fn observe(&mut self, read: &Read) {
        let h = self.hash.get_or_insert(FNV_OFFSET);
        self.count += 1;
        fnv64(h, read.name.as_bytes());
        fnv64(h, &[0xFF]);
        fnv64(h, &read.seq.to_ascii());
        match &read.qual {
            Some(q) => {
                fnv64(h, &[0xFE]);
                fnv64(h, q.as_slice());
            }
            None => fnv64(h, &[0xFD]),
        }
    }

    /// Reads observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The final digest over everything observed.
    pub fn finish(&self) -> u64 {
        let mut h = self.hash.unwrap_or(FNV_OFFSET);
        fnv64(&mut h, &self.count.to_le_bytes());
        h
    }
}

/// FNV-1a digest of the input read set: names, bases and quality scores,
/// in order, with the read count folded in last. Checkpoints from a
/// different input never resume this run.
pub fn input_digest(reads: &[Read]) -> u64 {
    let mut digest = InputDigest::new();
    for read in reads {
        digest.observe(read);
    }
    digest.finish()
}

/// Record 1 of every checkpoint: the cumulative deterministic metrics at
/// this phase boundary (scheduling- and checkpoint-lifecycle metrics
/// excluded, exactly like a logical snapshot).
fn metrics_record(rec: &Recorder) -> Vec<u8> {
    rec.snapshot()
        .without_scheduling()
        .without_checkpointing()
        .without_memory()
        .without_ooc()
        .to_json()
        .into_bytes()
}

/// Restores an embedded metrics snapshot into the run's recorder. Returns
/// `false` when the blob does not parse — the checkpoint is then rejected
/// as a whole.
fn restore_metrics_record(rec: &Recorder, bytes: &[u8]) -> bool {
    if !rec.is_enabled() {
        return true;
    }
    let Ok(text) = std::str::from_utf8(bytes) else {
        return false;
    };
    match MetricsSnapshot::from_json(text) {
        Ok(snapshot) => {
            rec.restore_metrics(&snapshot);
            true
        }
        Err(_) => false,
    }
}

fn reject(rec: &Recorder, phase: CkptPhase) {
    rec.add("ckpt.rejected", 1);
    rec.instant("ckpt", "ckpt.rejected", &[("phase", i64::from(phase.id()))]);
}

/// Payload (record 0) + metrics (record 1) decode of a verified
/// checkpoint. Any shape or decode failure rejects the whole file.
fn decode_records<T: Codec>(rec: &Recorder, records: &[Vec<u8>]) -> Option<T> {
    if records.len() != 2 {
        return None;
    }
    let value = decode_from_slice::<T>(&records[0]).ok()?;
    restore_metrics_record(rec, &records[1]).then_some(value)
}

/// Loads one phase's checkpoint: `Some(payload)` only when the file
/// exists, verifies, and decodes; every other outcome means "recompute".
fn load_phase<T: Codec>(
    store: &mut Option<CheckpointStore>,
    rec: &Recorder,
    resume: bool,
    phase: CkptPhase,
) -> Option<T> {
    if !resume {
        return None;
    }
    let store = store.as_mut()?;
    match store.load(phase.id(), phase.name()) {
        LoadOutcome::Missing => None,
        LoadOutcome::Rejected(_) => {
            reject(rec, phase);
            None
        }
        LoadOutcome::Loaded(records) => match decode_records(rec, &records) {
            Some(value) => {
                rec.add("ckpt.loaded", 1);
                rec.instant("ckpt", "ckpt.loaded", &[("phase", i64::from(phase.id()))]);
                // When the write happened earlier in this same process
                // (same recorder), close its causal edge here: the trace
                // then shows the resumed phase following from the
                // checkpoint-write span. A fresh process has no parked
                // flow and emits nothing — never a dangling edge.
                if let Some(flow) = rec.flow_take(u64::from(phase.id())) {
                    rec.flow_end(flow, &[("phase", i64::from(phase.id()))]);
                }
                Some(value)
            }
            None => {
                reject(rec, phase);
                None
            }
        },
    }
}

/// Saves one phase's checkpoint. A write failure degrades the store (all
/// later saves become no-ops) and emits exactly one `ckpt.degraded` event;
/// the assembly itself continues either way.
fn save_phase<T: Codec>(
    store: &mut Option<CheckpointStore>,
    rec: &Recorder,
    phase: CkptPhase,
    value: &T,
) {
    // Every phase boundary passes through here (store or not): sample the
    // memory high-water mark so the `mem.peak_rss_bytes` gauge tracks the
    // run phase by phase.
    rec.sample_peak_rss();
    let Some(store) = store.as_mut() else {
        return;
    };
    let records = vec![encode_to_vec(value), metrics_record(rec)];
    match store.save(phase.id(), phase.name(), records) {
        Ok(true) => {
            rec.add("ckpt.saved", 1);
            // Park a causal edge out of the write: an in-process resume
            // of this phase will pick it up and close the arrow.
            let flow = rec.flow_start("ckpt", "ckpt.save", &[("phase", i64::from(phase.id()))]);
            rec.flow_park(u64::from(phase.id()), flow);
        }
        Ok(false) => {}
        Err(_) => {
            rec.add("ckpt.degraded", 1);
            rec.instant("ckpt", "ckpt.degraded", &[("phase", i64::from(phase.id()))]);
        }
    }
}

/// Adapter wiring the distributed driver's phase boundaries
/// ([`fc_dist::DistCheckpoint`]) into the run's [`CheckpointStore`].
struct StoreDistCheckpoint<'a> {
    store: &'a mut Option<CheckpointStore>,
    rec: &'a Recorder,
    resume: bool,
    stop_after: Option<CkptPhase>,
    stopped_at: Option<CkptPhase>,
}

impl DistCheckpoint for StoreDistCheckpoint<'_> {
    fn load(&mut self) -> Option<(PhaseId, DistPhaseState)> {
        if !self.resume {
            return None;
        }
        // Latest distributed phase wins; earlier ones are subsumed.
        for &dist_phase in PhaseId::ALL.iter().rev() {
            let phase = CkptPhase::from_dist(dist_phase);
            if let Some(state) = load_phase::<DistPhaseState>(self.store, self.rec, true, phase) {
                return Some((dist_phase, state));
            }
        }
        None
    }

    fn save(&mut self, dist_phase: PhaseId, state: &DistPhaseState) -> bool {
        let phase = CkptPhase::from_dist(dist_phase);
        save_phase(self.store, self.rec, phase, state);
        if self.stop_after == Some(phase) {
            self.stopped_at = Some(phase);
            return false;
        }
        true
    }
}

/// The alignment phase's checkpoint payload: every overlap plus the
/// per-subset-pair stats, both in canonical `(j, i ≤ j)` pair order.
pub(crate) type AlignmentCkpt = (Vec<Overlap>, Vec<(usize, usize, PairStats)>);

impl FocusAssembler {
    /// The full pipeline with durable checkpoints at every phase boundary.
    ///
    /// Behaves exactly like [`assemble`](FocusAssembler::assemble) — same
    /// contigs, same report, bit for bit — plus:
    ///
    /// * with [`CheckpointOptions::dir`] set, a verified checkpoint is
    ///   written atomically after each phase (temp file + `sync` + rename);
    /// * with [`CheckpointOptions::resume`], phases whose checkpoints
    ///   verify are skipped and their embedded metrics restored; anything
    ///   corrupt, mismatched or missing is recomputed;
    /// * with [`CheckpointOptions::stop_after`], the run stops right after
    ///   that phase's checkpoint — the chaos harness's crash point.
    pub fn assemble_with_checkpoints(
        &self,
        reads: &[Read],
        opts: &CheckpointOptions,
    ) -> Result<AssemblyOutcome, FocusError> {
        let run_started = Instant::now();
        let rec = self.recorder();
        let config = *self.config();
        let _span = rec.span_args(
            "pipeline",
            "pipeline.assemble_checkpointed",
            &[("reads", reads.len() as i64)],
        );
        let mut store = opts.dir.as_ref().map(|dir| {
            CheckpointStore::with_faults(
                dir.clone(),
                config_fingerprint(&config),
                input_digest(reads),
                opts.fs_faults.clone(),
            )
        });
        let resume = opts.resume;
        let profile = PipelineProfile::default();
        let pool = Pool::new_obs(config.threads, rec);
        let mut budget = RunBudget::new(&config);
        budget.charge(
            rec,
            "input-reads",
            reads.iter().map(|r| r.approx_bytes() as u64).sum(),
        )?;

        let store_reads =
            match load_phase::<ReadStore>(&mut store, rec, resume, CkptPhase::Preprocess) {
                Some(s) => s,
                None => {
                    let s = ReadStore::preprocess(reads, &config.trim)?;
                    if s.is_empty() {
                        return Err(FocusError::EmptyInput);
                    }
                    if rec.is_enabled() {
                        rec.add("pipeline.reads_in", reads.len() as u64);
                        rec.add("pipeline.reads_kept", s.len() as u64);
                    }
                    save_phase(&mut store, rec, CkptPhase::Preprocess, &s);
                    s
                }
            };
        budget.charge(rec, "read-store", store_reads.approx_bytes() as u64)?;
        if opts.stop_after == Some(CkptPhase::Preprocess) {
            return Ok(AssemblyOutcome::Stopped(CkptPhase::Preprocess));
        }

        self.finish_checkpointed(
            &store_reads,
            &mut store,
            opts,
            &pool,
            profile,
            run_started,
            &mut budget,
            &mut |sr, pool, profile| {
                let overlapper = Overlapper::new(sr, config.overlap)?;
                let subsets = sr.split_subsets(config.subsets);
                let started = Instant::now();
                let out = overlapper.overlap_all_obs(&subsets, pool, rec);
                let s = subsets.len();
                profile.record(
                    "alignment",
                    started.elapsed(),
                    s + s * (s + 1) / 2,
                    pool.threads(),
                );
                Ok(out)
            },
        )
    }

    /// Everything after read preprocessing: alignment through contig
    /// emission, checkpointing each boundary. Shared by the in-core
    /// checkpointed path above and the out-of-core path ([`crate::ooc`]) —
    /// only how the alignment payload is computed differs, so that is the
    /// `align` callback (called when no valid alignment checkpoint
    /// exists).
    #[allow(clippy::too_many_arguments)] // one shared tail beats two drifting copies
    pub(crate) fn finish_checkpointed(
        &self,
        store_reads: &ReadStore,
        store: &mut Option<CheckpointStore>,
        opts: &CheckpointOptions,
        pool: &Pool,
        mut profile: PipelineProfile,
        run_started: Instant,
        budget: &mut RunBudget,
        align: &mut dyn FnMut(
            &ReadStore,
            &Pool,
            &mut PipelineProfile,
        ) -> Result<AlignmentCkpt, FocusError>,
    ) -> Result<AssemblyOutcome, FocusError> {
        let rec = self.recorder();
        let config = *self.config();
        let resume = opts.resume;
        let (overlaps, _pair_stats) =
            match load_phase::<AlignmentCkpt>(store, rec, resume, CkptPhase::Alignment) {
                Some(v) => v,
                None => {
                    let out = align(store_reads, pool, &mut profile)?;
                    save_phase(store, rec, CkptPhase::Alignment, &out);
                    out
                }
            };
        budget.charge(
            rec,
            "overlaps",
            (overlaps.len() * std::mem::size_of::<Overlap>()) as u64,
        )?;
        if opts.stop_after == Some(CkptPhase::Alignment) {
            return Ok(AssemblyOutcome::Stopped(CkptPhase::Alignment));
        }

        // The level-0 overlap graph is cheap and fully determined by the
        // store and the overlaps, so it is always rebuilt, never stored.
        let graph = OverlapGraph::build(store_reads, &overlaps);

        let multilevel =
            match load_phase::<MultilevelSet>(store, rec, resume, CkptPhase::Coarsen) {
                Some(m) => m,
                None => {
                    let m =
                        MultilevelSet::build_obs(graph.undirected.clone(), &config.coarsen, rec);
                    save_phase(store, rec, CkptPhase::Coarsen, &m);
                    m
                }
            };
        if opts.stop_after == Some(CkptPhase::Coarsen) {
            return Ok(AssemblyOutcome::Stopped(CkptPhase::Coarsen));
        }

        let hybrid = match load_phase::<HybridSet>(store, rec, resume, CkptPhase::Hybrid) {
            Some(h) => h,
            None => {
                let h = HybridSet::build_obs(&multilevel, &graph, store_reads, &config.layout, rec);
                save_phase(store, rec, CkptPhase::Hybrid, &h);
                h
            }
        };
        if opts.stop_after == Some(CkptPhase::Hybrid) {
            return Ok(AssemblyOutcome::Stopped(CkptPhase::Hybrid));
        }

        let partition =
            match load_phase::<PartitionResult>(store, rec, resume, CkptPhase::Partition) {
                Some(p) => p,
                None => {
                    let started = Instant::now();
                    let p = partition_graph_set_obs(
                        &hybrid.set,
                        &PartitionConfig::new(config.partitions, config.partition_seed)
                            .with_threads(config.threads),
                        rec,
                    )?;
                    profile.record(
                        "partition",
                        started.elapsed(),
                        p.tasks.len(),
                        pool.threads(),
                    );
                    save_phase(store, rec, CkptPhase::Partition, &p);
                    p
                }
            };
        if opts.stop_after == Some(CkptPhase::Partition) {
            return Ok(AssemblyOutcome::Stopped(CkptPhase::Partition));
        }

        let k = config.partitions;
        let parts = partition.finest().to_vec();
        let mut dh = if config.consensus {
            DistributedHybrid::with_consensus(&hybrid, store_reads, parts, k)
        } else {
            DistributedHybrid::new(&hybrid, store_reads, parts, k)
        }?;
        let plan = match &config.fault {
            Some(inj) => FaultPlan::random(inj.seed, k, &inj.rates),
            None => FaultPlan::none(),
        };
        let mut dist_config = config.dist;
        dist_config.threads = config.threads;
        let mut ckpt = StoreDistCheckpoint {
            store,
            rec,
            resume,
            stop_after: opts.stop_after,
            stopped_at: None,
        };
        let started = Instant::now();
        let Some(report) = dh.run_with_faults_ckpt_obs(&dist_config, plan, rec, &mut ckpt)? else {
            let phase = ckpt.stopped_at.ok_or(FocusError::Stage {
                stage: "distributed",
                message: "the distributed stage stopped without a crash point".to_string(),
            })?;
            return Ok(AssemblyOutcome::Stopped(phase));
        };
        profile.record("distributed", started.elapsed(), 4 * k, pool.threads());

        let mut contigs = Vec::with_capacity(report.paths.len());
        for p in &report.paths {
            contigs.push(path_contig(&dh, p)?);
        }
        if config.dedup_rc {
            contigs = dedup_reverse_complements(contigs);
        }
        let stats = AssemblyStats::from_contigs(&contigs);
        if rec.is_enabled() {
            rec.add("pipeline.contigs", contigs.len() as u64);
            rec.gauge("pipeline.n50", stats.n50 as i64);
            rec.gauge("pipeline.total_bases", stats.total_bases as i64);
        }
        profile.run_wall = run_started.elapsed();
        Ok(AssemblyOutcome::Completed(AssemblyResult {
            contigs,
            stats,
            partition,
            report,
            profile,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::{Base, DnaString};

    fn genome(len: usize, seed: u64) -> DnaString {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Base::from_code((state >> 5) as u8 & 3)
            })
            .collect()
    }

    fn tiled_reads(genome: &DnaString, read_len: usize, stride: usize) -> Vec<Read> {
        let mut reads = Vec::new();
        let mut start = 0;
        while start + read_len <= genome.len() {
            reads.push(Read::new(
                format!("r{start}"),
                genome.slice(start, start + read_len),
            ));
            start += stride;
        }
        reads
    }

    fn quick_config(k: usize) -> FocusConfig {
        let mut c = FocusConfig {
            partitions: k,
            ..Default::default()
        };
        c.trim.min_read_len = 30;
        c.overlap.min_overlap_len = 40;
        c
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc-focus-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn completed(outcome: AssemblyOutcome) -> AssemblyResult {
        match outcome {
            AssemblyOutcome::Completed(r) => r,
            AssemblyOutcome::Stopped(p) => panic!("unexpected stop after {p:?}"),
        }
    }

    #[test]
    fn phase_ids_are_their_position_in_all() {
        for (i, phase) in CkptPhase::ALL.iter().enumerate() {
            assert_eq!(phase.id() as usize, i);
            assert_eq!(CkptPhase::parse(phase.name()), Some(*phase));
        }
        assert_eq!(CkptPhase::parse("nonsense"), None);
    }

    #[test]
    fn fingerprints_ignore_threads_and_observability_but_not_parameters() {
        let mut a = quick_config(4);
        let mut b = quick_config(4);
        b.threads = 7;
        b.observability = ObsOptions::logical();
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
        a.overlap.min_overlap_len += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn input_digest_sees_names_bases_and_qualities() {
        let g = genome(300, 1);
        let reads = tiled_reads(&g, 100, 50);
        let base = input_digest(&reads);
        let mut renamed = reads.clone();
        renamed[0].name.push('x');
        assert_ne!(input_digest(&renamed), base);
        let mut requalified = reads.clone();
        requalified[0].qual = Some(fc_seq::QualityScores::from_phred(vec![30; 100]));
        assert_ne!(input_digest(&requalified), base);
        assert_eq!(input_digest(&reads), base);
    }

    #[test]
    fn checkpointed_run_matches_plain_assemble() {
        let g = genome(2500, 23);
        let reads = tiled_reads(&g, 100, 50);
        let assembler = FocusAssembler::new(quick_config(4)).unwrap();
        let plain = assembler.assemble(&reads).unwrap();
        let dir = temp_dir("match-plain");
        let opts = CheckpointOptions::in_dir(&dir);
        let ckpt = completed(assembler.assemble_with_checkpoints(&reads, &opts).unwrap());
        assert_eq!(ckpt.contigs, plain.contigs);
        assert_eq!(ckpt.report.paths, plain.report.paths);
        // All nine phases checkpointed + a manifest.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, CkptPhase::ALL.len() + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_checkpointed_runs_sharing_a_dir_agree_with_plain_assemble() {
        // Two assemblies checkpointing into the same directory at once —
        // the serve layer's restart path can race a resumed job against a
        // retried one. Writers must never tear each other's files: both
        // runs finish, both match the plain pipeline, and the directory
        // still verifies for a third, resuming run.
        let g = genome(2500, 31);
        let reads = tiled_reads(&g, 100, 50);
        let assembler = FocusAssembler::new(quick_config(4)).unwrap();
        let plain = assembler.assemble(&reads).unwrap();
        let dir = temp_dir("concurrent-share");
        let opts = CheckpointOptions::in_dir(&dir);
        let results: Vec<AssemblyResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let (assembler, reads, opts) = (&assembler, &reads, &opts);
                    scope.spawn(move || {
                        completed(assembler.assemble_with_checkpoints(reads, opts).unwrap())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results {
            assert_eq!(r.contigs, plain.contigs);
        }
        // The directory the race left behind is fully usable for resume.
        let mut resume_opts = CheckpointOptions::in_dir(&dir);
        resume_opts.resume = true;
        let resumed = completed(
            assembler
                .assemble_with_checkpoints(&reads, &resume_opts)
                .unwrap(),
        );
        assert_eq!(resumed.contigs, plain.contigs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_and_resume_at_every_phase_is_bit_identical() {
        let g = genome(2500, 29);
        let reads = tiled_reads(&g, 100, 50);
        let assembler = FocusAssembler::new(quick_config(4)).unwrap();
        let clean = assembler.assemble(&reads).unwrap();
        for &phase in &CkptPhase::ALL {
            let dir = temp_dir(phase.name());
            let mut opts = CheckpointOptions::in_dir(&dir);
            opts.stop_after = Some(phase);
            match assembler.assemble_with_checkpoints(&reads, &opts).unwrap() {
                AssemblyOutcome::Stopped(p) => assert_eq!(p, phase),
                AssemblyOutcome::Completed(_) => panic!("{} did not stop", phase.name()),
            }
            opts.stop_after = None;
            opts.resume = true;
            let resumed = completed(assembler.assemble_with_checkpoints(&reads, &opts).unwrap());
            assert_eq!(resumed.contigs, clean.contigs, "after {}", phase.name());
            assert_eq!(resumed.report.paths, clean.report.paths);
            assert_eq!(resumed.report.fault, clean.report.fault);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn resume_without_checkpoints_just_runs() {
        let g = genome(2000, 31);
        let reads = tiled_reads(&g, 100, 50);
        let assembler = FocusAssembler::new(quick_config(2)).unwrap();
        let dir = temp_dir("cold-resume");
        let mut opts = CheckpointOptions::in_dir(&dir);
        opts.resume = true;
        let result = completed(assembler.assemble_with_checkpoints(&reads, &opts).unwrap());
        assert!(!result.contigs.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_dir_means_no_checkpoint_io() {
        let g = genome(2000, 37);
        let reads = tiled_reads(&g, 100, 50);
        let assembler = FocusAssembler::new(quick_config(2)).unwrap();
        let plain = assembler.assemble(&reads).unwrap();
        let opts = CheckpointOptions::default();
        let result = completed(assembler.assemble_with_checkpoints(&reads, &opts).unwrap());
        assert_eq!(result.contigs, plain.contigs);
    }

    #[test]
    fn unwritable_dir_degrades_but_the_assembly_finishes() {
        let g = genome(2000, 41);
        let reads = tiled_reads(&g, 100, 50);
        let mut config = quick_config(2);
        config.observability = ObsOptions::logical();
        let assembler = FocusAssembler::new(config).unwrap();
        let opts = CheckpointOptions::in_dir("/proc/fc-focus-cannot-exist/ckpt");
        let result = completed(assembler.assemble_with_checkpoints(&reads, &opts).unwrap());
        assert!(!result.contigs.is_empty());
        let snapshot = assembler.recorder().snapshot();
        assert_eq!(snapshot.counters.get("ckpt.degraded"), Some(&1));
        assert_eq!(snapshot.counters.get("ckpt.saved"), None);
        // Exactly one warning event despite nine phase boundaries.
        let warnings = assembler
            .recorder()
            .events()
            .iter()
            .filter(|e| e.name == "ckpt.degraded")
            .count();
        assert_eq!(warnings, 1);
    }
}
