//! The six-stage Focus pipeline (paper §II).

use crate::config::{FocusConfig, FocusError};
use crate::ooc::RunBudget;
use crate::stats::{AssemblyStats, PipelineProfile};
use fc_align::{Overlap, Overlapper, PairStats, Pool};
use fc_dist::{AssemblyPath, DistributedHybrid, DistributedReport, FaultPlan};
use fc_graph::{HybridSet, MultilevelSet, NodeId, OverlapGraph};
use fc_obs::Recorder;
use fc_partition::{partition_graph_set_obs, PartitionConfig, PartitionResult};
use fc_seq::{DnaString, Read, ReadStore};

/// The Focus assembler. Construct with a validated [`FocusConfig`], then
/// either [`assemble`](FocusAssembler::assemble) in one call or
/// [`prepare`](FocusAssembler::prepare) once and sweep partition counts with
/// [`assemble_prepared`](FocusAssembler::assemble_prepared).
#[derive(Debug, Clone)]
pub struct FocusAssembler {
    config: FocusConfig,
    recorder: Recorder,
}

/// The partition-independent intermediate artifacts (stages 1–5): the
/// preprocessed store, the verified overlaps, the level-0 overlap graph, the
/// multilevel graph set, and the hybrid graph set.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Preprocessed, strand-augmented reads.
    pub store: ReadStore,
    /// Verified overlap records.
    pub overlaps: Vec<Overlap>,
    /// Per-subset-pair alignment work statistics.
    pub pair_stats: Vec<(usize, usize, PairStats)>,
    /// Level-0 overlap graph.
    pub graph: OverlapGraph,
    /// Multilevel graph set `{G0 … Gn}`.
    pub multilevel: MultilevelSet,
    /// Hybrid graph set `{G'0 … G'n}`.
    pub hybrid: HybridSet,
    /// Wall-clock profile of the preparation stages (alignment fan-out).
    pub profile: PipelineProfile,
}

/// A complete assembly outcome.
#[derive(Debug, Clone)]
pub struct AssemblyResult {
    /// The assembled contigs.
    pub contigs: Vec<DnaString>,
    /// Contig statistics (Table III).
    pub stats: AssemblyStats,
    /// Partitioning outcome on the hybrid set.
    pub partition: PartitionResult,
    /// Distributed-stage report (timings, removal counts, paths).
    pub report: DistributedReport,
    /// Wall-clock profile of all parallel phases (preparation's phases
    /// first, then partitioning and the distributed stage).
    pub profile: PipelineProfile,
}

impl FocusAssembler {
    /// Creates an assembler after validating `config`.
    pub fn new(config: FocusConfig) -> Result<FocusAssembler, FocusError> {
        config.validate()?;
        let recorder = Recorder::new(config.observability);
        Ok(FocusAssembler { config, recorder })
    }

    /// The configuration in use.
    pub fn config(&self) -> &FocusConfig {
        &self.config
    }

    /// The run's recorder: disabled (every record site is a single branch)
    /// unless [`FocusConfig::observability`] enables it. Snapshot or drain
    /// it after [`assemble`](FocusAssembler::assemble) to get metrics and
    /// trace events.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Runs stages 1–5: preprocessing, parallel alignment, overlap graph,
    /// multilevel coarsening, hybrid-set construction.
    pub fn prepare(&self, reads: &[Read]) -> Result<Prepared, FocusError> {
        let run_started = std::time::Instant::now();
        let rec = &self.recorder;
        let _span = rec.span_args(
            "pipeline",
            "pipeline.prepare",
            &[("reads", reads.len() as i64)],
        );
        let mut budget = RunBudget::new(&self.config);
        budget.charge(
            rec,
            "input-reads",
            reads.iter().map(|r| r.approx_bytes() as u64).sum(),
        )?;
        let store = ReadStore::preprocess(reads, &self.config.trim)?;
        if store.is_empty() {
            return Err(FocusError::EmptyInput);
        }
        budget.charge(rec, "read-store", store.approx_bytes() as u64)?;
        if rec.is_enabled() {
            rec.add("pipeline.reads_in", reads.len() as u64);
            rec.add("pipeline.reads_kept", store.len() as u64);
        }
        let overlapper = Overlapper::new(&store, self.config.overlap)?;
        let subsets = store.split_subsets(self.config.subsets);
        let pool = Pool::new_obs(self.config.threads, rec);
        let mut profile = PipelineProfile::default();
        let started = std::time::Instant::now();
        let (overlaps, pair_stats) = overlapper.overlap_all_obs(&subsets, &pool, rec);
        budget.charge(
            rec,
            "overlaps",
            (overlaps.len() * std::mem::size_of::<Overlap>()) as u64,
        )?;
        let s = subsets.len();
        profile.record(
            "alignment",
            started.elapsed(),
            s + s * (s + 1) / 2, // index builds + subset pairs
            pool.threads(),
        );
        rec.sample_peak_rss();

        let graph = OverlapGraph::build(&store, &overlaps);
        let multilevel =
            MultilevelSet::build_obs(graph.undirected.clone(), &self.config.coarsen, rec);
        let hybrid = HybridSet::build_obs(&multilevel, &graph, &store, &self.config.layout, rec);
        rec.sample_peak_rss();
        profile.run_wall = run_started.elapsed();
        Ok(Prepared {
            store,
            overlaps,
            pair_stats,
            graph,
            multilevel,
            hybrid,
            profile,
        })
    }

    /// Runs stage 6 (partitioning + distributed trimming/traversal + contig
    /// construction) on prepared artifacts with `k` partitions.
    pub fn assemble_prepared(
        &self,
        prepared: &Prepared,
        k: usize,
    ) -> Result<AssemblyResult, FocusError> {
        let run_started = std::time::Instant::now();
        let rec = &self.recorder;
        let _span = rec.span_args("pipeline", "pipeline.assemble", &[("k", k as i64)]);
        let pool = Pool::new_obs(self.config.threads, rec);
        let mut profile = prepared.profile.clone();
        let started = std::time::Instant::now();
        let partition = partition_graph_set_obs(
            &prepared.hybrid.set,
            &PartitionConfig::new(k, self.config.partition_seed).with_threads(self.config.threads),
            rec,
        )?;
        profile.record(
            "partition",
            started.elapsed(),
            partition.tasks.len(),
            pool.threads(),
        );
        rec.sample_peak_rss();

        let parts = partition.finest().to_vec();
        let mut dh = if self.config.consensus {
            DistributedHybrid::with_consensus(&prepared.hybrid, &prepared.store, parts, k)
        } else {
            DistributedHybrid::new(&prepared.hybrid, &prepared.store, parts, k)
        }?;
        let plan = match &self.config.fault {
            Some(inj) => FaultPlan::random(inj.seed, k, &inj.rates),
            None => FaultPlan::none(),
        };
        let mut dist_config = self.config.dist;
        dist_config.threads = self.config.threads;
        let started = std::time::Instant::now();
        let report = dh.run_with_faults_obs(&dist_config, plan, rec)?;
        profile.record("distributed", started.elapsed(), 4 * k, pool.threads());
        rec.sample_peak_rss();

        let mut contigs = Vec::with_capacity(report.paths.len());
        for p in &report.paths {
            contigs.push(path_contig(&dh, p)?);
        }
        if self.config.dedup_rc {
            contigs = dedup_reverse_complements(contigs);
        }
        let stats = AssemblyStats::from_contigs(&contigs);
        if rec.is_enabled() {
            rec.add("pipeline.contigs", contigs.len() as u64);
            rec.gauge("pipeline.n50", stats.n50 as i64);
            rec.gauge("pipeline.total_bases", stats.total_bases as i64);
        }
        profile.run_wall += run_started.elapsed();
        Ok(AssemblyResult {
            contigs,
            stats,
            partition,
            report,
            profile,
        })
    }

    /// The full pipeline with the configured partition count.
    pub fn assemble(&self, reads: &[Read]) -> Result<AssemblyResult, FocusError> {
        let prepared = self.prepare(reads)?;
        self.assemble_prepared(&prepared, self.config.partitions)
    }
}

/// Merges the contigs along a maximal path into one sequence using the
/// hybrid edges' contig-level shifts (first-wins merging, as within
/// clusters). A path step without a connecting edge means traversal's
/// post-condition was violated upstream; it surfaces as a typed error
/// rather than a panic.
pub(crate) fn path_contig(
    dh: &DistributedHybrid,
    path: &AssemblyPath,
) -> Result<DnaString, FocusError> {
    let first: NodeId = path.nodes[0];
    let mut seq = dh.contig(first).clone();
    let mut covered_to = seq.len() as i64;
    let mut offset = 0i64;
    for w in path.nodes.windows(2) {
        let Some(edge) = dh.graph.edge(w[0], w[1]) else {
            return Err(FocusError::Dist(fc_dist::DistError::PathCoverViolation(
                format!("path step {}->{} has no edge", w[0], w[1]),
            )));
        };
        offset += edge.shift as i64;
        let next = dh.contig(w[1]);
        let from = (covered_to - offset).max(0);
        if from < next.len() as i64 {
            seq.extend_from(&next.slice(from as usize, next.len()));
            covered_to = covered_to.max(offset + next.len() as i64);
        }
    }
    Ok(seq)
}

/// Keeps one representative per exact reverse-complement pair: a contig is
/// kept when it is lexicographically no greater than its reverse complement
/// (ties, i.e. palindromes, are kept once).
pub(crate) fn dedup_reverse_complements(contigs: Vec<DnaString>) -> Vec<DnaString> {
    use std::collections::HashSet;
    let mut canonical_seen: HashSet<Vec<u8>> = HashSet::new();
    let mut out = Vec::with_capacity(contigs.len() / 2 + 1);
    for contig in contigs {
        let fwd = contig.to_ascii();
        let rc = contig.reverse_complement().to_ascii();
        let canonical = if fwd <= rc { fwd } else { rc };
        if canonical_seen.insert(canonical) {
            out.push(contig);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::Base;

    fn genome(len: usize, seed: u64) -> DnaString {
        // Small deterministic generator (xorshift) to avoid a rand dep here.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Base::from_code((state >> 5) as u8 & 3)
            })
            .collect()
    }

    /// Error-free tiling reads over a genome, as FASTA-style reads.
    fn tiled_reads(genome: &DnaString, read_len: usize, stride: usize) -> Vec<Read> {
        let mut reads = Vec::new();
        let mut start = 0;
        while start + read_len <= genome.len() {
            reads.push(Read::new(
                format!("r{start}"),
                genome.slice(start, start + read_len),
            ));
            start += stride;
        }
        reads
    }

    fn quick_config(k: usize) -> FocusConfig {
        let mut c = FocusConfig {
            partitions: k,
            ..Default::default()
        };
        c.trim.min_read_len = 30;
        c.overlap.min_overlap_len = 40;
        c
    }

    #[test]
    fn assembles_single_genome_into_covering_contigs() {
        let g = genome(3000, 7);
        let reads = tiled_reads(&g, 100, 40);
        let assembler = FocusAssembler::new(quick_config(4)).unwrap();
        let result = assembler.assemble(&reads).unwrap();
        assert!(!result.contigs.is_empty());
        // The longest contig should recover a large fraction of the genome
        // (both strands assemble, so expect ~genome length).
        assert!(
            result.stats.max_contig as f64 >= 0.9 * g.len() as f64,
            "max contig {} too short for genome {}",
            result.stats.max_contig,
            g.len()
        );
        // The assembly is strand-duplicated: total ≈ 2× genome.
        assert!(result.stats.total_bases >= g.len());
    }

    #[test]
    fn dedup_rc_halves_strand_duplicates() {
        let g = genome(2000, 21);
        let reads = tiled_reads(&g, 100, 40);
        let mut config = quick_config(4);
        let plain = FocusAssembler::new(config)
            .unwrap()
            .assemble(&reads)
            .unwrap();
        config.dedup_rc = true;
        let deduped = FocusAssembler::new(config)
            .unwrap()
            .assemble(&reads)
            .unwrap();
        assert!(deduped.stats.num_contigs <= plain.stats.num_contigs);
    }

    #[test]
    fn partition_count_preserves_contig_stats() {
        // Table III's property: assembly quality is partition-invariant.
        let g = genome(2500, 3);
        let reads = tiled_reads(&g, 100, 50);
        let assembler = FocusAssembler::new(quick_config(2)).unwrap();
        let prepared = assembler.prepare(&reads).unwrap();
        let r2 = assembler.assemble_prepared(&prepared, 2).unwrap();
        let r8 = assembler.assemble_prepared(&prepared, 8).unwrap();
        assert_eq!(r2.stats.max_contig, r8.stats.max_contig);
        assert_eq!(r2.stats.total_bases, r8.stats.total_bases);
        // Contig sets must be identical after joining.
        let mut a: Vec<String> = r2.contigs.iter().map(|c| c.to_string()).collect();
        let mut b: Vec<String> = r8.contigs.iter().map(|c| c.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn fault_injected_assembly_reproduces_clean_contigs() {
        use crate::config::FaultInjection;
        use fc_dist::FaultRates;
        let g = genome(2500, 11);
        let reads = tiled_reads(&g, 100, 50);
        let clean = FocusAssembler::new(quick_config(4))
            .unwrap()
            .assemble(&reads)
            .unwrap();
        let mut config = quick_config(4);
        config.fault = Some(FaultInjection {
            seed: 42,
            rates: FaultRates {
                crash: 0.2,
                drop: 0.3,
                ..Default::default()
            },
        });
        let faulty = FocusAssembler::new(config)
            .unwrap()
            .assemble(&reads)
            .unwrap();
        let norm = |r: &AssemblyResult| {
            let mut v: Vec<String> = r.contigs.iter().map(|c| c.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(
            norm(&clean),
            norm(&faulty),
            "faults must not change the assembly"
        );
        // Same seed ⇒ bit-identical fault report.
        let again = FocusAssembler::new(config)
            .unwrap()
            .assemble(&reads)
            .unwrap();
        assert_eq!(faulty.report.fault, again.report.fault);
    }

    #[test]
    fn threaded_assembly_is_bit_identical_to_serial() {
        let g = genome(2500, 5);
        let reads = tiled_reads(&g, 100, 50);
        let mut config = quick_config(4);
        config.threads = 1;
        let serial = FocusAssembler::new(config)
            .unwrap()
            .assemble(&reads)
            .unwrap();
        for threads in [2usize, 4, 8] {
            config.threads = threads;
            let pooled = FocusAssembler::new(config)
                .unwrap()
                .assemble(&reads)
                .unwrap();
            // Contigs in order (no sorting), partition assignment, and the
            // traversal paths must all match the serial run exactly.
            assert_eq!(pooled.contigs, serial.contigs, "{threads} threads");
            assert_eq!(
                pooled.partition.parts_per_level, serial.partition.parts_per_level,
                "{threads} threads"
            );
            assert_eq!(
                pooled.report.paths, serial.report.paths,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn profile_records_the_three_parallel_phases() {
        let g = genome(2000, 9);
        let reads = tiled_reads(&g, 100, 50);
        let mut config = quick_config(4);
        config.threads = 2;
        let result = FocusAssembler::new(config)
            .unwrap()
            .assemble(&reads)
            .unwrap();
        let names: Vec<&str> = result.profile.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["alignment", "partition", "distributed"]);
        for phase in &result.profile.phases {
            assert_eq!(phase.threads, 2);
            assert!(phase.tasks > 0);
        }
        assert!(result.profile.total_wall() >= result.profile.phases[0].wall);
    }

    #[test]
    fn run_wall_covers_at_least_the_recorded_phases_it_contains() {
        let g = genome(2000, 13);
        let reads = tiled_reads(&g, 100, 50);
        let result = FocusAssembler::new(quick_config(4))
            .unwrap()
            .assemble(&reads)
            .unwrap();
        // run_wall is measured end-to-end around the whole pipeline, so it
        // must dominate every individual phase (each phase interval lies
        // inside the run) — the phase *sum* may legitimately differ.
        for phase in &result.profile.phases {
            assert!(
                result.profile.run_wall >= phase.wall,
                "run_wall {:?} < phase {} {:?}",
                result.profile.run_wall,
                phase.name,
                phase.wall
            );
        }
        assert!(result.profile.run_wall > std::time::Duration::ZERO);
        let report = result.profile.human_report();
        assert!(report.contains("phase-sum"));
        assert!(report.contains("end-to-end"));
        assert!(report.contains("alignment"));
    }

    #[test]
    fn observability_snapshot_is_thread_invariant_end_to_end() {
        let g = genome(2000, 17);
        let reads = tiled_reads(&g, 100, 50);
        let mut config = quick_config(4);
        config.observability = fc_obs::ObsOptions::logical();
        config.threads = 1;
        let assembler = FocusAssembler::new(config).unwrap();
        assembler.assemble(&reads).unwrap();
        let baseline = assembler.recorder().snapshot_json();
        assert!(baseline.contains("align.candidates"));
        assert!(baseline.contains("coarsen.levels"));
        assert!(baseline.contains("partition.edge_cut_final"));
        assert!(baseline.contains("dist.messages"));
        for threads in [2usize, 4] {
            config.threads = threads;
            let assembler = FocusAssembler::new(config).unwrap();
            assembler.assemble(&reads).unwrap();
            assert_eq!(
                assembler.recorder().snapshot_json(),
                baseline,
                "metric snapshot differs at {threads} threads"
            );
        }
    }

    #[test]
    fn disabled_recorder_leaves_no_metrics_or_events() {
        let g = genome(1500, 19);
        let reads = tiled_reads(&g, 100, 50);
        let assembler = FocusAssembler::new(quick_config(2)).unwrap();
        assembler.assemble(&reads).unwrap();
        assert!(!assembler.recorder().is_enabled());
        assert!(assembler.recorder().snapshot().is_empty());
        assert!(assembler.recorder().events().is_empty());
    }

    #[test]
    fn empty_input_is_an_error() {
        let assembler = FocusAssembler::new(quick_config(2)).unwrap();
        assert!(matches!(
            assembler.assemble(&[]),
            Err(FocusError::EmptyInput)
        ));
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let c = FocusConfig {
            partitions: 3,
            ..Default::default()
        };
        assert!(FocusAssembler::new(c).is_err());
    }

    #[test]
    fn dedup_reverse_complements_unit() {
        let a: DnaString = "ACGTT".parse().unwrap();
        let rc = a.reverse_complement();
        let out = dedup_reverse_complements(vec![a.clone(), rc]);
        assert_eq!(out.len(), 1);
        // Palindrome kept once.
        let p: DnaString = "ACGT".parse().unwrap();
        let out = dedup_reverse_complements(vec![p.clone(), p.clone()]);
        assert_eq!(out.len(), 1);
        // Distinct contigs all kept.
        let b: DnaString = "AAAAC".parse().unwrap();
        let out = dedup_reverse_complements(vec![a, b]);
        assert_eq!(out.len(), 2);
    }
}
