//! Assembly statistics (Table III's columns) and wall-clock profiles of the
//! pipeline's parallel phases.

use fc_seq::DnaString;
use std::time::Duration;

/// Wall-clock measurement of one parallel pipeline phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Phase name (`"alignment"`, `"partition"`, `"distributed"`).
    pub name: &'static str,
    /// Wall-clock time of the phase.
    pub wall: Duration,
    /// Number of pool tasks the phase fanned out.
    pub tasks: usize,
    /// Worker threads the phase's pool resolved to.
    pub threads: usize,
    /// Peak resident-set size (`VmHWM`) sampled at the phase boundary;
    /// 0 where the platform exposes no cheap peak-RSS probe.
    pub peak_rss_bytes: u64,
}

/// Wall-clock profile of a pipeline run, one entry per parallel phase in
/// execution order. Profiles measure real elapsed time (they vary run to
/// run); everything else the pipeline produces is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineProfile {
    /// Recorded phases in execution order.
    pub phases: Vec<PhaseProfile>,
    /// End-to-end wall-clock of the run that produced this profile,
    /// measured once around the whole pipeline rather than summed from
    /// phases. Unlike [`PipelineProfile::total_wall`] it also covers the
    /// serial stages between the parallel phases, and it cannot
    /// double-count overlapping measurements.
    pub run_wall: Duration,
}

impl PipelineProfile {
    /// Records a phase measurement, sampling the process's peak RSS at
    /// this boundary (memory high-water marks are monotone, so the last
    /// phase's sample is the run's peak).
    pub fn record(&mut self, name: &'static str, wall: Duration, tasks: usize, threads: usize) {
        self.phases.push(PhaseProfile {
            name,
            wall,
            tasks,
            threads,
            peak_rss_bytes: fc_obs::peak_rss_bytes().unwrap_or(0),
        });
    }

    /// The run's peak RSS: the largest boundary sample (0 when the
    /// platform exposes none).
    pub fn peak_rss_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.peak_rss_bytes).max().unwrap_or(0)
    }

    /// Sum of all recorded phase wall-clocks. This is a *sum of intervals*:
    /// if two recorded phases ever overlapped (or one contained another),
    /// the shared time is counted twice. Use [`PipelineProfile::run_wall`]
    /// for the true end-to-end elapsed time; report both to make the
    /// difference (serial glue + any overlap) visible.
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// Human-readable report of the profile: one line per phase plus the
    /// phase-sum and end-to-end wall-clocks.
    pub fn human_report(&self) -> String {
        let mut out = String::from("pipeline profile\n");
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<12} {:>10.3?}  tasks {:<6} threads {}",
                p.name, p.wall, p.tasks, p.threads
            ));
            if p.peak_rss_bytes > 0 {
                out.push_str(&format!("  rss {:.1} MiB", mib(p.peak_rss_bytes)));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "  {:<12} {:>10.3?}\n  {:<12} {:>10.3?}\n",
            "phase-sum",
            self.total_wall(),
            "end-to-end",
            self.run_wall
        ));
        if self.peak_rss_bytes() > 0 {
            out.push_str(&format!(
                "  {:<12} {:>10.1} MiB\n",
                "peak-rss",
                mib(self.peak_rss_bytes())
            ));
        }
        out
    }
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Contig-level summary statistics of one assembly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssemblyStats {
    /// N50: the contig length such that contigs of at least this length
    /// cover half the total assembled bases.
    pub n50: usize,
    /// Longest contig (bases).
    pub max_contig: usize,
    /// Number of contigs.
    pub num_contigs: usize,
    /// Total assembled bases.
    pub total_bases: usize,
    /// Mean contig length.
    pub mean_len: f64,
}

impl AssemblyStats {
    /// Computes statistics from contig lengths.
    pub fn from_lengths(lengths: &[usize]) -> AssemblyStats {
        let num_contigs = lengths.len();
        let total_bases: usize = lengths.iter().sum();
        let max_contig = lengths.iter().copied().max().unwrap_or(0);
        let mean_len = if num_contigs == 0 {
            0.0
        } else {
            total_bases as f64 / num_contigs as f64
        };
        let n50 = n50(lengths);
        AssemblyStats {
            n50,
            max_contig,
            num_contigs,
            total_bases,
            mean_len,
        }
    }

    /// Computes statistics from contig sequences.
    pub fn from_contigs(contigs: &[DnaString]) -> AssemblyStats {
        let lengths: Vec<usize> = contigs.iter().map(DnaString::len).collect();
        AssemblyStats::from_lengths(&lengths)
    }
}

/// The N50 of a set of lengths: sort descending, accumulate until half the
/// total is covered; the length reached is the N50. Zero for empty input.
///
/// ```
/// assert_eq!(focus_core::stats::n50(&[10, 20, 30, 40]), 30);
/// ```
pub fn n50(lengths: &[usize]) -> usize {
    let total: usize = lengths.iter().sum();
    if total == 0 {
        return 0;
    }
    let mut sorted: Vec<usize> = lengths.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let half = total.div_ceil(2);
    let mut acc = 0usize;
    for len in sorted {
        acc += len;
        if acc >= half {
            return len;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn recorded_phases_sample_peak_rss_on_linux() {
        let mut p = PipelineProfile::default();
        p.record("alignment", Duration::from_millis(1), 4, 2);
        assert!(p.phases[0].peak_rss_bytes > 0);
        assert_eq!(p.peak_rss_bytes(), p.phases[0].peak_rss_bytes);
        let report = p.human_report();
        assert!(report.contains("rss "));
        assert!(report.contains("peak-rss"));
    }

    #[test]
    fn empty_profile_reports_no_peak_rss() {
        let p = PipelineProfile::default();
        assert_eq!(p.peak_rss_bytes(), 0);
        assert!(!p.human_report().contains("peak-rss"));
    }

    #[test]
    fn n50_textbook_example() {
        // Total 100; half 50; sorted desc: 40, 30, 20, 10 → 40+30=70 ≥ 50 at 30.
        assert_eq!(n50(&[10, 20, 30, 40]), 30);
    }

    #[test]
    fn n50_single_contig() {
        assert_eq!(n50(&[1234]), 1234);
    }

    #[test]
    fn n50_equal_contigs() {
        assert_eq!(n50(&[100, 100, 100, 100]), 100);
    }

    #[test]
    fn n50_empty_and_zero() {
        assert_eq!(n50(&[]), 0);
        assert_eq!(n50(&[0, 0]), 0);
    }

    #[test]
    fn n50_dominated_by_giant() {
        // Giant covers half on its own.
        assert_eq!(n50(&[1000, 10, 10, 10]), 1000);
    }

    #[test]
    fn stats_from_lengths() {
        let s = AssemblyStats::from_lengths(&[10, 20, 30, 40]);
        assert_eq!(s.num_contigs, 4);
        assert_eq!(s.total_bases, 100);
        assert_eq!(s.max_contig, 40);
        assert_eq!(s.n50, 30);
        assert!((s.mean_len - 25.0).abs() < 1e-12);
    }

    #[test]
    fn stats_from_contigs() {
        let contigs: Vec<DnaString> = vec!["ACGT".parse().unwrap(), "ACGTACGT".parse().unwrap()];
        let s = AssemblyStats::from_contigs(&contigs);
        assert_eq!(s.num_contigs, 2);
        assert_eq!(s.total_bases, 12);
        assert_eq!(s.max_contig, 8);
    }

    #[test]
    fn empty_assembly_stats() {
        let s = AssemblyStats::from_lengths(&[]);
        assert_eq!(s.n50, 0);
        assert_eq!(s.num_contigs, 0);
        assert_eq!(s.mean_len, 0.0);
    }
}
