//! Assembler configuration and error type.

use fc_align::OverlapConfig;
use fc_dist::DistributedConfig;
use fc_graph::{CoarsenConfig, LayoutConfig};
use fc_seq::TrimConfig;
use std::fmt;

/// Full configuration of the Focus pipeline, one field per stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FocusConfig {
    /// Read preprocessing (§II-A).
    pub trim: TrimConfig,
    /// Number of read subsets for the parallel aligner (§II-A/B).
    pub subsets: usize,
    /// Overlap detection thresholds (§II-B).
    pub overlap: OverlapConfig,
    /// Multilevel coarsening (§II-C).
    pub coarsen: CoarsenConfig,
    /// Cluster contiguity test for best representatives (§II-D).
    pub layout: LayoutConfig,
    /// Number of graph partitions (must be a power of two).
    pub partitions: usize,
    /// Seed for the partitioner's randomised choices.
    pub partition_seed: u64,
    /// Distributed trimming/traversal knobs (§V).
    pub dist: DistributedConfig,
    /// Build contig sequences by per-column majority consensus (error
    /// correcting) instead of first-wins merging. Lengths and all Table III
    /// statistics are identical either way; only base-level content
    /// differs.
    pub consensus: bool,
    /// Emit only the lexicographically canonical strand of each contig
    /// (exact reverse-complement duplicates are dropped). The read set is
    /// strand-augmented (§II-A), so assemblies naturally produce each contig
    /// on both strands; the paper reports raw counts, so this defaults off.
    pub dedup_rc: bool,
}

impl Default for FocusConfig {
    fn default() -> FocusConfig {
        FocusConfig {
            trim: TrimConfig::default(),
            subsets: 4,
            overlap: OverlapConfig::default(),
            coarsen: CoarsenConfig::default(),
            layout: LayoutConfig::default(),
            partitions: 16,
            partition_seed: 0xF0C05,
            dist: DistributedConfig::default(),
            consensus: true,
            dedup_rc: false,
        }
    }
}

impl FocusConfig {
    /// Validates cross-stage parameter sanity.
    pub fn validate(&self) -> Result<(), FocusError> {
        self.trim.validate().map_err(FocusError::Config)?;
        self.overlap.validate().map_err(FocusError::Config)?;
        if self.subsets == 0 {
            return Err(FocusError::Config("subsets must be > 0".to_string()));
        }
        if self.partitions == 0 || !self.partitions.is_power_of_two() {
            return Err(FocusError::Config(format!(
                "partitions must be a positive power of two, got {}",
                self.partitions
            )));
        }
        Ok(())
    }
}

/// Errors surfaced by the assembler pipeline.
#[derive(Debug)]
pub enum FocusError {
    /// Invalid configuration.
    Config(String),
    /// A pipeline stage failed.
    Stage {
        /// Stage name (e.g. `"preprocess"`).
        stage: &'static str,
        /// Underlying message.
        message: String,
    },
    /// The input read set produced no usable data (e.g. everything trimmed
    /// away).
    EmptyInput,
}

impl fmt::Display for FocusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FocusError::Config(m) => write!(f, "invalid configuration: {m}"),
            FocusError::Stage { stage, message } => write!(f, "stage {stage} failed: {message}"),
            FocusError::EmptyInput => write!(f, "no usable reads after preprocessing"),
        }
    }
}

impl std::error::Error for FocusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        FocusConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_partitions() {
        let mut c = FocusConfig { partitions: 12, ..Default::default() };
        assert!(c.validate().is_err());
        c.partitions = 0;
        assert!(c.validate().is_err());
        c.partitions = 32;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_subsets() {
        let c = FocusConfig { subsets: 0, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn error_display() {
        let e = FocusError::Stage { stage: "alignment", message: "boom".to_string() };
        assert_eq!(e.to_string(), "stage alignment failed: boom");
        assert!(FocusError::EmptyInput.to_string().contains("no usable reads"));
    }
}
