//! Assembler configuration and error type.

use fc_align::{AlignError, OverlapConfig};
use fc_dist::{DistError, DistributedConfig, FaultRates};
use fc_graph::{CoarsenConfig, GraphError, LayoutConfig};
use fc_obs::ObsOptions;
use fc_partition::PartitionError;
use fc_seq::{SeqError, TrimConfig};
use std::fmt;

/// Deterministic fault injection for the distributed stage. When set on
/// [`FocusConfig::fault`], a seeded [`FaultPlan`](fc_dist::FaultPlan) is
/// generated for each distributed run: same seed and rates ⇒ the identical
/// schedule of crashes, drops, delays and stragglers, and therefore a
/// bit-identical [`FaultReport`](fc_dist::FaultReport).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// Seed of the injection schedule.
    pub seed: u64,
    /// Per-(phase, rank) fault probabilities and magnitudes.
    pub rates: FaultRates,
}

/// Full configuration of the Focus pipeline, one field per stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FocusConfig {
    /// Read preprocessing (§II-A).
    pub trim: TrimConfig,
    /// Number of read subsets for the parallel aligner (§II-A/B).
    pub subsets: usize,
    /// Overlap detection thresholds (§II-B).
    pub overlap: OverlapConfig,
    /// Multilevel coarsening (§II-C).
    pub coarsen: CoarsenConfig,
    /// Cluster contiguity test for best representatives (§II-D).
    pub layout: LayoutConfig,
    /// Number of graph partitions (must be a power of two).
    pub partitions: usize,
    /// Seed for the partitioner's randomised choices.
    pub partition_seed: u64,
    /// Distributed trimming/traversal knobs (§V).
    pub dist: DistributedConfig,
    /// Optional deterministic fault injection for the distributed stage.
    /// `None` (the default) runs a perfect cluster.
    pub fault: Option<FaultInjection>,
    /// Build contig sequences by per-column majority consensus (error
    /// correcting) instead of first-wins merging. Lengths and all Table III
    /// statistics are identical either way; only base-level content
    /// differs.
    pub consensus: bool,
    /// Emit only the lexicographically canonical strand of each contig
    /// (exact reverse-complement duplicates are dropped). The read set is
    /// strand-augmented (§II-A), so assemblies naturally produce each contig
    /// on both strands; the paper reports raw counts, so this defaults off.
    pub dedup_rc: bool,
    /// Worker threads for the shared-memory parallel phases — alignment
    /// fan-out, task-parallel bisection, per-partition distributed scans.
    /// `0` (the default) uses the machine's available parallelism; `1`
    /// forces the exact serial path. Output is bit-identical at any
    /// setting.
    pub threads: usize,
    /// Heap budget in bytes for the big pipeline data structures (raw
    /// reads, the preprocessed store, overlap lists, spill buffers).
    /// `None` (the default) means unlimited. The in-core paths account
    /// against it and fail fast with [`FocusError::BudgetExceeded`] when
    /// a reservation would not fit; the out-of-core path
    /// ([`crate::ooc`]) instead streams ingest and spills alignment runs
    /// to disk so the same inputs fit. The budget never changes contigs
    /// or logical metrics — only whether a run is admitted and where the
    /// bytes live.
    pub memory_budget: Option<u64>,
    /// Structured tracing and metrics (fc-obs). Disabled by default — a
    /// disabled recorder is a single branch per record site. With
    /// `ObsOptions::logical()` the event clock is a logical counter and
    /// metric snapshots are byte-identical at any thread count.
    pub observability: ObsOptions,
}

impl Default for FocusConfig {
    fn default() -> FocusConfig {
        FocusConfig {
            trim: TrimConfig::default(),
            subsets: 4,
            overlap: OverlapConfig::default(),
            coarsen: CoarsenConfig::default(),
            layout: LayoutConfig::default(),
            partitions: 16,
            partition_seed: 0xF0C05,
            dist: DistributedConfig::default(),
            fault: None,
            consensus: true,
            dedup_rc: false,
            threads: 0,
            memory_budget: None,
            observability: ObsOptions::default(),
        }
    }
}

impl FocusConfig {
    /// Validates cross-stage parameter sanity.
    pub fn validate(&self) -> Result<(), FocusError> {
        self.trim.validate()?;
        self.overlap.validate()?;
        if self.subsets == 0 {
            return Err(FocusError::Config("subsets must be > 0".to_string()));
        }
        if self.partitions == 0 || !self.partitions.is_power_of_two() {
            return Err(FocusError::Config(format!(
                "partitions must be a positive power of two, got {}",
                self.partitions
            )));
        }
        self.dist.retry.validate()?;
        if let Some(fault) = &self.fault {
            fault.rates.validate()?;
        }
        Ok(())
    }
}

/// Errors surfaced by the assembler pipeline.
#[derive(Debug)]
pub enum FocusError {
    /// Invalid configuration.
    Config(String),
    /// A pipeline stage failed.
    Stage {
        /// Stage name (e.g. `"preprocess"`).
        stage: &'static str,
        /// Underlying message.
        message: String,
    },
    /// The input read set produced no usable data (e.g. everything trimmed
    /// away).
    EmptyInput,
    /// Preprocessing or parsing failed in fc-seq.
    Seq(SeqError),
    /// Overlap-detection configuration or alignment failed in fc-align.
    Align(AlignError),
    /// A graph structural invariant was violated in fc-graph.
    Graph(GraphError),
    /// Partitioning failed in fc-partition.
    Partition(PartitionError),
    /// The distributed stage failed with a typed error (unrecoverable
    /// cluster loss, invalid partition input, violated post-condition, …).
    Dist(DistError),
    /// A [`FocusConfig::memory_budget`] reservation did not fit: the run
    /// was refused before allocating, not killed mid-flight. Retry with a
    /// larger budget or the out-of-core path.
    BudgetExceeded(fc_obs::BudgetError),
}

impl fmt::Display for FocusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FocusError::Config(m) => write!(f, "invalid configuration: {m}"),
            FocusError::Stage { stage, message } => write!(f, "stage {stage} failed: {message}"),
            FocusError::EmptyInput => write!(f, "no usable reads after preprocessing"),
            FocusError::Seq(e) => write!(f, "read preprocessing failed: {e}"),
            FocusError::Align(e) => write!(f, "overlap detection failed: {e}"),
            FocusError::Graph(e) => write!(f, "graph invariant violated: {e}"),
            FocusError::Partition(e) => write!(f, "partitioning failed: {e}"),
            FocusError::Dist(e) => write!(f, "distributed stage failed: {e}"),
            // `BudgetError`'s own message already reads "memory budget
            // exceeded: ..." — don't double the prefix.
            FocusError::BudgetExceeded(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FocusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FocusError::Seq(e) => Some(e),
            FocusError::Align(e) => Some(e),
            FocusError::Graph(e) => Some(e),
            FocusError::Partition(e) => Some(e),
            FocusError::Dist(e) => Some(e),
            FocusError::BudgetExceeded(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SeqError> for FocusError {
    fn from(e: SeqError) -> FocusError {
        FocusError::Seq(e)
    }
}

impl From<AlignError> for FocusError {
    fn from(e: AlignError) -> FocusError {
        FocusError::Align(e)
    }
}

impl From<GraphError> for FocusError {
    fn from(e: GraphError) -> FocusError {
        FocusError::Graph(e)
    }
}

impl From<PartitionError> for FocusError {
    fn from(e: PartitionError) -> FocusError {
        FocusError::Partition(e)
    }
}

impl From<DistError> for FocusError {
    fn from(e: DistError) -> FocusError {
        FocusError::Dist(e)
    }
}

impl From<fc_obs::BudgetError> for FocusError {
    fn from(e: fc_obs::BudgetError) -> FocusError {
        FocusError::BudgetExceeded(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        FocusConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_bad_partitions() {
        let mut c = FocusConfig {
            partitions: 12,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.partitions = 0;
        assert!(c.validate().is_err());
        c.partitions = 32;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_zero_subsets() {
        let c = FocusConfig {
            subsets: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_invalid_fault_injection_and_retry_policy() {
        let mut c = FocusConfig {
            fault: Some(FaultInjection {
                seed: 1,
                rates: FaultRates {
                    crash: 1.5,
                    ..Default::default()
                },
            }),
            ..Default::default()
        };
        assert!(matches!(
            c.validate(),
            Err(FocusError::Dist(DistError::InvalidFaultRates(_)))
        ));
        c.fault = Some(FaultInjection {
            seed: 1,
            rates: FaultRates::default(),
        });
        assert!(c.validate().is_ok());
        c.dist.retry.max_attempts = 0;
        assert!(matches!(
            c.validate(),
            Err(FocusError::Dist(DistError::InvalidRetryPolicy(_)))
        ));
    }

    #[test]
    fn dist_error_converts_and_chains() {
        let e: FocusError = DistError::NoRanks.into();
        assert!(e.to_string().contains("distributed stage failed"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_display() {
        let e = FocusError::Stage {
            stage: "alignment",
            message: "boom".to_string(),
        };
        assert_eq!(e.to_string(), "stage alignment failed: boom");
        assert!(FocusError::EmptyInput
            .to_string()
            .contains("no usable reads"));
    }
}
