//! Reference-based assembly evaluation.
//!
//! The paper reports reference-free statistics (Table III); with simulated
//! data we also hold the truth, so this module adds the QUAST-style
//! reference-based metrics a production assembler ships with:
//!
//! * **genome fraction** — how much of each reference is covered by contig
//!   k-mers,
//! * **contig accuracy** — the fraction of contig k-mers present in any
//!   reference (1.0 = the assembler invented nothing),
//! * **chimera detection** — contigs whose k-mers map to more than one
//!   reference genome (inter-genus misassemblies),
//! * **NGA-style N50** computed against the total reference size rather
//!   than the assembly size, immune to inflated assemblies.

use crate::config::FocusError;
use fc_seq::DnaString;
use std::collections::HashMap;

/// K-mer length used for evaluation matching. 32 keeps random collisions
/// negligible (4^32 space) while tolerating nothing — evaluation is strict.
const EVAL_K: usize = 32;

/// Evaluation of one assembly against reference genomes.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceEvaluation {
    /// Fraction of each reference's k-mers covered by the assembly.
    pub genome_fraction: Vec<f64>,
    /// Fraction of assembly k-mers found in some reference (strand-aware
    /// both ways).
    pub contig_accuracy: f64,
    /// Indices of contigs whose k-mers hit ≥ 2 references with ≥ 5 % each.
    pub chimeric_contigs: Vec<usize>,
    /// N50 against the total reference length (NG50).
    pub ng50: usize,
    /// Contigs evaluated (those with at least one k-mer).
    pub contigs_evaluated: usize,
}

impl ReferenceEvaluation {
    /// Mean genome fraction across references.
    pub fn mean_genome_fraction(&self) -> f64 {
        if self.genome_fraction.is_empty() {
            0.0
        } else {
            self.genome_fraction.iter().sum::<f64>() / self.genome_fraction.len() as f64
        }
    }
}

/// Evaluates `contigs` against `references`.
///
/// Both strands of every reference are indexed, since assemblies emit
/// arbitrary strands. Returns an error when no reference is long enough to
/// carry a single evaluation k-mer.
pub fn evaluate(
    contigs: &[DnaString],
    references: &[DnaString],
) -> Result<ReferenceEvaluation, FocusError> {
    if references.iter().all(|r| r.len() < EVAL_K) {
        return Err(FocusError::Config(format!(
            "no reference has length >= {EVAL_K}"
        )));
    }
    // k-mer -> reference index (first occurrence wins; shared conserved
    // islands attribute to one genome, which slightly under-counts others'
    // fractions — acceptable for the comparative use here).
    let mut index: HashMap<u64, u32> = HashMap::new();
    let mut ref_kmer_counts = vec![0usize; references.len()];
    for (ri, reference) in references.iter().enumerate() {
        for strand in [reference.clone(), reference.reverse_complement()] {
            for (_, kmer) in strand.kmers(EVAL_K) {
                index.entry(kmer).or_insert(ri as u32);
            }
        }
        ref_kmer_counts[ri] = reference.len().saturating_sub(EVAL_K - 1);
    }

    let mut covered: Vec<std::collections::HashSet<u64>> =
        vec![std::collections::HashSet::new(); references.len()];
    let mut total_kmers = 0usize;
    let mut matched_kmers = 0usize;
    let mut chimeric = Vec::new();
    let mut contigs_evaluated = 0usize;

    for (ci, contig) in contigs.iter().enumerate() {
        let mut per_ref: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        let mut contig_kmers = 0usize;
        for (_, kmer) in contig.kmers(EVAL_K) {
            contig_kmers += 1;
            total_kmers += 1;
            if let Some(&ri) = index.get(&kmer) {
                matched_kmers += 1;
                *per_ref.entry(ri).or_insert(0) += 1;
                covered[ri as usize].insert(kmer);
            }
        }
        if contig_kmers == 0 {
            continue;
        }
        contigs_evaluated += 1;
        let significant = per_ref
            .values()
            .filter(|&&c| c as f64 >= 0.05 * contig_kmers as f64 && c >= 2)
            .count();
        if significant >= 2 {
            chimeric.push(ci);
        }
    }

    // Genome fraction: covered distinct forward-or-RC k-mers versus the
    // reference's forward k-mer count. Coverage can exceed 1 in principle
    // (both strands hit); clamp.
    let genome_fraction = covered
        .iter()
        .zip(&ref_kmer_counts)
        .map(|(set, &n)| {
            if n == 0 {
                0.0
            } else {
                (set.len() as f64 / n as f64).min(1.0)
            }
        })
        .collect();

    let total_ref_len: usize = references.iter().map(DnaString::len).sum();
    let ng50 = ng50_against(contigs, total_ref_len);

    Ok(ReferenceEvaluation {
        genome_fraction,
        contig_accuracy: if total_kmers == 0 {
            0.0
        } else {
            matched_kmers as f64 / total_kmers as f64
        },
        chimeric_contigs: chimeric,
        ng50,
        contigs_evaluated,
    })
}

/// NG50: the contig length at which the cumulative (descending) length
/// crosses half the *reference* size; 0 when the assembly is too small.
pub fn ng50_against(contigs: &[DnaString], reference_len: usize) -> usize {
    if reference_len == 0 {
        return 0;
    }
    let mut lengths: Vec<usize> = contigs.iter().map(DnaString::len).collect();
    lengths.sort_unstable_by(|a, b| b.cmp(a));
    let half = reference_len.div_ceil(2);
    let mut acc = 0usize;
    for len in lengths {
        acc += len;
        if acc >= half {
            return len;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::Base;

    fn genome(len: usize, seed: u64) -> DnaString {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Base::from_code((state >> 5) as u8 & 3)
            })
            .collect()
    }

    #[test]
    fn perfect_assembly_scores_perfectly() {
        let reference = genome(2_000, 1);
        let contigs = vec![reference.clone()];
        let eval = evaluate(&contigs, &[reference]).unwrap();
        assert!((eval.genome_fraction[0] - 1.0).abs() < 1e-9);
        assert!((eval.contig_accuracy - 1.0).abs() < 1e-12);
        assert!(eval.chimeric_contigs.is_empty());
        assert_eq!(eval.ng50, 2_000);
    }

    #[test]
    fn reverse_strand_contigs_count() {
        let reference = genome(1_000, 2);
        let contigs = vec![reference.reverse_complement()];
        let eval = evaluate(&contigs, &[reference]).unwrap();
        assert!((eval.contig_accuracy - 1.0).abs() < 1e-12);
        assert!(eval.genome_fraction[0] > 0.99);
    }

    #[test]
    fn invented_sequence_lowers_accuracy() {
        let reference = genome(1_000, 3);
        let alien = genome(1_000, 999);
        let eval = evaluate(&[reference.clone(), alien], &[reference]).unwrap();
        assert!(eval.contig_accuracy > 0.45 && eval.contig_accuracy < 0.55);
    }

    #[test]
    fn partial_coverage_measured() {
        let reference = genome(2_000, 4);
        let half = reference.slice(0, 1_000);
        let eval = evaluate(&[half], &[reference]).unwrap();
        assert!(
            eval.genome_fraction[0] > 0.45 && eval.genome_fraction[0] < 0.55,
            "fraction {}",
            eval.genome_fraction[0]
        );
    }

    #[test]
    fn chimera_detected() {
        let ref_a = genome(1_000, 5);
        let ref_b = genome(1_000, 6);
        let mut chimera = ref_a.slice(0, 500);
        chimera.extend_from(&ref_b.slice(0, 500));
        let eval = evaluate(&[chimera], &[ref_a, ref_b]).unwrap();
        assert_eq!(eval.chimeric_contigs, vec![0]);
    }

    #[test]
    fn honest_contig_not_flagged_chimeric() {
        let ref_a = genome(1_000, 7);
        let ref_b = genome(1_000, 8);
        let eval = evaluate(&[ref_a.slice(100, 900)], &[ref_a.clone(), ref_b]).unwrap();
        assert!(eval.chimeric_contigs.is_empty());
    }

    #[test]
    fn ng50_uses_reference_length() {
        let contigs: Vec<DnaString> = vec![genome(300, 9), genome(200, 10), genome(100, 11)];
        // Reference 1000: half = 500; 300+200 = 500 -> NG50 = 200.
        assert_eq!(ng50_against(&contigs, 1_000), 200);
        // Tiny assembly vs huge reference: cannot reach half.
        assert_eq!(ng50_against(&contigs, 10_000), 0);
        assert_eq!(ng50_against(&contigs, 0), 0);
    }

    #[test]
    fn rejects_too_short_references() {
        let short: DnaString = "ACGT".parse().unwrap();
        assert!(evaluate(&[], &[short]).is_err());
    }
}
