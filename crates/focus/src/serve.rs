//! The production [`JobRunner`] behind `focus serve`: each job is one
//! checkpointed assembly run.
//!
//! The runner owns a *base* [`FocusConfig`]; per job it overrides only the
//! thread count (the server divides the machine between workers) and
//! forces logical-clock observability, so every job's metrics snapshot is
//! byte-identical regardless of thread count or how many times the run
//! crashed and resumed — the oracle the serve chaos harness byte-compares.
//!
//! Resume is always on: the runner checkpoints every phase boundary under
//! the job's `ckpt/` directory (keyed by the existing config/input
//! fingerprints), so re-running after a `kill -9` continues from the last
//! durable phase instead of starting over.
//!
//! Failure classification mirrors the retry contract of
//! [`fc_serve::runner`]: rank-loss failures from the simulated cluster's
//! fault injection and stage-internal errors are transient (a retry can
//! legitimately succeed), while config/validation/input errors are
//! permanent — retrying cannot fix a malformed FASTQ or an invalid retry
//! policy, so such jobs must not burn the backoff budget.

use crate::checkpoint::{AssemblyOutcome, CheckpointOptions};
use crate::config::{FocusConfig, FocusError};
use crate::ooc::OocOptions;
use crate::pipeline::FocusAssembler;
use fc_obs::ObsOptions;
use fc_seq::{fasta, fastq, Read};
use fc_serve::{JobContext, JobError, JobOutput, JobRunner};
use std::fs::File;
use std::io::BufReader;

/// Runs submitted FASTQ jobs through the full Focus pipeline with
/// checkpoint/resume. See the module docs for the determinism contract.
#[derive(Debug, Clone)]
pub struct AssemblyJobRunner {
    base: FocusConfig,
}

impl AssemblyJobRunner {
    /// Creates a runner from a validated base configuration.
    pub fn new(base: FocusConfig) -> Result<AssemblyJobRunner, FocusError> {
        base.validate()?;
        Ok(AssemblyJobRunner { base })
    }

    /// The base configuration jobs run under (threads/observability are
    /// overridden per job).
    pub fn base_config(&self) -> &FocusConfig {
        &self.base
    }
}

/// Stable 64-bit FNV-1a fingerprint of a tenant name, squeezed into the
/// integer-only span-arg space (sign-preserving bit cast).
fn tenant_fnv(tenant: &str) -> i64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in tenant.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h as i64
}

/// Maps a pipeline failure onto the serve retry contract. Distributed
/// errors are split by variant: only fault-injection losses (ranks dying,
/// partitions lost in flight) can succeed on retry; validation, config and
/// invariant defects are deterministic and fail the same way every attempt.
fn classify(e: FocusError) -> JobError {
    let transient = match &e {
        FocusError::Dist(d) => matches!(
            d,
            fc_dist::DistError::AllRanksDead { .. } | fc_dist::DistError::LostPartition { .. }
        ),
        FocusError::Stage { .. } => true,
        // The streaming (out-of-core) path surfaces input I/O as a seq
        // error; like the in-core open failure it is retryable. Malformed
        // FASTQ is a parse variant and stays permanent.
        FocusError::Seq(fc_seq::SeqError::Io(_)) => true,
        // A blown memory budget is deterministic for a given input and
        // config: retrying the same job burns the backoff budget for
        // nothing. The server's admission layer is the right place to
        // wait for pressure to clear.
        FocusError::BudgetExceeded(_) => false,
        _ => false,
    };
    JobError {
        transient,
        message: e.to_string(),
    }
}

impl JobRunner for AssemblyJobRunner {
    fn run(&self, ctx: &JobContext) -> Result<JobOutput, JobError> {
        if ctx.canceled() {
            return Err(JobError::permanent("canceled before assembly started"));
        }
        let mut config = self.base;
        config.threads = ctx.threads.max(1);
        config.observability = ObsOptions::logical();
        let assembler = FocusAssembler::new(config).map_err(classify)?;
        let mut opts = CheckpointOptions::in_dir(&ctx.ckpt_dir);
        opts.resume = true;
        // Root every span of this run under a job-tagged span so the trace
        // served at `GET /jobs/{id}/trace` attributes all work to the job
        // and its tenant (args are integer-only, so the tenant is an FNV
        // fingerprint; the string lives in the job metadata).
        let job_span = assembler.recorder().span_args(
            "serve",
            "serve.job",
            &[
                ("job", ctx.id.0 as i64),
                ("tenant_fnv", tenant_fnv(&ctx.tenant)),
            ],
        );
        let outcome = if config.memory_budget.is_some() {
            // Budgeted jobs run out-of-core: the input streams instead of
            // being slurped, and alignment spills under the job's
            // checkpoint directory so a resumed job re-adopts it.
            let ooc = OocOptions::in_dir(ctx.ckpt_dir.join("ooc"));
            assembler
                .assemble_fastq_ooc(&ctx.input_path, &opts, &ooc)
                .map_err(classify)?
        } else {
            let file = File::open(&ctx.input_path).map_err(|e| {
                JobError::transient(format!("open {}: {e}", ctx.input_path.display()))
            })?;
            let reads = fastq::parse(BufReader::new(file))
                .map_err(|e| JobError::permanent(format!("parse FASTQ: {e}")))?;
            if ctx.canceled() {
                return Err(JobError::permanent("canceled before assembly started"));
            }
            assembler
                .assemble_with_checkpoints(&reads, &opts)
                .map_err(classify)?
        };
        drop(job_span);
        let trace_json = fc_obs::write_chrome_trace(&assembler.recorder().events());
        let result = match outcome {
            AssemblyOutcome::Completed(result) => result,
            // Unreachable without stop_after, but keep it typed and
            // retryable rather than panicking in a worker.
            AssemblyOutcome::Stopped(phase) => {
                return Err(JobError::transient(format!(
                    "run stopped unexpectedly after phase {}",
                    phase.name()
                )));
            }
        };

        // Render contigs exactly like `focus assemble` writes them, so a
        // served job and a CLI run are byte-comparable.
        let contig_reads: Vec<Read> = result
            .contigs
            .iter()
            .enumerate()
            .map(|(i, c)| Read::new(format!("contig_{i} len={}", c.len()), c.clone()))
            .collect();
        let mut contigs_fasta = Vec::new();
        fasta::write(&mut contigs_fasta, &contig_reads, 70)
            .map_err(|e| JobError::permanent(format!("render contigs: {e}")))?;

        Ok(JobOutput {
            contigs_fasta,
            metrics_json: assembler.recorder().snapshot_json(),
            trace_json,
            num_contigs: result.stats.num_contigs as u64,
            n50: result.stats.n50 as u64,
            total_bases: result.stats.total_bases as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_seq::{Base, DnaString};
    use std::path::PathBuf;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    fn genome(len: usize, seed: u64) -> DnaString {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Base::from_code((state >> 5) as u8 & 3)
            })
            .collect()
    }

    fn tiled_reads(genome: &DnaString, read_len: usize, stride: usize) -> Vec<Read> {
        let mut reads = Vec::new();
        let mut start = 0;
        while start + read_len <= genome.len() {
            reads.push(Read::new(
                format!("r{start}"),
                genome.slice(start, start + read_len),
            ));
            start += stride;
        }
        reads
    }

    fn quick_config(k: usize) -> FocusConfig {
        let mut c = FocusConfig {
            partitions: k,
            ..Default::default()
        };
        c.trim.min_read_len = 30;
        c.overlap.min_overlap_len = 40;
        c
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc-focus-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn write_fastq(dir: &std::path::Path, reads: &[Read]) -> PathBuf {
        let path = dir.join("input.fastq");
        let mut bytes = Vec::new();
        fastq::write(&mut bytes, reads, 30).expect("render fastq");
        std::fs::write(&path, bytes).expect("write fastq");
        path
    }

    fn ctx(dir: &std::path::Path, input: PathBuf) -> JobContext {
        JobContext {
            id: fc_serve::JobId(1),
            tenant: "t".to_string(),
            input_path: input,
            ckpt_dir: dir.join("ckpt"),
            threads: 1,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    #[test]
    fn runs_a_job_and_resumes_byte_identically() {
        let dir = temp_dir("resume");
        let g = genome(2_000, 7);
        let input = write_fastq(&dir, &tiled_reads(&g, 120, 40));
        let runner = AssemblyJobRunner::new(quick_config(4)).expect("runner");

        let first = runner.run(&ctx(&dir, input.clone())).expect("first run");
        assert!(first.num_contigs >= 1);
        assert!(!first.contigs_fasta.is_empty());
        assert!(first.metrics_json.contains("focus-metrics-v1"));
        // The trace artifact is a valid causal Chrome trace rooted in the
        // job-tagged span, and the profiler accepts it.
        assert!(first.trace_json.contains("serve.job"));
        assert!(first.trace_json.contains("tenant_fnv"));
        let profile = fc_obs::profile_chrome_trace(&first.trace_json).expect("profiles");
        assert!(profile.critical_path_total() <= profile.run_wall);

        // Second run resumes from the checkpoints the first one left and
        // must reproduce outputs and logical metrics byte for byte.
        let second = runner.run(&ctx(&dir, input)).expect("resumed run");
        assert_eq!(first.contigs_fasta, second.contigs_fasta);
        assert_eq!(first.metrics_json, second.metrics_json);
        assert_eq!(
            (first.num_contigs, first.n50, first.total_bases),
            (second.num_contigs, second.n50, second.total_bases)
        );
    }

    #[test]
    fn malformed_input_is_a_permanent_error() {
        let dir = temp_dir("badinput");
        let input = dir.join("bad.fastq");
        std::fs::write(&input, b"this is not fastq\n").expect("write");
        let runner = AssemblyJobRunner::new(quick_config(4)).expect("runner");
        let err = runner.run(&ctx(&dir, input)).expect_err("must fail");
        assert!(!err.transient, "parse failures must not retry: {err:?}");
    }

    #[test]
    fn missing_input_is_transient() {
        let dir = temp_dir("missing");
        let runner = AssemblyJobRunner::new(quick_config(4)).expect("runner");
        let err = runner
            .run(&ctx(&dir, dir.join("nope.fastq")))
            .expect_err("must fail");
        assert!(err.transient, "i/o failures are retryable: {err:?}");
    }

    #[test]
    fn classification_follows_the_retry_contract() {
        use fc_dist::DistError;
        // Fault-injection losses can succeed on retry.
        assert!(
            classify(FocusError::Dist(DistError::AllRanksDead {
                phase: fc_dist::PhaseId::ErrorRemoval
            }))
            .transient
        );
        assert!(
            classify(FocusError::Stage {
                stage: "traversal",
                message: "boom".to_string()
            })
            .transient
        );
        // Config/validation defects fail identically every attempt and must
        // not burn the retry budget.
        assert!(
            !classify(FocusError::Dist(DistError::InvalidRetryPolicy(
                "x".to_string()
            )))
            .transient
        );
        assert!(!classify(FocusError::Dist(DistError::NoRanks)).transient);
        assert!(!classify(FocusError::EmptyInput).transient);
        assert!(!classify(FocusError::Config("bad".to_string())).transient);
        // A blown budget is deterministic — admission control, not the
        // retry loop, owns memory pressure.
        let budget = fc_obs::MemoryBudget::with_limit(1);
        let blown = budget.try_reserve("x", 2).unwrap_err();
        assert!(!classify(FocusError::BudgetExceeded(blown)).transient);
        // Streamed input I/O failures retry like in-core open failures.
        let io = fc_seq::SeqError::from(std::io::Error::other("disk gone"));
        assert!(classify(FocusError::Seq(io)).transient);
    }

    #[test]
    fn budgeted_jobs_run_out_of_core_and_match_unbudgeted_output() {
        let dir = temp_dir("ooc");
        let g = genome(2_000, 7);
        let input = write_fastq(&dir, &tiled_reads(&g, 120, 40));
        let plain = AssemblyJobRunner::new(quick_config(4))
            .expect("runner")
            .run(&ctx(&dir, input.clone()))
            .expect("unbudgeted run");

        let mut config = quick_config(4);
        config.memory_budget = Some(1 << 30);
        let ooc_dir = temp_dir("ooc-b");
        let input_b = write_fastq(&ooc_dir, &tiled_reads(&g, 120, 40));
        let budgeted = AssemblyJobRunner::new(config)
            .expect("runner")
            .run(&ctx(&ooc_dir, input_b.clone()))
            .expect("budgeted run");
        assert_eq!(plain.contigs_fasta, budgeted.contigs_fasta);
        assert_eq!(plain.metrics_json, budgeted.metrics_json);
        // The job actually spilled under its checkpoint directory.
        assert!(ooc_dir.join("ckpt").join("ooc").join("align").is_dir());

        // Re-running the budgeted job resumes byte-identically too.
        let resumed = AssemblyJobRunner::new(config)
            .expect("runner")
            .run(&ctx(&ooc_dir, input_b))
            .expect("budgeted resume");
        assert_eq!(budgeted.contigs_fasta, resumed.contigs_fasta);
        assert_eq!(budgeted.metrics_json, resumed.metrics_json);

        // A budget the job cannot fit is a permanent, typed failure.
        let mut tiny = quick_config(4);
        tiny.memory_budget = Some(512);
        let err = AssemblyJobRunner::new(tiny)
            .expect("runner")
            .run(&ctx(&dir, dir.join("input.fastq")))
            .expect_err("must exceed budget");
        assert!(!err.transient, "budget errors must not retry: {err:?}");
        assert!(err.message.contains("memory budget"), "{err:?}");
    }
}
