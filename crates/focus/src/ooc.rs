//! Out-of-core assembly: memory budgets, streaming ingest and spilled
//! alignment (ISSUE 10's tentpole).
//!
//! The in-core pipeline holds three big structures at once: the raw input
//! reads, the preprocessed RC-paired store, and every subset-pair
//! alignment result until the canonical merge. This module removes the
//! first and third from the resident set so inputs bigger than the
//! configured [`FocusConfig::memory_budget`] still assemble:
//!
//! * **Streaming ingest** — [`FocusAssembler::assemble_fastq_ooc`] parses
//!   the FASTQ file one read at a time through [`fc_seq::fastq::Reader`],
//!   feeding a [`ReadStoreBuilder`]; the raw input is never resident. The
//!   input digest is computed in a first O(1)-memory pass
//!   ([`InputDigest`]), so checkpoint compatibility with the in-core path
//!   is exact. Kept reads are optionally staged to disk page by page
//!   ([`fc_seq::PagedStoreWriter`]) so a killed run resumes ingest from
//!   pages instead of re-trimming.
//! * **Spilled alignment** — subset-pair results are computed one index
//!   column at a time and each pair's `(Vec<Overlap>, PairStats)` run is
//!   spilled through [`fc_ckpt::CheckpointStore`] (CRC-framed records,
//!   atomic temp-file + rename), then k-way merged back **in the exact
//!   canonical `(j, i ≤ j)` order** via
//!   [`Overlapper::merge_pair_results`] — the same code the in-core path
//!   runs, so contigs *and* logical metric snapshots are byte-identical.
//!
//! ## Robustness contract
//!
//! Spills inherit checkpoint-grade robustness. Every write failure
//! (`ENOSPC`, unwritable directory — injected or real) degrades spilling
//! with exactly one `ooc.spill.degraded` warning and keeps that pair's
//! result in memory: graceful in-core fallback, never a panic. Every read
//! failure (torn page, short read, bit flip) is caught by the CRC layer,
//! counted under `ooc.spill.rejected`, and answered by recomputing the
//! pair (`ooc.spill.recomputed`) — never silent corruption. All `ooc.*`
//! metrics are excluded from logical snapshots (`fc_obs::OOC_PREFIX`), so
//! fault handling never breaks byte-determinism.

use crate::checkpoint::{
    config_fingerprint, AlignmentCkpt, AssemblyOutcome, CheckpointOptions, CkptPhase, InputDigest,
};
use crate::config::{FocusConfig, FocusError};
use crate::pipeline::FocusAssembler;
use crate::stats::PipelineProfile;
use fc_align::{AlignScratch, Overlap, Overlapper, PairStats, Pool, SuffixArray};
use fc_ckpt::{decode_from_slice, encode_to_vec, CheckpointStore, FsFaultPlan, LoadOutcome};
use fc_obs::{MemoryBudget, Recorder, Reservation};
use fc_seq::{fastq, PagedReadStore, PagedStoreWriter, ReadStore, ReadStoreBuilder, SeqError};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One run's memory-budget ledger plus the reservations held for the rest
/// of the run. Phases charge the structures they are about to build;
/// a failed charge surfaces as [`FocusError::BudgetExceeded`] before the
/// allocation happens.
#[derive(Debug)]
pub(crate) struct RunBudget {
    budget: MemoryBudget,
    held: Vec<Reservation>,
}

impl RunBudget {
    /// A ledger limited by [`FocusConfig::memory_budget`] (unlimited when
    /// `None`).
    pub(crate) fn new(config: &FocusConfig) -> RunBudget {
        let budget = match config.memory_budget {
            Some(limit) => MemoryBudget::with_limit(limit),
            None => MemoryBudget::unlimited(),
        };
        RunBudget {
            budget,
            held: Vec::new(),
        }
    }

    /// The shared ledger, for phases that need scoped (non-run-lifetime)
    /// reservations.
    pub(crate) fn budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Reserves `bytes` under `label` for the rest of the run and gauges
    /// the ledger; typed failure when the limit would be exceeded.
    pub(crate) fn charge(
        &mut self,
        rec: &Recorder,
        label: &'static str,
        bytes: u64,
    ) -> Result<(), FocusError> {
        let r = self.budget.try_reserve(label, bytes)?;
        self.held.push(r);
        self.gauge(rec);
        Ok(())
    }

    /// Takes over an externally grown reservation so it lives as long as
    /// the run.
    pub(crate) fn hold(&mut self, rec: &Recorder, reservation: Reservation) {
        self.held.push(reservation);
        self.gauge(rec);
    }

    /// Publishes the ledger as `mem.budget.*` gauges (excluded from
    /// logical snapshots — budgets change peaks, never results).
    pub(crate) fn gauge(&self, rec: &Recorder) {
        if rec.is_enabled() {
            rec.gauge("mem.budget.limit", saturate(self.budget.limit().unwrap_or(0)));
            rec.gauge("mem.budget.used", saturate(self.budget.used()));
            rec.gauge("mem.budget.peak", saturate(self.budget.peak()));
        }
    }
}

fn saturate(v: u64) -> i64 {
    v.min(i64::MAX as u64) as i64
}

/// Where and how the out-of-core path spills.
#[derive(Debug, Clone)]
pub struct OocOptions {
    /// Root directory for spilled state: staged read pages land in
    /// `<spill_dir>/pages`, alignment runs in `<spill_dir>/align`.
    pub spill_dir: PathBuf,
    /// Reads per staged page (bounds ingest buffering; clamped to ≥ 1).
    pub page_len: usize,
    /// Stage trimmed reads to disk during ingest so a killed run resumes
    /// from pages instead of re-trimming. Costs one extra write per page.
    pub stage_reads: bool,
    /// Deterministic filesystem fault injection for the spill layer only
    /// (the phase-checkpoint store keeps its own plan in
    /// [`CheckpointOptions::fs_faults`]).
    pub fs_faults: FsFaultPlan,
}

impl OocOptions {
    /// Spills under `dir` with read staging on, 4096-read pages, no
    /// faults.
    pub fn in_dir(dir: impl Into<PathBuf>) -> OocOptions {
        OocOptions {
            spill_dir: dir.into(),
            page_len: 4096,
            stage_reads: true,
            fs_faults: FsFaultPlan::none(),
        }
    }
}

/// Spill-or-fallback store for per-pair alignment runs. Wraps a
/// [`CheckpointStore`] in the `align/` spill directory: every saved run is
/// CRC-framed and atomically renamed; the first write failure flips the
/// store into degraded mode with exactly one `ooc.spill.degraded`
/// warning, after which pairs simply stay in memory.
struct SpillPairStore<'a> {
    store: CheckpointStore,
    rec: &'a Recorder,
    degraded: bool,
}

const SPILL_PAIR_NAME: &str = "align_pair";

impl<'a> SpillPairStore<'a> {
    fn new(
        dir: &Path,
        config_fp: u64,
        input_digest: u64,
        faults: FsFaultPlan,
        rec: &'a Recorder,
    ) -> SpillPairStore<'a> {
        SpillPairStore {
            store: CheckpointStore::with_faults(dir.to_path_buf(), config_fp, input_digest, faults),
            rec,
            degraded: false,
        }
    }

    fn warn_once(&mut self) {
        if !self.degraded {
            self.degraded = true;
            self.rec.add("ooc.spill.degraded", 1);
            self.rec.instant("ooc", "ooc.spill.degraded", &[]);
        }
    }

    /// Spills pair `t`'s run; `false` means "keep it in memory" (already
    /// degraded, or this write just failed and degraded the store).
    fn save(&mut self, t: usize, payload: &(Vec<Overlap>, PairStats)) -> bool {
        if self.degraded {
            return false;
        }
        let record = encode_to_vec(payload);
        let bytes = record.len() as u64;
        match self.store.save(t as u32, SPILL_PAIR_NAME, vec![record]) {
            Ok(true) => {
                self.rec.add("ooc.spill.runs", 1);
                self.rec.add("ooc.spill.bytes", bytes);
                true
            }
            Ok(false) | Err(_) => {
                self.warn_once();
                false
            }
        }
    }

    /// Loads pair `t`'s spilled run. `None` means the run is missing or
    /// failed CRC/fingerprint/decode verification (counted under
    /// `ooc.spill.rejected`) — the caller recomputes, never trusts.
    fn load(&mut self, t: usize) -> Option<(Vec<Overlap>, PairStats)> {
        match self.store.load(t as u32, SPILL_PAIR_NAME) {
            LoadOutcome::Missing => None,
            LoadOutcome::Rejected(_) => {
                self.rec.add("ooc.spill.rejected", 1);
                None
            }
            LoadOutcome::Loaded(records) => {
                if records.len() != 1 {
                    self.rec.add("ooc.spill.rejected", 1);
                    return None;
                }
                match decode_from_slice(&records[0]) {
                    Ok(v) => Some(v),
                    Err(_) => {
                        self.rec.add("ooc.spill.rejected", 1);
                        None
                    }
                }
            }
        }
    }

    /// True when a verified spilled run for pair `t` exists on disk — the
    /// resume path's "skip recompute" probe.
    fn verified(&mut self, t: usize) -> bool {
        self.load(t).is_some()
    }
}

impl FocusAssembler {
    /// Assembles a FASTQ file out-of-core, bounded by
    /// [`FocusConfig::memory_budget`]:
    ///
    /// 1. **Digest pass** — streams the file once computing the input
    ///    digest in O(1) memory.
    /// 2. **Ingest** — streams the file again through the trim pipeline
    ///    into the RC-paired store, never holding the raw input; kept
    ///    reads are staged to `<spill_dir>/pages` when
    ///    [`OocOptions::stage_reads`] is set. With
    ///    [`CheckpointOptions::resume`], valid staged pages from a killed
    ///    run are adopted instead (digest-verified — stale pages are
    ///    recomputed, never trusted).
    /// 3. **Spilled alignment** — one suffix-array index column resident
    ///    at a time; each subset pair's run spills to
    ///    `<spill_dir>/align` and is merged back in canonical order.
    /// 4. Everything downstream is the shared checkpointed tail — same
    ///    code, same checkpoints, same contigs as the in-core path.
    ///
    /// Contigs and logical metric snapshots are byte-identical to
    /// [`assemble`](FocusAssembler::assemble) /
    /// [`assemble_with_checkpoints`](FocusAssembler::assemble_with_checkpoints)
    /// on the same input at any thread count, budget or kernel.
    pub fn assemble_fastq_ooc(
        &self,
        input: &Path,
        opts: &CheckpointOptions,
        ooc: &OocOptions,
    ) -> Result<AssemblyOutcome, FocusError> {
        let run_started = Instant::now();
        let rec = self.recorder();
        let config = *self.config();
        let _span = rec.span("pipeline", "pipeline.assemble_ooc");
        let fp = config_fingerprint(&config);
        let pool = Pool::new_obs(config.threads, rec);
        let profile = PipelineProfile::default();
        let mut budget = RunBudget::new(&config);

        // Pass 1: digest the raw input in O(1) memory.
        let mut digest = InputDigest::new();
        for read in open_fastq(input)? {
            digest.observe(&read?);
        }
        let reads_in = digest.count();
        let input_digest = digest.finish();

        let pages_dir = ooc.spill_dir.join("pages");
        let align_dir = ooc.spill_dir.join("align");
        let mut store = opts.dir.as_ref().map(|dir| {
            CheckpointStore::with_faults(dir.clone(), fp, input_digest, opts.fs_faults.clone())
        });

        // Ingest: adopt digest-verified staged pages from a previous run,
        // else stream-trim the file (pass 2), staging as we go.
        let mut store_reads: Option<ReadStore> = None;
        if opts.resume && ooc.stage_reads {
            match PagedReadStore::open(&pages_dir, fp, input_digest, ooc.fs_faults.clone()) {
                Ok(mut paged) => match paged.materialize() {
                    Ok(s) => {
                        rec.add("ooc.ingest.resumed", 1);
                        store_reads = Some(s);
                    }
                    Err(_) => rec.add("ooc.spill.recomputed", 1),
                },
                // Nothing usable staged (fresh dir, different input):
                // quiet recompute. Corruption is counted.
                Err(fc_seq::PagedError::Stale(_)) => {}
                Err(_) => rec.add("ooc.spill.recomputed", 1),
            }
        }
        let store_reads = match store_reads {
            Some(s) => {
                budget.charge(rec, "read-store", s.approx_bytes() as u64)?;
                if rec.is_enabled() {
                    rec.add("pipeline.reads_in", reads_in);
                    rec.add("pipeline.reads_kept", s.len() as u64);
                }
                s
            }
            None => {
                let mut builder = ReadStoreBuilder::new(&config.trim)?;
                let mut staging = ooc.stage_reads.then(|| {
                    PagedStoreWriter::create(&pages_dir, fp, ooc.page_len, ooc.fs_faults.clone())
                });
                let mut staging_degraded = false;
                let mut store_res = budget.budget().try_reserve("read-store", 0)?;
                for read in open_fastq(input)? {
                    let read = read?;
                    let grown = builder.push(&read);
                    if grown == 0 {
                        continue;
                    }
                    store_res.grow(grown as u64)?;
                    if let Some(w) = staging.as_mut() {
                        // `push` returned non-zero, so a kept read exists;
                        // if it somehow does not, staging degrades rather
                        // than aborting the run.
                        let Some((kept, source)) = builder.last_kept() else {
                            staging_degraded = true;
                            staging = None;
                            continue;
                        };
                        if w.push(kept.clone(), source).is_err() {
                            staging_degraded = true;
                            staging = None;
                        }
                    }
                }
                if builder.reads_in() as u64 != reads_in {
                    return Err(FocusError::Stage {
                        stage: "ooc-ingest",
                        message: format!(
                            "input changed between digest ({reads_in} reads) and ingest ({}) passes",
                            builder.reads_in()
                        ),
                    });
                }
                if let Some(w) = staging {
                    match w.finish(input_digest) {
                        Ok(paged) => {
                            rec.add("ooc.ingest.staged_pages", u64::from(paged.pages()));
                        }
                        Err(_) => staging_degraded = true,
                    }
                }
                if staging_degraded {
                    rec.add("ooc.spill.degraded", 1);
                    rec.instant("ooc", "ooc.spill.degraded", &[]);
                }
                let s = builder.finish();
                if s.is_empty() {
                    return Err(FocusError::EmptyInput);
                }
                if rec.is_enabled() {
                    rec.add("pipeline.reads_in", reads_in);
                    rec.add("pipeline.reads_kept", s.len() as u64);
                }
                budget.hold(rec, store_res);
                s
            }
        };
        if opts.stop_after == Some(CkptPhase::Preprocess) {
            return Ok(AssemblyOutcome::Stopped(CkptPhase::Preprocess));
        }

        let mem = budget.budget().clone();
        let resume = opts.resume;
        let align_faults = ooc.fs_faults.clone();
        self.finish_checkpointed(
            &store_reads,
            &mut store,
            opts,
            &pool,
            profile,
            run_started,
            &mut budget,
            &mut |sr, pool, profile| {
                let mut spill =
                    SpillPairStore::new(&align_dir, fp, input_digest, align_faults.clone(), rec);
                let started = Instant::now();
                let out =
                    overlap_all_spilled(&config, sr, pool, rec, &mut spill, resume, &mem)?;
                let s = sr.split_subsets(config.subsets).len();
                profile.record(
                    "alignment",
                    started.elapsed(),
                    s + s * (s + 1) / 2,
                    pool.threads(),
                );
                Ok(out)
            },
        )
    }
}

/// Opens a FASTQ file as a streaming reader.
fn open_fastq(path: &Path) -> Result<fastq::Reader<BufReader<File>>, FocusError> {
    let file = File::open(path).map_err(|e| FocusError::Seq(SeqError::from(e)))?;
    Ok(fastq::Reader::new(BufReader::new(file)))
}

/// External-memory variant of [`Overlapper::overlap_all_obs`]: computes
/// the subset-pair tasks one reference column at a time (one suffix-array
/// index resident instead of all of them), spilling each pair's run to
/// disk as soon as it is computed, then merges every run back in the
/// canonical `(j, i ≤ j)` order through the shared
/// [`Overlapper::merge_pair_results`] — bit-identical output.
fn overlap_all_spilled(
    config: &FocusConfig,
    store_reads: &ReadStore,
    pool: &Pool,
    rec: &Recorder,
    spill: &mut SpillPairStore<'_>,
    resume: bool,
    mem: &MemoryBudget,
) -> Result<AlignmentCkpt, FocusError> {
    let overlapper = Overlapper::new(store_reads, config.overlap)?;
    let subsets = store_reads.split_subsets(config.subsets);
    let n = subsets.len();
    let _span = rec.span_args("align", "align.overlap_all_spilled", &[("subsets", n as i64)]);
    let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(n * (n + 1) / 2);
    for j in 0..n {
        for i in 0..=j {
            pairs.push((i, j));
        }
    }

    // Compute columns; spill each pair's run, keeping only what cannot be
    // spilled (degraded store) in memory. `kept_res` charges the kept
    // runs for as long as they are resident (through the merge below);
    // each column's index is a scoped charge released when the column is
    // done.
    let mut kept: Vec<Option<((Vec<Overlap>, PairStats), bool)>> = Vec::new();
    kept.resize_with(pairs.len(), || None);
    let mut kept_res = mem
        .try_reserve("align-unspilled", 0)
        .map_err(FocusError::from)?;
    for j in 0..n {
        let column_start = j * (j + 1) / 2;
        let todo: Vec<usize> = (column_start..column_start + j + 1)
            .filter(|&t| !(resume && spill.verified(t)))
            .collect();
        if todo.is_empty() {
            continue;
        }
        // Built through the pool so `exec.tasks` counts one task per
        // index, exactly like the in-core path's index fan-out.
        let index: SuffixArray = pool
            .map_obs(1, rec, |_| overlapper.index_subset(&subsets[j]))
            .pop()
            .unwrap_or_else(|| overlapper.index_subset(&subsets[j]));
        let index_res = mem
            .try_reserve("align-index", approx_index_bytes(&subsets[j], store_reads))
            .map_err(FocusError::from)?;
        let results = pool.map_items_obs(
            todo,
            rec,
            || (AlignScratch::default(), false),
            |_, t, scratch| {
                let (i, _) = pairs[t];
                let reused = scratch.1;
                scratch.1 = true;
                let out = overlapper.overlap_pair_with(&subsets[i], &index, i == j, &mut scratch.0);
                (t, out, reused)
            },
        );
        for (t, payload, reused) in results {
            if spill.save(t, &payload) {
                rec.add("ooc.spill.pairs", 1);
            } else {
                kept_res
                    .grow(approx_payload_bytes(&payload))
                    .map_err(FocusError::from)?;
                kept[t] = Some((payload, reused));
            }
        }
        drop(index_res);
    }

    // Merge in canonical order, reloading spilled runs (or recomputing
    // any run the CRC layer rejects — fault injection, torn files).
    let mut cached_index: Option<(usize, SuffixArray)> = None;
    let mut merged: Vec<((usize, usize), ((Vec<Overlap>, PairStats), bool))> =
        Vec::with_capacity(pairs.len());
    for (t, &(i, j)) in pairs.iter().enumerate() {
        let (payload, reused) = match kept[t].take() {
            Some(entry) => entry,
            None => match spill.load(t) {
                Some(payload) => (payload, false),
                None => {
                    rec.add("ooc.spill.recomputed", 1);
                    let entry = cached_index
                        .get_or_insert_with(|| (j, overlapper.index_subset(&subsets[j])));
                    if entry.0 != j {
                        *entry = (j, overlapper.index_subset(&subsets[j]));
                    }
                    let payload = overlapper.overlap_pair_with(
                        &subsets[i],
                        &entry.1,
                        i == j,
                        &mut AlignScratch::default(),
                    );
                    (payload, false)
                }
            },
        };
        merged.push(((i, j), (payload, reused)));
    }
    Ok(overlapper.merge_pair_results(merged, rec))
}

/// Estimate of a subset's suffix-array index footprint, from its layout:
/// concatenated text (1 byte per base plus a separator per read), `u32`
/// suffix positions over that text, and `u32` read starts + ids.
fn approx_index_bytes(subset: &[fc_seq::ReadId], store: &ReadStore) -> u64 {
    let bases: usize = subset.iter().map(|&id| store.get(id).len()).sum();
    let text = (bases + subset.len()) as u64;
    text.saturating_mul(5).saturating_add(subset.len() as u64 * 8)
}

/// Generous estimate of one pair run's in-memory footprint.
fn approx_payload_bytes(payload: &(Vec<Overlap>, PairStats)) -> u64 {
    (payload.0.len() * std::mem::size_of::<Overlap>() + std::mem::size_of::<PairStats>()) as u64
}
