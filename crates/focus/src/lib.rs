//! # focus-core — the Focus assembler pipeline
//!
//! The end-to-end assembler of the paper (§II): read preprocessing →
//! parallel overlap alignment → overlap graph → multilevel coarsening →
//! hybrid graph set → partitioning → distributed trimming → distributed
//! traversal → contig construction.
//!
//! The crate stitches the substrates together behind one entry point,
//! [`FocusAssembler`], and exposes the intermediate artifacts
//! ([`Prepared`]) so experiments can sweep partition counts without
//! recomputing alignment and coarsening.

pub mod checkpoint;
pub mod config;
pub mod eval;
pub mod ooc;
pub mod pipeline;
pub mod serve;
pub mod stats;

pub use checkpoint::{
    config_fingerprint, input_digest, AssemblyOutcome, CheckpointOptions, CkptPhase, InputDigest,
};
pub use ooc::OocOptions;
pub use config::{FaultInjection, FocusConfig, FocusError};
pub use fc_obs::{ObsOptions, Recorder};
pub use eval::{evaluate as evaluate_against_references, ReferenceEvaluation};
pub use pipeline::{AssemblyResult, FocusAssembler, Prepared};
pub use serve::AssemblyJobRunner;
pub use stats::{AssemblyStats, PhaseProfile, PipelineProfile};
