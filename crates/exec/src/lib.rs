//! Deterministic shared-memory work pool for the paper-parallel phases.
//!
//! The paper's three hot phases — subset-pair alignment (§II-B), recursive
//! bisection (§IV-C) and level-wise k-way refinement (§IV-D) — decompose
//! into independent tasks whose *results* do not depend on execution order.
//! [`Pool`] exploits that: tasks are distributed over scoped worker threads
//! through a chunked work-stealing deque (crossbeam's `Injector`/`Stealer`),
//! each worker tags every result with its task index, and the pool merges
//! the per-worker result lists back into **canonical task order** before
//! returning. Output is therefore bit-identical at any thread count; with
//! `threads = 1` the pool does not spawn at all and runs the exact serial
//! loop in the caller's thread.
//!
//! Workers own reusable per-thread scratch state (allocation buffers for the
//! alignment kernel, for instance) created once per worker through the
//! `scratch` factory of [`Pool::map_with`].

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use fc_obs::Recorder;
use std::num::NonZeroUsize;
use std::time::Instant;

/// How many chunks each worker should see on average; smaller chunks steal
/// better, larger chunks amortise queue traffic. Eight per worker keeps both
/// effects small for the task counts seen in the pipeline (tens to a few
/// thousand).
const CHUNKS_PER_WORKER: usize = 8;

/// A deterministic work pool with a fixed thread count.
///
/// `threads == 1` is the exact serial path (no threads spawned, caller-order
/// execution); any other count changes only wall-clock time, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    /// The auto-sized pool ([`Pool::new`] with `0`).
    fn default() -> Pool {
        Pool::new(0)
    }
}

impl Pool {
    /// Creates a pool. `threads == 0` resolves to the machine's available
    /// parallelism (at least 1); any other value is used as given.
    pub fn new(threads: usize) -> Pool {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        Pool { threads }
    }

    /// The single-threaded pool: tasks run in the caller's thread, in order.
    pub fn serial() -> Pool {
        Pool { threads: 1 }
    }

    /// [`Pool::new`] plus an oversubscription warning: when an *explicit*
    /// `threads` exceeds the machine's available parallelism the requested
    /// count is still honoured (results are thread-count-independent, and
    /// callers may be benchmarking oversubscription on purpose), but the
    /// condition is recorded on `rec` — the `sched.threads.oversubscribed`
    /// counter plus an instant event carrying requested vs available — so
    /// it shows up in traces instead of being silently absorbed as a
    /// slowdown. `sched.*` is excluded from logical-clock snapshots, so
    /// recording it never breaks byte-determinism.
    pub fn new_obs(threads: usize, rec: &Recorder) -> Pool {
        let available = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        if threads > available && rec.is_enabled() {
            rec.add("sched.threads.oversubscribed", 1);
            rec.instant(
                "sched",
                "sched.threads.oversubscribed",
                &[
                    ("requested", threads as i64),
                    ("available", available as i64),
                ],
            );
        }
        Pool::new(threads)
    }

    /// The resolved worker count (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool runs tasks inline in the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Runs `f(0..n)` and returns the results in index order.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_obs(n, &Recorder::disabled(), f)
    }

    /// [`Pool::map`] with execution metrics recorded into `rec`: task count
    /// (`exec.tasks`) plus scheduling detail (`sched.exec.steals`,
    /// `sched.exec.worker_busy_us`, …).
    pub fn map_obs<T, F>(&self, n: usize, rec: &Recorder, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_with_obs(n, rec, || (), |i, ()| f(i))
    }

    /// Runs `f(0..n)` with one reusable `scratch` value per worker thread
    /// (created by `scratch()`), returning results in index order.
    ///
    /// The scratch value is the pool's ownership story for allocation reuse:
    /// each worker creates it once and threads it through every task it
    /// executes, so buffers inside it are recycled without synchronisation.
    pub fn map_with<T, S, F, C>(&self, n: usize, scratch: C, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut S) -> T + Sync,
        C: Fn() -> S + Sync,
    {
        self.map_with_obs(n, &Recorder::disabled(), scratch, f)
    }

    /// [`Pool::map_with`] with execution metrics recorded into `rec`.
    pub fn map_with_obs<T, S, F, C>(&self, n: usize, rec: &Recorder, scratch: C, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut S) -> T + Sync,
        C: Fn() -> S + Sync,
    {
        let mut items: Vec<usize> = (0..n).collect();
        self.run(&mut items, &scratch, &|&mut i, s| f(i, s), rec)
    }

    /// Consumes `items`, runs `f(index, item, scratch)` over each, and
    /// returns the results in the items' original order.
    pub fn map_items<I, T, S, F, C>(&self, items: Vec<I>, scratch: C, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I, &mut S) -> T + Sync,
        C: Fn() -> S + Sync,
    {
        self.map_items_obs(items, &Recorder::disabled(), scratch, f)
    }

    /// [`Pool::map_items`] with execution metrics recorded into `rec`.
    pub fn map_items_obs<I, T, S, F, C>(
        &self,
        items: Vec<I>,
        rec: &Recorder,
        scratch: C,
        f: F,
    ) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I, &mut S) -> T + Sync,
        C: Fn() -> S + Sync,
    {
        let mut slots: Vec<(usize, Option<I>)> = items
            .into_iter()
            .enumerate()
            .map(|(i, v)| (i, Some(v)))
            .collect();
        let out = self.run(
            &mut slots,
            &scratch,
            &|slot, s| slot.1.take().map(|item| f(slot.0, item, s)),
            rec,
        );
        // Every slot is visited exactly once, so every result is `Some`;
        // `flatten` only strips the wrapper and preserves order.
        out.into_iter().flatten().collect()
    }

    /// Core driver: executes `f` over `&mut items[i]` for every `i`,
    /// returning results in index order.
    ///
    /// Metric naming: `exec.tasks` counts items and is deterministic at any
    /// thread count; everything the schedule decides (dispatches that hit
    /// the parallel path, steals, scratch creations, per-worker busy time)
    /// lives under the reserved `sched.` prefix so logical-clock snapshots
    /// can exclude it.
    fn run<I, T, S, F, C>(&self, items: &mut [I], scratch: &C, f: &F, rec: &Recorder) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(&mut I, &mut S) -> T + Sync,
        C: Fn() -> S + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        rec.add("exec.tasks", n as u64);
        // One span per batch, opened on the submitting lane so it nests
        // under (and parent-links to) whatever phase span dispatched the
        // work — the causal trace shows which phase ran which batches.
        let batch_span = rec.span_args("exec", "exec.batch", &[("tasks", n as i64)]);
        if self.threads == 1 || n == 1 {
            rec.add("sched.exec.scratch_created", 1);
            let mut s = scratch();
            return items.iter_mut().map(|item| f(item, &mut s)).collect();
        }
        rec.add("sched.exec.dispatches", 1);

        let workers = self.threads.min(n);
        let chunk = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);

        let injector: Injector<(usize, &mut [I])> = Injector::new();
        for (c, block) in items.chunks_mut(chunk).enumerate() {
            injector.push((c * chunk, block));
        }
        let locals: Vec<Worker<(usize, &mut [I])>> =
            (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<(usize, &mut [I])>> =
            locals.iter().map(Worker::stealer).collect();

        let mut per_worker: Vec<Vec<(usize, T)>> = Vec::with_capacity(workers);
        let mut total_steals = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, local) in locals.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                handles.push(scope.spawn(move || {
                    let started = Instant::now();
                    let mut steals = 0u64;
                    let mut s = scratch();
                    let mut out: Vec<(usize, T)> = Vec::new();
                    // Tasks never enqueue new tasks, so the queues only ever
                    // drain: once local, injector and every peer deque are
                    // simultaneously empty, all remaining chunks are being
                    // executed by their claimants and this worker can retire.
                    while let Some((base, block)) = local
                        .pop()
                        .or_else(|| find_task(injector, &local, stealers, w, &mut steals))
                    {
                        for (off, item) in block.iter_mut().enumerate() {
                            out.push((base + off, f(item, &mut s)));
                        }
                    }
                    (out, steals, started.elapsed().as_micros() as u64)
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok((out, steals, busy_us)) => {
                        total_steals += steals;
                        rec.add("sched.exec.steals", steals);
                        rec.add("sched.exec.scratch_created", 1);
                        rec.observe("sched.exec.worker_busy_us", busy_us);
                        per_worker.push(out);
                    }
                    // A worker died: the task paniced; propagate it.
                    Err(cause) => std::panic::resume_unwind(cause),
                }
            }
        });

        // Steal attribution lands inside the batch span, recorded from the
        // submitting lane after the join (worker lanes stay event-free so
        // the trace's event order is scheduler-independent).
        rec.instant(
            "exec",
            "sched.exec.steal_report",
            &[("steals", total_steals as i64), ("workers", workers as i64)],
        );
        drop(batch_span);

        // Canonical-order merge: every result carries its task index, so the
        // output is independent of which worker ran what when.
        let mut indexed: Vec<(usize, T)> = per_worker.into_iter().flatten().collect();
        indexed.sort_unstable_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, t)| t).collect()
    }
}

/// One steal attempt cycle: drain the injector first, then steal from peers
/// starting after our own slot (spreads contention deterministically for
/// results — victim choice only affects timing, never output). Successful
/// peer steals (not injector pops) bump `steals`.
fn find_task<'s, I>(
    injector: &Injector<(usize, &'s mut [I])>,
    local: &Worker<(usize, &'s mut [I])>,
    stealers: &[Stealer<(usize, &'s mut [I])>],
    me: usize,
    steals: &mut u64,
) -> Option<(usize, &'s mut [I])> {
    loop {
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    let k = stealers.len();
    for off in 1..k {
        let victim = &stealers[(me + off) % k];
        loop {
            match victim.steal() {
                Steal::Success(task) => {
                    *steals += 1;
                    return Some(task);
                }
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn resolves_thread_counts() {
        assert!(Pool::new(0).threads() >= 1);
        assert_eq!(Pool::new(3).threads(), 3);
        assert!(Pool::serial().is_serial());
        assert!(!Pool::new(4).is_serial());
        assert_eq!(Pool::default().threads(), Pool::new(0).threads());
    }

    #[test]
    fn new_obs_warns_on_oversubscription_without_clamping() {
        use fc_obs::ObsOptions;
        let rec = Recorder::new(ObsOptions::wall_clock());
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);

        // Explicit oversubscription: honoured, but recorded.
        let over = available + 7;
        assert_eq!(Pool::new_obs(over, &rec).threads(), over);
        assert_eq!(
            rec.snapshot()
                .counters
                .get("sched.threads.oversubscribed")
                .copied(),
            Some(1)
        );

        // Auto-sizing and in-budget counts stay silent.
        let quiet = Recorder::new(ObsOptions::wall_clock());
        assert!(Pool::new_obs(0, &quiet).threads() >= 1);
        assert_eq!(Pool::new_obs(1, &quiet).threads(), 1);
        assert!(!quiet
            .snapshot()
            .counters
            .contains_key("sched.threads.oversubscribed"));

        // The warning stays out of deterministic logical snapshots.
        let logical = Recorder::new(ObsOptions::logical());
        Pool::new_obs(over, &logical);
        assert!(!logical.snapshot_json().contains("oversubscribed"));
    }

    #[test]
    fn map_preserves_index_order() {
        for threads in [1, 2, 4, 8] {
            let pool = Pool::new(threads);
            let out = pool.map(1000, |i| i * i);
            let expected: Vec<usize> = (0..1000).map(|i| i * i).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = Pool::new(4);
        assert!(pool.map(0, |i| i).is_empty());
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_with_reuses_scratch_per_worker() {
        let created = AtomicU64::new(0);
        let pool = Pool::new(4);
        let out = pool.map_with(
            256,
            || {
                created.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |i, buf| {
                buf.push(i);
                buf.len()
            },
        );
        assert_eq!(out.len(), 256);
        // At most one scratch per worker thread, not one per task.
        assert!(created.load(Ordering::Relaxed) <= 4);
        // Serially, every task shares the single scratch: lengths are 1..=n.
        let serial = Pool::serial().map_with(5, Vec::<usize>::new, |i, buf| {
            buf.push(i);
            buf.len()
        });
        assert_eq!(serial, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn map_items_moves_values_in_order() {
        for threads in [1, 3, 8] {
            let pool = Pool::new(threads);
            let items: Vec<String> = (0..100).map(|i| format!("v{i}")).collect();
            let out = pool.map_items(items, || (), |_, item, ()| item + "!");
            let expected: Vec<String> = (0..100).map(|i| format!("v{i}!")).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_equals_serial_for_stateful_computation() {
        // A mildly expensive pure function; results must match bit for bit.
        let f = |i: usize| -> u64 {
            let mut x = i as u64 ^ 0x9E3779B97F4A7C15;
            for _ in 0..50 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let serial = Pool::serial().map(5000, f);
        for threads in [2, 4, 8] {
            assert_eq!(Pool::new(threads).map(5000, f), serial);
        }
    }

    #[test]
    fn obs_records_task_and_scheduling_metrics() {
        let rec = Recorder::new(fc_obs::ObsOptions::logical());
        let pool = Pool::new(4);
        let out = pool.map_obs(500, &rec, |i| i);
        assert_eq!(out.len(), 500);
        let snapshot = rec.snapshot();
        assert_eq!(snapshot.counters.get("exec.tasks"), Some(&500));
        assert_eq!(snapshot.counters.get("sched.exec.dispatches"), Some(&1));
        // One scratch per worker thread, one busy-time sample each.
        let scratch = snapshot
            .counters
            .get("sched.exec.scratch_created")
            .copied()
            .unwrap_or(0);
        assert!((1..=4).contains(&scratch));
        assert_eq!(
            snapshot
                .histograms
                .get("sched.exec.worker_busy_us")
                .map(|h| h.count),
            Some(scratch)
        );
        // The deterministic view keeps only the task count.
        let logical = snapshot.without_scheduling();
        assert_eq!(logical.counters.len(), 1);
        assert!(logical.counters.contains_key("exec.tasks"));
    }

    #[test]
    fn obs_serial_path_records_tasks_without_dispatch() {
        let rec = Recorder::new(fc_obs::ObsOptions::logical());
        let out = Pool::serial().map_obs(16, &rec, |i| i);
        assert_eq!(out.len(), 16);
        let snapshot = rec.snapshot();
        assert_eq!(snapshot.counters.get("exec.tasks"), Some(&16));
        assert_eq!(snapshot.counters.get("sched.exec.dispatches"), None);
        assert_eq!(
            snapshot.counters.get("sched.exec.scratch_created"),
            Some(&1)
        );
    }

    #[test]
    fn obs_variants_match_plain_results() {
        let rec = Recorder::new(fc_obs::ObsOptions::logical());
        let pool = Pool::new(4);
        assert_eq!(pool.map_obs(100, &rec, |i| i * 3), pool.map(100, |i| i * 3));
        let items: Vec<usize> = (0..64).collect();
        assert_eq!(
            pool.map_items_obs(items.clone(), &rec, || (), |_, v, ()| v + 1),
            pool.map_items(items, || (), |_, v, ()| v + 1)
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map(64, |i| {
                assert!(i != 33, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
