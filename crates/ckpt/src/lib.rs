//! # fc-ckpt — durable checkpoint/resume for the Focus pipeline
//!
//! Every pipeline phase output can be serialised to a versioned,
//! CRC32-verified checkpoint file and read back on a later run, so a
//! process killed at any phase boundary resumes instead of restarting
//! from zero. The crate is deliberately zero-dependency:
//!
//! * [`wire`] — fixed-width little-endian binary encoding and the
//!   [`Codec`] trait the phase payload types implement;
//! * [`crc`] — the CRC32 (IEEE) checksum guarding every record and file;
//! * [`file`] — the `FCKP` container format (magic, version, phase id,
//!   config/input fingerprints, checksummed records);
//! * [`manifest`] — the human-readable per-directory manifest, rewritten
//!   atomically after every checkpoint;
//! * [`fault`] — [`FsFaultPlan`], deterministic injection of torn writes,
//!   short reads, bit-flips and ENOSPC into the checkpoint I/O;
//! * [`store`] — [`CheckpointStore`], the save/load front door with
//!   atomic temp-file + rename writes and graceful degradation.
//!
//! Durability argument: a checkpoint only becomes visible under its final
//! name via `rename(2)` after the temp file was fully written and synced,
//! so a crash mid-write leaves at most a stale temp file, never a
//! truncated checkpoint under a valid name. Corruption that bypasses the
//! writer (torn writes injected directly, media bit-flips) is caught by
//! the per-record and whole-file CRCs at load time and reported as
//! [`CkptError::Corrupt`] — the caller recomputes the phase, never
//! trusting a damaged file.

pub mod crc;
pub mod error;
pub mod fault;
pub mod file;
pub mod manifest;
pub mod store;
pub mod wire;

pub use crc::crc32;
pub use error::CkptError;
pub use fault::{FsFaultPlan, FsFaultRates, ReadFault, WriteFault};
pub use file::{CheckpointFile, FORMAT_VERSION, MAGIC};
pub use manifest::{manifest_path, render_manifest, ManifestEntry};
pub use store::{CheckpointStore, LoadOutcome};
pub use wire::{decode_from_slice, encode_to_vec, Codec, Reader, Writer};
