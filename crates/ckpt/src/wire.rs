//! Fixed-width little-endian binary serialisation and the [`Codec`] trait.
//!
//! The encoding is deliberately boring: every integer is little-endian
//! fixed width, floats are their IEEE-754 bit patterns, sequences are a
//! `u64` length followed by the elements. Two encodes of equal values are
//! byte-identical, which is what lets the chaos harness byte-compare
//! checkpoints from interrupted and uninterrupted runs.

use crate::error::CkptError;

/// An append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// A bounds-checked decode cursor over an encoded byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn truncated(what: &'static str) -> CkptError {
    CkptError::Decode {
        detail: format!("truncated payload: expected {what}"),
    }
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(truncated(what));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CkptError> {
        Ok(self.u64()? as i64)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64`-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| truncated("byte length in range"))?;
        self.take(len, "length-prefixed bytes")
    }

    /// Reads a sequence length, rejecting lengths the remaining input
    /// cannot possibly hold (`min_element_size` bytes per element) so a
    /// corrupted length cannot trigger a huge allocation.
    pub fn seq_len(&mut self, min_element_size: usize) -> Result<usize, CkptError> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| truncated("sequence length in range"))?;
        if len.saturating_mul(min_element_size.max(1)) > self.remaining() {
            return Err(CkptError::Decode {
                detail: format!(
                    "sequence length {len} exceeds remaining payload ({} bytes)",
                    self.remaining()
                ),
            });
        }
        Ok(len)
    }

    /// Asserts the whole input was consumed (trailing garbage is corruption).
    pub fn finish(&self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::Decode {
                detail: format!("{} trailing bytes after payload", self.remaining()),
            })
        }
    }
}

/// A type that round-trips through the checkpoint wire format.
///
/// Implementations live next to the type definitions (they need access to
/// private fields); the contract is `decode(encode(x)) == x` and that
/// `decode` never panics on arbitrary input — it returns
/// [`CkptError::Decode`] instead.
pub trait Codec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decodes one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError>;
}

/// Encodes a value to a standalone byte vector.
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from a standalone byte vector, requiring full
/// consumption.
pub fn decode_from_slice<T: Codec>(bytes: &[u8]) -> Result<T, CkptError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

impl Codec for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.u8()
    }
}

impl Codec for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.u32()
    }
}

impl Codec for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.u64()
    }
}

impl Codec for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        usize::try_from(r.u64()?).map_err(|_| CkptError::Decode {
            detail: "usize out of range for this platform".to_string(),
        })
    }
}

impl Codec for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_i64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.i64()
    }
}

impl Codec for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.f64()
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::Decode {
                detail: format!("invalid bool byte {other:#04x}"),
            }),
        }
    }
}

impl Codec for String {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let bytes = r.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Decode {
            detail: "string is not valid UTF-8".to_string(),
        })
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let len = r.seq_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CkptError::Decode {
                detail: format!("invalid option tag {other:#04x}"),
            }),
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        let back: T = decode_from_slice(&bytes).expect("round trip decodes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(i64::MIN);
        round_trip(-0.5f64);
        round_trip(f64::INFINITY);
        round_trip(true);
        round_trip(false);
        round_trip("héllo\nworld".to_string());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip((1u32, -2i64, "x".to_string()));
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let bytes = encode_to_vec(&f64::NAN);
        let back: f64 = decode_from_slice(&bytes).expect("decodes");
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn truncated_input_is_a_decode_error_not_a_panic() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let r: Result<Vec<u64>, _> = decode_from_slice(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0);
        assert!(decode_from_slice::<u32>(&bytes).is_err());
    }

    #[test]
    fn absurd_sequence_length_is_rejected_without_allocating() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims 2^64-1 elements
        let bytes = w.into_bytes();
        assert!(decode_from_slice::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn invalid_tags_are_decode_errors() {
        assert!(decode_from_slice::<bool>(&[2]).is_err());
        assert!(decode_from_slice::<Option<u8>>(&[9, 0]).is_err());
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        assert!(decode_from_slice::<String>(&w.into_bytes()).is_err());
    }
}
