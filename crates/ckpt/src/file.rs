//! The `FCKP` checkpoint container format.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "FCKP"
//! 4       4     format version (u32 LE)
//! 8       4     phase id (u32 LE)
//! 12      8     config fingerprint (u64 LE)
//! 20      8     input digest (u64 LE)
//! 28      8     record count (u64 LE)
//! ...           per record: length (u64 LE), payload bytes, CRC32 (u32 LE)
//! last 4        CRC32 of everything before it (u32 LE)
//! ```
//!
//! Validation is defence in depth: the whole-file CRC catches any damage,
//! the per-record CRCs additionally localise it (and catch damage in a
//! record even if an attacker-grade coincidence fixed the outer CRC).
//! Every failure is a typed [`CkptError::Corrupt`] naming the check.

use crate::crc::crc32;
use crate::error::CkptError;
use std::path::Path;

/// File magic: the first four bytes of every checkpoint.
pub const MAGIC: [u8; 4] = *b"FCKP";

/// Current format version; bumped on any layout change so older binaries
/// refuse newer files instead of misreading them.
pub const FORMAT_VERSION: u32 = 1;

/// A decoded checkpoint container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFile {
    /// Which pipeline phase this checkpoint captured.
    pub phase_id: u32,
    /// Fingerprint of the configuration that produced it.
    pub config_fingerprint: u64,
    /// Digest of the input reads it was computed from.
    pub input_digest: u64,
    /// Opaque payload records (the phase output, plus any sidecars such as
    /// the cumulative metrics snapshot).
    pub records: Vec<Vec<u8>>,
}

impl CheckpointFile {
    /// Serialises the container, computing all checksums.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.phase_id.to_le_bytes());
        out.extend_from_slice(&self.config_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.input_digest.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for record in &self.records {
            out.extend_from_slice(&(record.len() as u64).to_le_bytes());
            out.extend_from_slice(record);
            out.extend_from_slice(&crc32(record).to_le_bytes());
        }
        let file_crc = crc32(&out);
        out.extend_from_slice(&file_crc.to_le_bytes());
        out
    }

    /// Parses and fully validates a container read from `path` (the path
    /// is only used in error messages).
    pub fn decode(bytes: &[u8], path: &Path) -> Result<CheckpointFile, CkptError> {
        let corrupt = |detail: String| CkptError::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let header_len = 4 + 4 + 4 + 8 + 8 + 8;
        if bytes.len() < header_len + 4 {
            return Err(corrupt(format!("file too short ({} bytes)", bytes.len())));
        }
        // Whole-file CRC first: it covers everything, including the header
        // fields we are about to interpret.
        let body_len = bytes.len() - 4;
        let stored_crc = u32::from_le_bytes([
            bytes[body_len],
            bytes[body_len + 1],
            bytes[body_len + 2],
            bytes[body_len + 3],
        ]);
        let actual_crc = crc32(&bytes[..body_len]);
        if stored_crc != actual_crc {
            return Err(corrupt(format!(
                "file CRC mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )));
        }
        if bytes[..4] != MAGIC {
            return Err(corrupt("bad magic (not an FCKP file)".to_string()));
        }
        let u32_at = |off: usize| u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
        let u64_at = |off: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(b)
        };
        let version = u32_at(4);
        if version != FORMAT_VERSION {
            return Err(corrupt(format!(
                "unsupported format version {version} (this build reads {FORMAT_VERSION})"
            )));
        }
        let phase_id = u32_at(8);
        let config_fingerprint = u64_at(12);
        let input_digest = u64_at(20);
        let record_count = u64_at(28);
        let record_count = usize::try_from(record_count)
            .ok()
            .filter(|&n| n <= body_len)
            .ok_or_else(|| corrupt(format!("implausible record count {record_count}")))?;

        let mut records = Vec::with_capacity(record_count);
        let mut pos = header_len;
        for i in 0..record_count {
            if body_len - pos < 8 {
                return Err(corrupt(format!("record {i}: truncated length field")));
            }
            let len = u64_at(pos);
            pos += 8;
            let len = usize::try_from(len)
                .ok()
                .filter(|&n| n <= body_len - pos)
                .ok_or_else(|| corrupt(format!("record {i}: implausible length {len}")))?;
            let payload = &bytes[pos..pos + len];
            pos += len;
            if body_len - pos < 4 {
                return Err(corrupt(format!("record {i}: truncated CRC field")));
            }
            let stored = u32_at(pos);
            pos += 4;
            let actual = crc32(payload);
            if stored != actual {
                return Err(corrupt(format!(
                    "record {i}: CRC mismatch (stored {stored:#010x}, computed {actual:#010x})"
                )));
            }
            records.push(payload.to_vec());
        }
        if pos != body_len {
            return Err(corrupt(format!(
                "{} trailing bytes after last record",
                body_len - pos
            )));
        }
        Ok(CheckpointFile {
            phase_id,
            config_fingerprint,
            input_digest,
            records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> CheckpointFile {
        CheckpointFile {
            phase_id: 3,
            config_fingerprint: 0xDEAD_BEEF_0123_4567,
            input_digest: 0x0FEE_0BAA_7654_3210,
            records: vec![b"first record".to_vec(), Vec::new(), vec![0u8; 300]],
        }
    }

    fn p() -> PathBuf {
        PathBuf::from("test.ckpt")
    }

    #[test]
    fn encode_decode_round_trips() {
        let file = sample();
        let bytes = file.encode();
        let back = CheckpointFile::decode(&bytes, &p()).expect("valid file decodes");
        assert_eq!(back, file);
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                CheckpointFile::decode(&bad, &p()).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                CheckpointFile::decode(&bytes[..cut], &p()).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut file = sample();
        file.records.clear();
        let mut bytes = file.encode();
        // Patch the version and re-seal the file CRC so only the version
        // check can fire.
        bytes[4] = FORMAT_VERSION as u8 + 1;
        let body = bytes.len() - 4;
        let crc = crate::crc::crc32(&bytes[..body]).to_le_bytes();
        bytes[body..].copy_from_slice(&crc);
        let err = CheckpointFile::decode(&bytes, &p()).expect_err("version skew rejected");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn empty_input_is_corrupt_not_a_panic() {
        assert!(CheckpointFile::decode(&[], &p()).is_err());
        assert!(CheckpointFile::decode(b"FCKP", &p()).is_err());
    }
}
