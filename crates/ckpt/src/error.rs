//! Typed errors of the checkpoint layer.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong saving or loading a checkpoint.
///
/// The variants separate the three responses a caller needs: `Io` means
/// the directory is unwritable or full (degrade and stop checkpointing),
/// `Corrupt`/`Mismatch` mean the file on disk cannot be trusted
/// (recompute the phase), and `Decode` means a payload did not round-trip
/// (also recompute — it is a corruption that passed the container CRC,
/// which the container makes practically impossible, or a version skew).
#[derive(Debug)]
pub enum CkptError {
    /// A filesystem operation failed.
    Io {
        /// What was being attempted (`"create dir"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The file exists but fails structural or checksum validation.
    Corrupt {
        /// The checkpoint file.
        path: PathBuf,
        /// What check failed.
        detail: String,
    },
    /// The file is valid but was written for a different configuration,
    /// input, or phase than the one resuming.
    Mismatch {
        /// The checkpoint file.
        path: PathBuf,
        /// Which fingerprint disagreed.
        detail: String,
    },
    /// A record's payload bytes did not decode as the expected type.
    Decode {
        /// What failed to decode.
        detail: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { op, path, source } => {
                write!(f, "checkpoint {op} failed for {}: {source}", path.display())
            }
            CkptError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
            CkptError::Mismatch { path, detail } => {
                write!(f, "stale checkpoint {}: {detail}", path.display())
            }
            CkptError::Decode { detail } => write!(f, "checkpoint payload decode failed: {detail}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl CkptError {
    /// True for errors that mean "do not trust this file, recompute"
    /// (as opposed to I/O errors that mean "stop checkpointing").
    pub fn is_untrusted_file(&self) -> bool {
        matches!(
            self,
            CkptError::Corrupt { .. } | CkptError::Mismatch { .. } | CkptError::Decode { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path_and_detail() {
        let e = CkptError::Corrupt {
            path: PathBuf::from("/x/phase_00.ckpt"),
            detail: "file CRC mismatch".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("phase_00.ckpt"));
        assert!(s.contains("file CRC mismatch"));
        assert!(e.is_untrusted_file());
    }

    #[test]
    fn io_errors_chain_their_source() {
        let e = CkptError::Io {
            op: "write",
            path: PathBuf::from("/x"),
            source: io::Error::new(io::ErrorKind::StorageFull, "disk full"),
        };
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.is_untrusted_file());
    }
}
