//! CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every checkpoint record and file. Table-driven, table built at
//! compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (IEEE, the variant used by zip/gzip/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data = b"the checkpoint payload under test".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
