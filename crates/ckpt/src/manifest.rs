//! The checkpoint directory manifest: a human-readable index of what was
//! checkpointed, rewritten atomically after every save.
//!
//! The manifest is advisory — resume never trusts it (every checkpoint
//! file carries and verifies its own fingerprints and checksums) — but it
//! makes a checkpoint directory self-describing for humans and CI
//! artifacts.

use std::path::{Path, PathBuf};

/// One manifest line: a checkpoint that was successfully written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Phase id (the pipeline's stable ordering).
    pub phase_id: u32,
    /// Human-readable phase name.
    pub phase_name: String,
    /// File name within the checkpoint directory.
    pub file_name: String,
    /// Encoded file size in bytes.
    pub bytes: u64,
    /// The file's trailing whole-file CRC32.
    pub file_crc: u32,
}

/// Name of the manifest file within a checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST.txt";

/// Path of the manifest inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_NAME)
}

/// Renders the manifest text: a fixed header naming the run's
/// fingerprints, then one line per checkpoint in phase order.
pub fn render_manifest(
    config_fingerprint: u64,
    input_digest: u64,
    entries: &[ManifestEntry],
) -> String {
    let mut out = String::new();
    out.push_str("# focus checkpoint manifest v1\n");
    out.push_str(&format!("config_fingerprint = {config_fingerprint:#018x}\n"));
    out.push_str(&format!("input_digest = {input_digest:#018x}\n"));
    out.push_str(&format!("checkpoints = {}\n", entries.len()));
    for e in entries {
        out.push_str(&format!(
            "phase {:02} {:<24} file={} bytes={} crc={:#010x}\n",
            e.phase_id, e.phase_name, e.file_name, e.bytes, e.file_crc
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_one_line_per_entry() {
        let entries = vec![
            ManifestEntry {
                phase_id: 0,
                phase_name: "preprocess".to_string(),
                file_name: "phase_00_preprocess.ckpt".to_string(),
                bytes: 1234,
                file_crc: 0xAB,
            },
            ManifestEntry {
                phase_id: 4,
                phase_name: "partition".to_string(),
                file_name: "phase_04_partition.ckpt".to_string(),
                bytes: 99,
                file_crc: 0xCD,
            },
        ];
        let text = render_manifest(0x1, 0x2, &entries);
        assert!(text.starts_with("# focus checkpoint manifest v1\n"));
        assert!(text.contains("config_fingerprint = 0x0000000000000001"));
        assert!(text.contains("checkpoints = 2"));
        assert!(text.contains("phase 00 preprocess"));
        assert!(text.contains("file=phase_04_partition.ckpt bytes=99"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let e = vec![ManifestEntry {
            phase_id: 1,
            phase_name: "alignment".to_string(),
            file_name: "phase_01_alignment.ckpt".to_string(),
            bytes: 7,
            file_crc: 1,
        }];
        assert_eq!(render_manifest(9, 9, &e), render_manifest(9, 9, &e));
    }
}
