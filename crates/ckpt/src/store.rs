//! [`CheckpointStore`] — the save/load front door of the checkpoint layer.
//!
//! Writes are atomic: the encoded file goes to a hidden temp name in the
//! same directory, is flushed with `sync_all`, and only then renamed over
//! the final name. A crash at any instant therefore leaves either the old
//! state or the new state under the final name, never a torn file —
//! unless a fault plan injects exactly that, which is how the chaos
//! harness proves the *read* side catches it.
//!
//! The store degrades instead of failing the run: the first write error
//! (unwritable directory, injected or real ENOSPC) is returned to the
//! caller once — for a single observability warning — and every later
//! save becomes a silent no-op. The assembly always finishes.
//!
//! Several stores may share one directory (the serve layer runs concurrent
//! jobs, and two resuming runs can legitimately overlap). Temp names are
//! therefore unique per process *and* per write, so concurrent writers can
//! never tear each other's rename source out from under them; the shared
//! MANIFEST.txt is serialised through a best-effort advisory lock file and
//! simply skipped under contention — it is a human-readable summary, never
//! parsed by the load path, so a stale manifest is cosmetic while a torn
//! one would be confusing.

use crate::error::CkptError;
use crate::fault::{flip_bit, FsFaultPlan, ReadFault, WriteFault};
use crate::file::CheckpointFile;
use crate::manifest::{manifest_path, render_manifest, ManifestEntry};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Distinguishes temp files of concurrent writers inside one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// How often the manifest lock is retried before the rewrite is skipped.
const MANIFEST_LOCK_RETRIES: u32 = 10;

/// A lock file older than this belongs to a dead writer and is broken.
const MANIFEST_LOCK_STALE: Duration = Duration::from_secs(5);

/// What a [`CheckpointStore::load`] found.
#[derive(Debug)]
pub enum LoadOutcome {
    /// No checkpoint exists for the phase: compute it.
    Missing,
    /// A verified checkpoint: its payload records, trustworthy.
    Loaded(Vec<Vec<u8>>),
    /// A file exists but failed verification (corruption, fingerprint or
    /// phase mismatch, version skew): report it and recompute. The file is
    /// never partially used.
    Rejected(CkptError),
}

/// Save/load access to one checkpoint directory, bound to one run's
/// config fingerprint and input digest.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    config_fingerprint: u64,
    input_digest: u64,
    faults: FsFaultPlan,
    degraded: bool,
    dir_ready: bool,
    entries: Vec<ManifestEntry>,
}

impl CheckpointStore {
    /// A store over `dir` for the run identified by the two fingerprints.
    /// The directory is created lazily on first save.
    pub fn new(
        dir: impl Into<PathBuf>,
        config_fingerprint: u64,
        input_digest: u64,
    ) -> CheckpointStore {
        CheckpointStore::with_faults(dir, config_fingerprint, input_digest, FsFaultPlan::none())
    }

    /// [`CheckpointStore::new`] with a filesystem fault-injection plan.
    pub fn with_faults(
        dir: impl Into<PathBuf>,
        config_fingerprint: u64,
        input_digest: u64,
        faults: FsFaultPlan,
    ) -> CheckpointStore {
        CheckpointStore {
            dir: dir.into(),
            config_fingerprint,
            input_digest,
            faults,
            degraded: false,
            dir_ready: false,
            entries: Vec::new(),
        }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The config fingerprint every file is stamped with.
    pub fn config_fingerprint(&self) -> u64 {
        self.config_fingerprint
    }

    /// The input digest every file is stamped with.
    pub fn input_digest(&self) -> u64 {
        self.input_digest
    }

    /// True once a write failure has disabled checkpointing for the rest
    /// of the run.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Canonical file name of a phase's checkpoint.
    pub fn file_name(phase_id: u32, phase_name: &str) -> String {
        format!("phase_{phase_id:02}_{phase_name}.ckpt")
    }

    /// Saves `records` as the checkpoint of `(phase_id, phase_name)`.
    ///
    /// Returns `Ok(true)` when a checkpoint was written, `Ok(false)` when
    /// the store is degraded and skipped the write. The first `Err` both
    /// reports the failure and flips the store into degraded mode, so a
    /// caller sees at most one error — emit the warning there.
    pub fn save(
        &mut self,
        phase_id: u32,
        phase_name: &str,
        records: Vec<Vec<u8>>,
    ) -> Result<bool, CkptError> {
        if self.degraded {
            return Ok(false);
        }
        if let Err(e) = self.ensure_dir() {
            self.degraded = true;
            return Err(e);
        }
        let file = CheckpointFile {
            phase_id,
            config_fingerprint: self.config_fingerprint,
            input_digest: self.input_digest,
            records,
        };
        let mut encoded = file.encode();
        let name = CheckpointStore::file_name(phase_id, phase_name);
        let final_path = self.dir.join(&name);

        match self.faults.next_write() {
            Some(WriteFault::Enospc) => {
                self.degraded = true;
                return Err(CkptError::Io {
                    op: "write",
                    path: final_path,
                    source: io::Error::new(
                        io::ErrorKind::StorageFull,
                        "no space left on device (injected)",
                    ),
                });
            }
            Some(WriteFault::Torn) => {
                // A non-atomic writer dying mid-write: the final name holds
                // a prefix of the data and nobody is told. Load must catch
                // this via the CRCs.
                let half = &encoded[..encoded.len() / 2];
                if let Err(source) = fs::write(&final_path, half) {
                    self.degraded = true;
                    return Err(CkptError::Io {
                        op: "write",
                        path: final_path,
                        source,
                    });
                }
                return Ok(true);
            }
            Some(WriteFault::BitFlip { bit }) => flip_bit(&mut encoded, bit),
            None => {}
        }

        let file_crc = crate::crc::crc32(&encoded[..encoded.len() - 4]);
        if let Err(e) = self.write_atomic(&final_path, &encoded) {
            self.degraded = true;
            return Err(e);
        }
        self.entries.retain(|e| e.phase_id != phase_id);
        self.entries.push(ManifestEntry {
            phase_id,
            phase_name: phase_name.to_string(),
            file_name: name,
            bytes: encoded.len() as u64,
            file_crc,
        });
        self.entries.sort_by_key(|e| e.phase_id);
        let manifest = render_manifest(self.config_fingerprint, self.input_digest, &self.entries);
        if let Err(e) = self.write_manifest_locked(&manifest) {
            self.degraded = true;
            return Err(e);
        }
        Ok(true)
    }

    /// Loads and verifies the checkpoint of `(phase_id, phase_name)`.
    pub fn load(&mut self, phase_id: u32, phase_name: &str) -> LoadOutcome {
        let path = self
            .dir
            .join(CheckpointStore::file_name(phase_id, phase_name));
        let fault = self.faults.next_read();
        let mut bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return LoadOutcome::Missing,
            Err(source) => {
                return LoadOutcome::Rejected(CkptError::Io {
                    op: "read",
                    path,
                    source,
                })
            }
        };
        match fault {
            Some(ReadFault::Short) => bytes.truncate(bytes.len() / 2),
            Some(ReadFault::BitFlip { bit }) => flip_bit(&mut bytes, bit),
            None => {}
        }
        let file = match CheckpointFile::decode(&bytes, &path) {
            Ok(file) => file,
            Err(e) => return LoadOutcome::Rejected(e),
        };
        if file.phase_id != phase_id {
            return LoadOutcome::Rejected(CkptError::Mismatch {
                path,
                detail: format!("phase id {} where {phase_id} was expected", file.phase_id),
            });
        }
        if file.config_fingerprint != self.config_fingerprint {
            return LoadOutcome::Rejected(CkptError::Mismatch {
                path,
                detail: format!(
                    "config fingerprint {:#018x} does not match this run's {:#018x}",
                    file.config_fingerprint, self.config_fingerprint
                ),
            });
        }
        if file.input_digest != self.input_digest {
            return LoadOutcome::Rejected(CkptError::Mismatch {
                path,
                detail: format!(
                    "input digest {:#018x} does not match this run's {:#018x}",
                    file.input_digest, self.input_digest
                ),
            });
        }
        LoadOutcome::Loaded(file.records)
    }

    fn ensure_dir(&mut self) -> Result<(), CkptError> {
        if self.dir_ready {
            return Ok(());
        }
        fs::create_dir_all(&self.dir).map_err(|source| CkptError::Io {
            op: "create dir",
            path: self.dir.clone(),
            source,
        })?;
        self.dir_ready = true;
        Ok(())
    }

    /// Temp file in the same directory + `sync_all` + atomic rename. The
    /// temp name carries the pid and a process-wide sequence number, so
    /// concurrent writers — threads or separate processes sharing the
    /// directory — never write to or rename the same temp file.
    fn write_atomic(&self, final_path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
        let file_name = final_path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("checkpoint");
        let tmp_path = self.dir.join(format!(
            ".{file_name}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let io_err = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source: io::Error| CkptError::Io { op, path, source }
        };
        let cleanup = |r: Result<(), CkptError>| {
            if r.is_err() {
                let _ = fs::remove_file(&tmp_path);
            }
            r
        };
        let mut tmp = fs::File::create(&tmp_path).map_err(io_err("create", &tmp_path))?;
        cleanup(tmp.write_all(bytes).map_err(io_err("write", &tmp_path)))?;
        cleanup(tmp.sync_all().map_err(io_err("sync", &tmp_path)))?;
        drop(tmp);
        cleanup(fs::rename(&tmp_path, final_path).map_err(io_err("rename", final_path)))?;
        Ok(())
    }

    /// Rewrites MANIFEST.txt under a best-effort advisory lock file.
    ///
    /// `create_new` is the atomic acquire; contention backs off briefly and
    /// retries, locks older than [`MANIFEST_LOCK_STALE`] are assumed
    /// orphaned by a crashed writer and broken. If the lock stays
    /// contended through every retry the rewrite is **skipped**: the
    /// manifest is an advisory summary (the load path verifies checkpoint
    /// files directly), and another live writer is about to rewrite it
    /// anyway.
    fn write_manifest_locked(&self, manifest: &str) -> Result<(), CkptError> {
        let lock_path = self.dir.join(".MANIFEST.lock");
        for attempt in 0..MANIFEST_LOCK_RETRIES {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(_) => {
                    let result = self.write_atomic(&manifest_path(&self.dir), manifest.as_bytes());
                    let _ = fs::remove_file(&lock_path);
                    return result;
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&lock_path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age > MANIFEST_LOCK_STALE);
                    if stale {
                        let _ = fs::remove_file(&lock_path);
                        continue;
                    }
                    std::thread::sleep(Duration::from_millis(1 << attempt.min(5)));
                }
                Err(source) => {
                    return Err(CkptError::Io {
                        op: "lock manifest",
                        path: lock_path,
                        source,
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fc-ckpt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn records() -> Vec<Vec<u8>> {
        vec![b"payload".to_vec(), b"metrics".to_vec()]
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut store = CheckpointStore::new(&dir, 0xAA, 0xBB);
        assert!(store.save(2, "coarsen", records()).expect("save works"));
        match store.load(2, "coarsen") {
            LoadOutcome::Loaded(recs) => assert_eq!(recs, records()),
            other => panic!("expected Loaded, got {other:?}"),
        }
        assert!(fs::read_to_string(manifest_path(&dir))
            .expect("manifest written")
            .contains("phase 02 coarsen"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_reported_as_missing() {
        let dir = temp_dir("missing");
        let mut store = CheckpointStore::new(&dir, 1, 2);
        assert!(matches!(store.load(0, "preprocess"), LoadOutcome::Missing));
    }

    #[test]
    fn wrong_fingerprints_are_rejected_not_loaded() {
        let dir = temp_dir("fingerprint");
        let mut writer = CheckpointStore::new(&dir, 0xA, 0xB);
        writer.save(1, "alignment", records()).expect("save works");
        let mut wrong_config = CheckpointStore::new(&dir, 0xDEAD, 0xB);
        assert!(matches!(
            wrong_config.load(1, "alignment"),
            LoadOutcome::Rejected(CkptError::Mismatch { .. })
        ));
        let mut wrong_input = CheckpointStore::new(&dir, 0xA, 0xDEAD);
        assert!(matches!(
            wrong_input.load(1, "alignment"),
            LoadOutcome::Rejected(CkptError::Mismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_is_detected_at_load_time() {
        let dir = temp_dir("torn");
        let plan = FsFaultPlan::none().fail_write(0, WriteFault::Torn);
        let mut store = CheckpointStore::with_faults(&dir, 1, 2, plan);
        assert!(store
            .save(3, "hybrid", records())
            .expect("torn write reports success"));
        assert!(matches!(
            store.load(3, "hybrid"),
            LoadOutcome::Rejected(CkptError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_write_is_detected_at_load_time() {
        let dir = temp_dir("bitflip");
        let plan = FsFaultPlan::none().fail_write(0, WriteFault::BitFlip { bit: 123 });
        let mut store = CheckpointStore::with_faults(&dir, 1, 2, plan);
        assert!(store.save(0, "preprocess", records()).expect("save works"));
        assert!(matches!(
            store.load(0, "preprocess"),
            LoadOutcome::Rejected(CkptError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_and_bit_flipped_reads_are_detected() {
        let dir = temp_dir("readfault");
        let plan = FsFaultPlan::none()
            .fail_read(0, ReadFault::Short)
            .fail_read(1, ReadFault::BitFlip { bit: 999 });
        let mut store = CheckpointStore::with_faults(&dir, 1, 2, plan);
        store.save(4, "partition", records()).expect("save works");
        for _ in 0..2 {
            assert!(matches!(
                store.load(4, "partition"),
                LoadOutcome::Rejected(CkptError::Corrupt { .. })
            ));
        }
        // Third read has no fault: the file on disk was always good.
        assert!(matches!(store.load(4, "partition"), LoadOutcome::Loaded(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_degrades_the_store_and_later_saves_are_skipped() {
        let dir = temp_dir("enospc");
        let plan = FsFaultPlan::none().fail_write(0, WriteFault::Enospc);
        let mut store = CheckpointStore::with_faults(&dir, 1, 2, plan);
        let err = store
            .save(0, "preprocess", records())
            .expect_err("ENOSPC surfaces");
        assert!(err.to_string().contains("space"));
        assert!(store.is_degraded());
        // Degraded: silently skipped, no second error.
        assert!(!store
            .save(1, "alignment", records())
            .expect("skip is Ok(false)"));
        assert!(matches!(store.load(1, "alignment"), LoadOutcome::Missing));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_directory_degrades_on_first_save() {
        let dir = PathBuf::from("/proc/fc-ckpt-cannot-exist/x");
        let mut store = CheckpointStore::new(&dir, 1, 2);
        assert!(store.save(0, "preprocess", records()).is_err());
        assert!(store.is_degraded());
        assert!(!store
            .save(1, "alignment", records())
            .expect("degraded skip"));
    }

    #[test]
    fn concurrent_writers_sharing_a_directory_never_tear_each_other() {
        let dir = temp_dir("concurrent");
        fs::create_dir_all(&dir).expect("mkdir");
        let writers = 4;
        let rounds = 25;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let dir = dir.clone();
                scope.spawn(move || {
                    // Each thread is its own store — the serve layer gives
                    // every concurrent job a store over a shared layout.
                    let mut store = CheckpointStore::new(&dir, 0xC0, 0xD0);
                    for round in 0..rounds {
                        let payload = vec![format!("w{w} r{round}").into_bytes()];
                        // Same phase ids from every writer: maximal rename
                        // contention on the final names and the manifest.
                        store
                            .save(w as u32 % 2, "preprocess", payload)
                            .expect("concurrent save");
                    }
                });
            }
        });
        // Every surviving file verifies (no torn writes), the manifest is
        // whole, and no temp litter remains.
        let mut reader = CheckpointStore::new(&dir, 0xC0, 0xD0);
        for phase in 0..2 {
            assert!(
                matches!(reader.load(phase, "preprocess"), LoadOutcome::Loaded(_)),
                "phase {phase} failed to verify after concurrent writes"
            );
        }
        assert!(fs::read_to_string(manifest_path(&dir))
            .expect("manifest written")
            .contains("focus checkpoint manifest"));
        for entry in fs::read_dir(&dir).expect("readdir") {
            let name = entry.expect("entry").file_name();
            let name = name.to_string_lossy();
            assert!(
                !name.contains(".tmp."),
                "leftover temp file {name} after clean shutdown"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_manifest_lock_is_broken_not_waited_on() {
        let dir = temp_dir("stalelock");
        fs::create_dir_all(&dir).expect("mkdir");
        let lock = dir.join(".MANIFEST.lock");
        fs::write(&lock, b"").expect("plant lock");
        // Backdate the lock beyond the stale threshold so the writer
        // breaks it instead of skipping the manifest rewrite.
        let old = std::time::SystemTime::now() - (MANIFEST_LOCK_STALE + Duration::from_secs(60));
        fs::File::options()
            .write(true)
            .open(&lock)
            .and_then(|f| f.set_modified(old))
            .expect("backdate lock");
        let mut store = CheckpointStore::new(&dir, 1, 2);
        assert!(store.save(0, "preprocess", records()).expect("save"));
        assert!(
            fs::read_to_string(manifest_path(&dir)).is_ok(),
            "manifest must be rewritten after breaking the stale lock"
        );
        assert!(!lock.exists(), "broken lock must not linger");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resave_replaces_the_manifest_entry() {
        let dir = temp_dir("resave");
        let mut store = CheckpointStore::new(&dir, 1, 2);
        store.save(0, "preprocess", records()).expect("save");
        store.save(0, "preprocess", records()).expect("resave");
        let manifest = fs::read_to_string(manifest_path(&dir)).expect("manifest");
        assert_eq!(manifest.matches("phase 00").count(), 1);
        assert!(manifest.contains("checkpoints = 1"));
        let _ = fs::remove_dir_all(&dir);
    }
}
