//! Deterministic filesystem fault injection for the checkpoint layer.
//!
//! [`FsFaultPlan`] extends the distributed stage's seeded `FaultPlan`
//! idea to checkpoint I/O: faults are scheduled against the *n*-th write
//! or read operation the [`CheckpointStore`](crate::store::CheckpointStore)
//! performs, so a run with the same plan replays the same damage
//! bit-for-bit. The injected failure modes are the ones real filesystems
//! produce:
//!
//! * **torn write** — the file appears under its final name with only a
//!   prefix of the data (a non-atomic writer died mid-write, or the
//!   kernel tore the write across a crash);
//! * **bit flip** — one bit of the stored file differs (media decay,
//!   controller bugs);
//! * **ENOSPC** — the write fails because the disk filled up;
//! * **short read** — a read returns fewer bytes than the file holds.

use std::collections::BTreeMap;

/// A fault applied to one checkpoint *write* operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteFault {
    /// Persist only the first half of the encoded bytes, directly under
    /// the final name (simulating a non-atomic writer crashing mid-write).
    /// The store reports success; the damage must be caught at load time.
    Torn,
    /// Flip one bit (index taken modulo the file's bit length) before the
    /// otherwise-normal atomic write.
    BitFlip {
        /// Absolute bit index to flip (wrapped to the encoded length).
        bit: u64,
    },
    /// Fail the write with an out-of-space I/O error.
    Enospc,
}

/// A fault applied to one checkpoint *read* operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReadFault {
    /// Return only the first half of the file's bytes.
    Short,
    /// Flip one bit (index wrapped to the data length) in the bytes read.
    BitFlip {
        /// Absolute bit index to flip (wrapped to the data length).
        bit: u64,
    },
}

/// Per-operation fault probabilities for [`FsFaultPlan::random`]; all
/// zero by default (no faults).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FsFaultRates {
    /// Probability a write is torn.
    pub torn_write: f64,
    /// Probability a write lands with one flipped bit.
    pub write_bit_flip: f64,
    /// Probability a write fails with ENOSPC.
    pub enospc: f64,
    /// Probability a read comes back short.
    pub short_read: f64,
    /// Probability a read comes back with one flipped bit.
    pub read_bit_flip: f64,
}

/// A deterministic schedule of filesystem faults, keyed by operation
/// sequence number. The store numbers its write and read operations
/// independently from zero; a fault registered for an operation fires
/// exactly once when that operation runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FsFaultPlan {
    writes: BTreeMap<u64, WriteFault>,
    reads: BTreeMap<u64, ReadFault>,
    write_ops: u64,
    read_ops: u64,
}

/// SplitMix64 step, mirroring `fc_dist::fault`'s generator so seeded
/// plans across the two layers share one PRNG family.
fn unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl FsFaultPlan {
    /// The empty plan: no faults ever fire.
    pub fn none() -> FsFaultPlan {
        FsFaultPlan::default()
    }

    /// Registers `fault` against the `op`-th write (0-based), replacing
    /// any previous registration for that operation.
    pub fn fail_write(mut self, op: u64, fault: WriteFault) -> FsFaultPlan {
        self.writes.insert(op, fault);
        self
    }

    /// Registers `fault` against the `op`-th read (0-based).
    pub fn fail_read(mut self, op: u64, fault: ReadFault) -> FsFaultPlan {
        self.reads.insert(op, fault);
        self
    }

    /// Samples a random plan over the first `ops` write and read
    /// operations. Same `(seed, ops, rates)` ⇒ the identical plan. At most
    /// one fault per operation; the kinds are tried in a fixed order.
    pub fn random(seed: u64, ops: u64, rates: &FsFaultRates) -> FsFaultPlan {
        let mut plan = FsFaultPlan::none();
        let mut state = seed ^ 0xC3A5_C85C_97CB_3127;
        for op in 0..ops {
            if unit(&mut state) < rates.torn_write {
                plan.writes.insert(op, WriteFault::Torn);
            } else if unit(&mut state) < rates.write_bit_flip {
                let bit = (unit(&mut state) * 1e6) as u64;
                plan.writes.insert(op, WriteFault::BitFlip { bit });
            } else if unit(&mut state) < rates.enospc {
                plan.writes.insert(op, WriteFault::Enospc);
            }
            if unit(&mut state) < rates.short_read {
                plan.reads.insert(op, ReadFault::Short);
            } else if unit(&mut state) < rates.read_bit_flip {
                let bit = (unit(&mut state) * 1e6) as u64;
                plan.reads.insert(op, ReadFault::BitFlip { bit });
            }
        }
        plan
    }

    /// True when no fault is registered.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty() && self.reads.is_empty()
    }

    /// Number of faults still registered (unfired).
    pub fn pending(&self) -> usize {
        self.writes.len() + self.reads.len()
    }

    /// Advances the write-operation counter and returns the fault (if any)
    /// scheduled for the operation that just started.
    pub fn next_write(&mut self) -> Option<WriteFault> {
        let op = self.write_ops;
        self.write_ops += 1;
        self.writes.remove(&op)
    }

    /// Advances the read-operation counter and returns the fault (if any)
    /// scheduled for the operation that just started.
    pub fn next_read(&mut self) -> Option<ReadFault> {
        let op = self.read_ops;
        self.read_ops += 1;
        self.reads.remove(&op)
    }
}

/// Applies a [`WriteFault::BitFlip`] / [`ReadFault::BitFlip`] index to a
/// buffer in place (no-op on an empty buffer).
pub fn flip_bit(bytes: &mut [u8], bit: u64) {
    if bytes.is_empty() {
        return;
    }
    let total_bits = bytes.len() as u64 * 8;
    let bit = bit % total_bits;
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_at_their_scheduled_op() {
        let mut plan = FsFaultPlan::none()
            .fail_write(1, WriteFault::Torn)
            .fail_read(0, ReadFault::Short);
        assert_eq!(plan.next_write(), None); // op 0
        assert_eq!(plan.next_write(), Some(WriteFault::Torn)); // op 1
        assert_eq!(plan.next_write(), None); // op 2
        assert_eq!(plan.next_read(), Some(ReadFault::Short)); // op 0
        assert_eq!(plan.next_read(), None);
        assert!(plan.is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let rates = FsFaultRates {
            torn_write: 0.3,
            write_bit_flip: 0.3,
            enospc: 0.2,
            short_read: 0.3,
            read_bit_flip: 0.3,
        };
        let a = FsFaultPlan::random(7, 50, &rates);
        let b = FsFaultPlan::random(7, 50, &rates);
        let c = FsFaultPlan::random(8, 50, &rates);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ at these rates");
        assert!(!a.is_empty());
    }

    #[test]
    fn zero_rates_produce_the_empty_plan() {
        let plan = FsFaultPlan::random(1, 100, &FsFaultRates::default());
        assert!(plan.is_empty());
    }

    #[test]
    fn flip_bit_wraps_and_is_an_involution() {
        let mut data = vec![0u8; 4];
        flip_bit(&mut data, 35); // 35 % 32 = 3
        assert_eq!(data, vec![0b1000, 0, 0, 0]);
        flip_bit(&mut data, 3);
        assert_eq!(data, vec![0; 4]);
        flip_bit(&mut [], 7); // no-op, no panic
    }
}
