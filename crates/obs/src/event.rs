//! The structured event model: what one recorded moment looks like.
//!
//! Events map 1:1 onto Chrome `trace_event` phases so the trace sink is a
//! direct serialisation: `Begin`/`End` bracket a span, `Instant` marks a
//! point, `Counter` samples a time series (e.g. the edge-cut trajectory
//! during recursive bisection), and the flow phases `FlowStart`/
//! `FlowStep`/`FlowEnd` (`s`/`t`/`f`) carry **causal edges** between spans
//! — Perfetto draws them as arrows, and the `focus profile` critical-path
//! analyzer follows them across ranks and retries.

/// What kind of moment an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in `trace_event`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`); the sampled value is in `args`.
    Counter,
    /// A causal edge departs (`ph: "s"`): the emitting span hands work to
    /// someone else (a message send, a checkpoint write a resume may
    /// later consume, a speculative backup launch).
    FlowStart,
    /// A causal edge passes through (`ph: "t"`): an intermediate hop such
    /// as a retransmission attempt.
    FlowStep,
    /// A causal edge arrives (`ph: "f"`): the receiving span's progress
    /// depended on the matching [`EventKind::FlowStart`].
    FlowEnd,
}

impl EventKind {
    /// The Chrome `trace_event` phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
            EventKind::FlowStart => "s",
            EventKind::FlowStep => "t",
            EventKind::FlowEnd => "f",
        }
    }

    /// True for the flow phases (`s`/`t`/`f`) that carry causal edges.
    pub fn is_flow(self) -> bool {
        matches!(
            self,
            EventKind::FlowStart | EventKind::FlowStep | EventKind::FlowEnd
        )
    }
}

/// One recorded event. Timestamps are microseconds since the recorder was
/// created (wall-clock mode) or a monotonically increasing logical tick
/// (logical-clock mode); `tid` is a process-local lane id assigned per OS
/// thread on first use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Timestamp (µs since recorder creation, or logical tick).
    pub ts: u64,
    /// Thread lane the event was recorded from.
    pub tid: u64,
    /// Category (pipeline layer): `"align"`, `"partition"`, `"dist"`, ….
    pub cat: &'static str,
    /// Event name, dot-scoped (`"align.overlap_all"`).
    pub name: &'static str,
    /// What kind of moment this is.
    pub kind: EventKind,
    /// Identity of the moment: the span id for `Begin`/`End`, the flow id
    /// for `s`/`t`/`f` (matching ids form one causal arrow), 0 for events
    /// that carry neither.
    pub id: u64,
    /// The span this event happened inside (the span open on the emitting
    /// lane at record time); 0 for root spans and span-less events. For
    /// `Begin` events this is the parent span link.
    pub parent: u64,
    /// Structured integer payload (counts, sizes, ids). Integer-only by
    /// design: serialisation stays byte-deterministic.
    pub args: Vec<(&'static str, i64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_match_trace_event_letters() {
        assert_eq!(EventKind::Begin.phase(), "B");
        assert_eq!(EventKind::End.phase(), "E");
        assert_eq!(EventKind::Instant.phase(), "i");
        assert_eq!(EventKind::Counter.phase(), "C");
        assert_eq!(EventKind::FlowStart.phase(), "s");
        assert_eq!(EventKind::FlowStep.phase(), "t");
        assert_eq!(EventKind::FlowEnd.phase(), "f");
    }

    #[test]
    fn only_flow_phases_report_as_flows() {
        assert!(EventKind::FlowStart.is_flow());
        assert!(EventKind::FlowStep.is_flow());
        assert!(EventKind::FlowEnd.is_flow());
        assert!(!EventKind::Begin.is_flow());
        assert!(!EventKind::Counter.is_flow());
    }
}
