//! The structured event model: what one recorded moment looks like.
//!
//! Events map 1:1 onto Chrome `trace_event` phases so the trace sink is a
//! direct serialisation: `Begin`/`End` bracket a span, `Instant` marks a
//! point, `Counter` samples a time series (e.g. the edge-cut trajectory
//! during recursive bisection).

/// What kind of moment an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in `trace_event`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point event (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`); the sampled value is in `args`.
    Counter,
}

impl EventKind {
    /// The Chrome `trace_event` phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        }
    }
}

/// One recorded event. Timestamps are microseconds since the recorder was
/// created (wall-clock mode) or a monotonically increasing logical tick
/// (logical-clock mode); `tid` is a process-local lane id assigned per OS
/// thread on first use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Timestamp (µs since recorder creation, or logical tick).
    pub ts: u64,
    /// Thread lane the event was recorded from.
    pub tid: u64,
    /// Category (pipeline layer): `"align"`, `"partition"`, `"dist"`, ….
    pub cat: &'static str,
    /// Event name, dot-scoped (`"align.overlap_all"`).
    pub name: &'static str,
    /// What kind of moment this is.
    pub kind: EventKind,
    /// Structured integer payload (counts, sizes, ids). Integer-only by
    /// design: serialisation stays byte-deterministic.
    pub args: Vec<(&'static str, i64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_match_trace_event_letters() {
        assert_eq!(EventKind::Begin.phase(), "B");
        assert_eq!(EventKind::End.phase(), "E");
        assert_eq!(EventKind::Instant.phase(), "i");
        assert_eq!(EventKind::Counter.phase(), "C");
    }
}
